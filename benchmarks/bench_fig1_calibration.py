"""Figure 1: RSSI -> distance PDFs from the calibration phase.

Paper: PDFs for RSSI = -52 dBm (Gaussian, near regime) and RSSI = -86 dBm
(non-Gaussian, beyond 40 m).
"""

from repro.experiments.figures import run_fig1


def test_fig1_calibration_pdfs(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_fig1(rssi_near_dbm=-52.0, rssi_far_dbm=-86.0),
        rounds=1,
        iterations=1,
    )
    near = result["bins"][-52]
    far = result["bins"][-86]
    lines = [
        "%-12s %-10s %-10s %-10s %-10s %-10s"
        % ("RSSI (dBm)", "fit", "mean (m)", "std (m)", "skew", "ex.kurt"),
        "%-12d %-10s %-10.1f %-10.2f %-10.2f %-10.2f"
        % (
            near["rssi_dbm"],
            "gaussian" if near["is_gaussian"] else "histogram",
            near["mean_m"],
            near["std_m"],
            near["sample_skewness"],
            near["sample_excess_kurtosis"],
        ),
        "%-12d %-10s %-10.1f %-10.2f %-10.2f %-10.2f"
        % (
            far["rssi_dbm"],
            "gaussian" if far["is_gaussian"] else "histogram",
            far["mean_m"],
            far["std_m"],
            far["sample_skewness"],
            far["sample_excess_kurtosis"],
        ),
        "",
        "Paper: -52 dBm bin Gaussian (distances < 40 m); -86 dBm bin "
        "non-Gaussian (multipath beyond 40 m).",
    ]
    report("Figure 1 - calibration PDF Table (two example bins)", lines)

    # Shape assertions: the paper's dichotomy must hold.
    assert near["is_gaussian"]
    assert near["mean_m"] < 40.0
    assert not far["is_gaussian"]
    assert far["mean_m"] > 40.0
    # The far bin's samples deviate from Gaussian shape.
    assert abs(far["sample_skewness"]) > abs(near["sample_skewness"])
