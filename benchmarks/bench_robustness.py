"""Robustness: robot failures, Sync-robot death, and failover.

The paper targets disaster response, where robots die mid-mission, yet
synchronization hangs off a single designated Sync robot.  These benches
quantify the failure modes and the failover extension that closes them:

- ordinary robot deaths degrade the metric pool gracefully,
- a dead Sync robot silences SYNC, clocks drift past the wake guard and
  localization decays,
- rank-staggered failover plus resync mode restores synchronization with
  exactly one new Sync robot and no extra protocol traffic.
"""

import numpy as np

from conftest import scaled

from repro.core.config import CoCoAConfig
from repro.ext.failures import FailureSchedule, ResilientTeam


def test_sync_robot_death_and_failover(benchmark, report, calibration):
    duration = scaled(500.0, full=1200.0)
    config = CoCoAConfig(
        beacon_period_s=50.0, duration_s=duration, master_seed=7
    )
    table = calibration.table_for(config)
    kill_at = duration * 0.2

    def run():
        out = {}
        out["baseline"] = ResilientTeam(
            config, failover=False, pdf_table=table
        ).run()
        out["sync_dies"] = ResilientTeam(
            config,
            FailureSchedule.of((kill_at, 0)),
            failover=False,
            resync_after_silent_periods=None,
            pdf_table=table,
        ).run()
        team = ResilientTeam(
            config,
            FailureSchedule.of((kill_at, 0)),
            failover=True,
            pdf_table=table,
        )
        out["with_failover"] = team.run()
        out["_team"] = team
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    late = int(duration * 0.6)

    def late_error(res):
        return float(np.nanmean(res.errors[:, late:]))

    team = result["_team"]
    acting = [f for f in team.failovers.values() if f.is_acting_sync]
    lines = [
        "Sync robot killed at t=%.0f s (of %.0f s)" % (kill_at, duration),
        "",
        "%-18s %-12s %-14s" % ("scenario", "SYNCs rcvd", "late err (m)"),
        "%-18s %-12d %-14.2f"
        % ("no failure", result["baseline"].syncs_received,
           late_error(result["baseline"])),
        "%-18s %-12d %-14.2f"
        % ("sync dies", result["sync_dies"].syncs_received,
           late_error(result["sync_dies"])),
        "%-18s %-12d %-14.2f"
        % ("with failover", result["with_failover"].syncs_received,
           late_error(result["with_failover"])),
        "",
        "takeovers: %d; acting Sync robot(s): %s; resync node-periods: %d"
        % (
            sum(f.takeovers for f in team.failovers.values()),
            [f.node_id for f in acting],
            sum(n.coordinator.resync_periods for n in team.nodes
                if n.coordinator is not None),
        ),
    ]
    report("Robustness - Sync robot death and rank-staggered failover",
           lines)

    # The outage visibly halts SYNC distribution...
    assert result["sync_dies"].syncs_received < 0.6 * (
        result["baseline"].syncs_received
    )
    # ...failover restores it...
    assert result["with_failover"].syncs_received > 1.5 * (
        result["sync_dies"].syncs_received
    )
    # ...with exactly one backup in charge (lowest-id anchor).
    assert len(acting) == 1
    assert acting[0].node_id == 1
    # And localization recovers relative to the unprotected outage.
    assert late_error(result["with_failover"]) <= late_error(
        result["sync_dies"]
    )


def test_random_robot_attrition(benchmark, report, calibration):
    duration = scaled(400.0, full=1200.0)
    config = CoCoAConfig(
        beacon_period_s=50.0, duration_s=duration, master_seed=9
    )
    table = calibration.table_for(config)
    # Kill 2 anchors (not the Sync robot) and 3 unknowns over the run.
    schedule = FailureSchedule.of(
        (duration * 0.2, 5),
        (duration * 0.35, 30),
        (duration * 0.5, 12),
        (duration * 0.65, 40),
        (duration * 0.8, 45),
    )

    def run():
        clean = ResilientTeam(config, pdf_table=table).run()
        team = ResilientTeam(
            config, schedule, failover=True, pdf_table=table
        )
        return {"clean": clean, "attrition": team.run(), "_team": team}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    clean, hit = result["clean"], result["attrition"]
    lines = [
        "5 robots (2 anchors, 3 unknowns) die across the run",
        "",
        "%-12s %-14s %-12s" % ("scenario", "avg err (m)", "beacons"),
        "%-12s %-14.2f %-12d"
        % ("clean", clean.time_average_error(), clean.beacons_sent),
        "%-12s %-14.2f %-12d"
        % ("attrition", hit.time_average_error(), hit.beacons_sent),
        "",
        "Dead unknowns stop counting (NaN); survivors keep localizing.",
    ]
    report("Robustness - random robot attrition", lines)

    assert len(result["_team"].dead) == 5
    # The survivors' accuracy degrades only modestly.
    assert hit.time_average_error() < clean.time_average_error() + 10.0
    # Dead anchors really do stop beaconing.
    assert hit.beacons_sent < clean.beacons_sent
    # NaNs present but aggregates finite.
    assert np.isnan(hit.errors).any()
    assert np.isfinite(hit.time_average_error())
