"""Online geographic routing over the live CoCoA network.

The offline snapshot study already supports the §6 claim; this bench runs
the application end to end inside the simulator — HELLO-built neighbor
tables carrying *estimated* positions that go stale between windows,
forwarding over the real lossy MAC, radios duty-cycled by the
coordinator — and measures what actually gets through.
"""

from conftest import scaled

from repro.core.config import CoCoAConfig
from repro.ext.online_routing import RoutingTeam
from repro.sim.rng import RandomStreams


def test_online_geographic_routing(benchmark, report, calibration):
    duration = scaled(360.0, full=1200.0)
    config = CoCoAConfig(
        beacon_period_s=50.0, duration_s=duration, master_seed=7
    )
    table = calibration.table_for(config)

    def run():
        team = RoutingTeam(config, pdf_table=table)
        rng = RandomStreams(50).get("traffic")

        def traffic():
            if team.sim.now < 2.2 * config.beacon_period_s:
                return  # let HELLO tables populate
            ids = [n.node_id for n in team.nodes]
            for _ in range(5):
                src, dst = rng.choice(ids, size=2, replace=False)
                dest = team.nodes[int(dst)].estimated_position(team.sim.now)
                team.routers[int(src)].send(int(dst), dest)

        team.on_window(traffic, delay_s=1.0)
        team.run()
        return team

    team = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = team.routing_stats()
    hops = [p.hop_count for _, p in team.delivered_messages]
    delivery = stats.delivered / max(stats.originated, 1)
    import numpy as np

    mean_table = float(
        np.mean([len(t) for t in team.neighbor_tables.values()])
    )
    lines = [
        "messages originated: %d  delivered: %d (%.0f%%)"
        % (stats.originated, stats.delivered, 100.0 * delivery),
        "forwards: %d   drops: no-neighbor %d, local-minimum %d, ttl %d"
        % (stats.forwarded, stats.dropped_no_neighbor,
           stats.dropped_local_minimum, stats.dropped_ttl),
        "hops per delivered message: mean %.2f, max %d"
        % (float(np.mean(hops)) if hops else 0.0, max(hops) if hops else 0),
        "mean neighbor-table size: %.1f robots" % mean_table,
        "",
        "Paper (§6): CoCoA coordinates enable scalable geographic "
        "routing; here the whole pipeline (HELLO with estimated "
        "positions, stale tables, lossy MAC, duty cycling) is live.",
    ]
    report("Online geographic routing on the live CoCoA network", lines)

    assert stats.originated >= 20
    assert delivery > 0.6
    assert hops and max(hops) >= 2
    assert mean_table > 8
