"""Load benchmark for the streaming localization service.

Drives N concurrent tenants x M robots each through the real TCP path
(NDJSON protocol, shard queues, per-tenant sessions) and reports
sustained fix throughput plus fix latency quantiles:

    PYTHONPATH=src python benchmarks/bench_serve.py --quick
    PYTHONPATH=src python benchmarks/bench_serve.py --tenants 16 --robots 8

Each robot runs a sequence of beacon windows; a window is one
``window open`` + ``k`` pipelined observations + ``window close``, and
the *fix latency* is the wall time from sending the close (the request
that triggers the Bayes update) to receiving its response.  All tenants
share one calibration identity, so the PDF table is built once and the
measurement isolates the serving path, not calibration.

The workload runs three times — checkpointing off (baseline),
checkpointing on (the production default and the headline pass), and
checkpointing on with request tracing forced to ``always`` — so the
report states both the checkpoint overhead and the tracing overhead as
fixes/sec ratios.  ``--trace-out`` additionally dumps the traced
pass's spans as trace JSONL for ``repro trace``.

Writes ``BENCH_serve.json`` (see ``--out``) with the scenario shape,
sustained fixes/sec, p50/p90/p99 latency in milliseconds and the
checkpointing/tracing comparisons — the same file the CI
``serve-smoke`` job uploads as an artifact.  The headline numbers are
the checkpointing-on, tracing-off run (what a real deployment
serves).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Dict, List

import numpy as np

from repro.serve import LocalizationServer, ServeConfig, ServeClient, ServiceCore

AREA_SIDE_M = 120.0
RSSI_RANGE_DBM = (-82.0, -55.0)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=12,
                        help="concurrent tenants (default 12)")
    parser.add_argument("--robots", type=int, default=8,
                        help="robots per tenant (default 8)")
    parser.add_argument("--windows", type=int, default=15,
                        help="beacon windows per robot (default 15)")
    parser.add_argument("--beacons", type=int, default=4,
                        help="observations per window (default 4)")
    parser.add_argument("--shards", type=int, default=4,
                        help="service shards (default 4)")
    parser.add_argument("--calibration-samples", type=int, default=20_000,
                        help="calibration table size (shared by tenants)")
    parser.add_argument("--seed", type=int, default=1,
                        help="master seed for the synthetic traffic")
    parser.add_argument("--quick", action="store_true",
                        help="CI shape: 8 tenants x 4 robots x 5 windows")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="report path (default BENCH_serve.json)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write the traced pass's spans as trace "
                             "JSONL here (feed to 'repro trace')")
    args = parser.parse_args(argv)
    if args.quick:
        args.tenants = min(args.tenants, 8)
        args.robots = min(args.robots, 4)
        args.windows = min(args.windows, 5)
        args.calibration_samples = min(args.calibration_samples, 4000)
    return args


async def drive_tenant(
    host: str,
    port: int,
    tenant: str,
    args: argparse.Namespace,
    seed: int,
    latencies_ms: List[float],
) -> Dict[str, int]:
    """One tenant's full workload; appends fix latencies in place."""
    rng = np.random.default_rng(seed)
    fixes = 0
    closes = 0
    async with ServeClient(host, port) as client:
        hello = await client.hello(
            tenant,
            calibration_samples=args.calibration_samples,
            area_side_m=AREA_SIDE_M,
        )
        if not hello.ok:
            raise RuntimeError("hello failed for %s: %s"
                               % (tenant, hello.error))
        for window in range(args.windows):
            for robot in range(args.robots):
                await client.window_open(tenant, robot, t=float(window))
                pending = []
                for seq in range(args.beacons):
                    x = float(rng.uniform(0.0, AREA_SIDE_M))
                    y = float(rng.uniform(0.0, AREA_SIDE_M))
                    rssi = float(rng.uniform(*RSSI_RANGE_DBM))
                    pending.append(await client.send(
                        _observe(tenant, robot, seq, x, y, rssi,
                                 t=float(window))
                    ))
                for future in pending:
                    response = await future
                    if not response.ok:
                        raise RuntimeError("observe shed: %s"
                                           % response.error)
                started = time.perf_counter()
                close = await client.window_close(tenant, robot,
                                                  t=float(window))
                latencies_ms.append(
                    (time.perf_counter() - started) * 1000.0
                )
                if not close.ok:
                    raise RuntimeError("close failed: %s" % close.error)
                closes += 1
                if close.payload.get("fixed"):
                    fixes += 1
        await client.bye(tenant)
    return {"fixes": fixes, "closes": closes}


def _observe(tenant, robot, seq, x, y, rssi, t):
    from repro.serve.protocol import ObserveRequest

    return ObserveRequest(tenant=tenant, robot=robot, seq=seq,
                          x=x, y=y, rssi_dbm=rssi, t=t)


async def _run_load(args: argparse.Namespace,
                    checkpointing: bool,
                    trace_mode: str = "off") -> Dict[str, object]:
    """One full workload pass; returns raw totals for that pass."""
    core = ServiceCore(ServeConfig(
        port=0,
        n_shards=args.shards,
        queue_limit=max(256, args.tenants * args.robots * 4),
        tenant_inflight_limit=max(64, args.beacons * args.robots * 2),
        checkpointing=checkpointing,
        trace_mode=trace_mode,
    ))
    server = LocalizationServer(core)
    await server.start()
    host, port = core.config.host, server.port
    # Pre-build the shared calibration table outside the timed window,
    # so the measurement (and the checkpointing-on/off comparison) is
    # pure serving path, not one-off table construction.
    from repro.serve.protocol import HelloRequest

    core.calibrations.table_for(HelloRequest(
        tenant="warmup",
        calibration_samples=args.calibration_samples,
        area_side_m=AREA_SIDE_M,
    ))
    latencies_ms: List[float] = []
    started = time.perf_counter()
    totals = await asyncio.gather(*[
        drive_tenant(host, port, "bench-%02d" % i, args,
                     seed=args.seed * 1000 + i, latencies_ms=latencies_ms)
        for i in range(args.tenants)
    ])
    wall_s = time.perf_counter() - started
    stats = core.stats()
    trace_records = core.tracer.records()
    await server.stop()
    fixes = sum(t["fixes"] for t in totals)
    return {
        "wall_s": wall_s,
        "fixes": fixes,
        "closes": sum(t["closes"] for t in totals),
        "fixes_per_s": fixes / wall_s if wall_s else 0.0,
        "latencies_ms": latencies_ms,
        "stats": stats,
        "trace_records": trace_records,
    }


async def run_bench(args: argparse.Namespace) -> Dict[str, object]:
    # Baseline (no durability, no tracing), then the headline run
    # (checkpointing on, tracing off), then the traced run (tracing
    # forced to "always" — the worst case; the serving default samples).
    # Each pass boots a fresh server, so no pass warms another.
    baseline = await _run_load(args, checkpointing=False)
    durable = await _run_load(args, checkpointing=True)
    traced = await _run_load(args, checkpointing=True, trace_mode="always")
    if args.trace_out is not None:
        from repro.obs import write_trace_jsonl

        write_trace_jsonl(args.trace_out, traced["trace_records"])

    latencies_ms = durable["latencies_ms"]
    stats = durable["stats"]
    wall_s = durable["wall_s"]
    fixes = durable["fixes"]
    closes = durable["closes"]
    overhead_pct = 0.0
    if baseline["fixes_per_s"] > 0:
        overhead_pct = 100.0 * (
            1.0 - durable["fixes_per_s"] / baseline["fixes_per_s"]
        )
    trace_overhead_pct = 0.0
    if durable["fixes_per_s"] > 0:
        trace_overhead_pct = 100.0 * (
            1.0 - traced["fixes_per_s"] / durable["fixes_per_s"]
        )
    quantiles = np.percentile(latencies_ms, [50.0, 90.0, 99.0])
    return {
        "benchmark": "serve",
        "quick": bool(args.quick),
        "scenario": {
            "tenants": args.tenants,
            "robots_per_tenant": args.robots,
            "windows_per_robot": args.windows,
            "beacons_per_window": args.beacons,
            "shards": args.shards,
            "calibration_samples": args.calibration_samples,
            "area_side_m": AREA_SIDE_M,
            "seed": args.seed,
        },
        "totals": {
            "wall_s": round(wall_s, 4),
            "window_closes": closes,
            "fixes": fixes,
            "fixes_per_s": round(fixes / wall_s, 2) if wall_s else 0.0,
            "requests_per_s": round(
                stats.get("serve_requests_total", 0.0) / wall_s, 2
            ) if wall_s else 0.0,
            "shed": stats.get("serve_shed_total_all", 0.0),
        },
        "fix_latency_ms": {
            "p50": round(float(quantiles[0]), 3),
            "p90": round(float(quantiles[1]), 3),
            "p99": round(float(quantiles[2]), 3),
            "mean": round(float(np.mean(latencies_ms)), 3),
            "max": round(float(np.max(latencies_ms)), 3),
            "samples": len(latencies_ms),
        },
        "checkpointing": {
            "on_fixes_per_s": round(durable["fixes_per_s"], 2),
            "off_fixes_per_s": round(baseline["fixes_per_s"], 2),
            "overhead_pct": round(overhead_pct, 2),
            "checkpoints_saved": stats.get("serve_checkpoints_saved", 0.0),
        },
        "tracing": {
            "mode": "always",
            "on_fixes_per_s": round(traced["fixes_per_s"], 2),
            "off_fixes_per_s": round(durable["fixes_per_s"], 2),
            "overhead_pct": round(trace_overhead_pct, 2),
            "spans_recorded": len(traced["trace_records"]),
            "traces_recorded": traced["stats"].get(
                "obs_traces_recorded", 0.0
            ),
        },
        "service_metrics": {
            key: value for key, value in sorted(stats.items())
            if key.startswith("serve_")
        },
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    report = asyncio.run(run_bench(args))
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    totals = report["totals"]
    latency = report["fix_latency_ms"]
    scenario = report["scenario"]
    print("serve bench: %d tenants x %d robots x %d windows (%d shards)%s"
          % (scenario["tenants"], scenario["robots_per_tenant"],
             scenario["windows_per_robot"], scenario["shards"],
             " (quick)" if report["quick"] else ""))
    print("  sustained: %.1f fixes/s, %.1f requests/s over %.2fs "
          "(%d fixes, %d sheds)"
          % (totals["fixes_per_s"], totals["requests_per_s"],
             totals["wall_s"], totals["fixes"], int(totals["shed"])))
    print("  fix latency: p50 %.2f ms  p90 %.2f ms  p99 %.2f ms "
          "(max %.2f ms, n=%d)"
          % (latency["p50"], latency["p90"], latency["p99"],
             latency["max"], latency["samples"]))
    durability = report["checkpointing"]
    print("  checkpointing: %.1f fixes/s on vs %.1f off "
          "(%.1f%% overhead, %d checkpoints)"
          % (durability["on_fixes_per_s"], durability["off_fixes_per_s"],
             durability["overhead_pct"],
             int(durability["checkpoints_saved"])))
    tracing = report["tracing"]
    print("  tracing (always): %.1f fixes/s on vs %.1f off "
          "(%.1f%% overhead, %d spans / %d traces)"
          % (tracing["on_fixes_per_s"], tracing["off_fixes_per_s"],
             tracing["overhead_pct"], tracing["spans_recorded"],
             int(tracing["traces_recorded"])))
    if args.trace_out is not None:
        print("  traced pass spans written to %s" % args.trace_out)
    print("  report written to %s" % args.out)
    if totals["fixes"] == 0:
        print("FAIL: benchmark produced no fixes")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
