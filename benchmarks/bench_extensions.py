"""Ablations for the paper's §6 future-work extensions.

- Beacon promotion: localized unknowns also beacon, gated on fix
  confidence; helps anchor-sparse teams, and the gate matters.
- Transmission power control: range/accuracy/energy trade-off.
- Geographic routing on CoCoA coordinates: the §6 application claim.
"""

import math

from conftest import scaled

from repro.core.config import CoCoAConfig
from repro.core.team import CoCoATeam
from repro.experiments.metrics import summarize_errors
from repro.ext.georouting import run_georouting_study
from repro.ext.power_control import run_power_sweep
from repro.ext.promotion import PromotionConfig, PromotionTeam


def test_beacon_promotion(benchmark, report, calibration):
    """Promotion in an anchor-sparse team (10 anchors of 50)."""
    duration = scaled(500.0, full=1200.0)
    config = CoCoAConfig(
        n_anchors=10, duration_s=duration, master_seed=5
    )
    table = calibration.table_for(config)

    def run():
        baseline = CoCoATeam(config, pdf_table=table).run()
        promoted_team = PromotionTeam(
            config, PromotionConfig(max_fix_std_m=6.0), pdf_table=table
        )
        promoted = promoted_team.run()
        loose_team = PromotionTeam(
            config, PromotionConfig(max_fix_std_m=60.0), pdf_table=table
        )
        loose = loose_team.run()
        return {
            "baseline": baseline,
            "promoted": (promoted_team, promoted),
            "loose": (loose_team, loose),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = result["baseline"]
    promoted_team, promoted = result["promoted"]
    loose_team, loose = result["loose"]
    skip = min(config.beacon_period_s, duration / 2)

    def avg(r):
        return summarize_errors(r.errors, skip_first_s=skip).time_average_m

    lines = [
        "%-26s %-12s %-12s %-14s"
        % ("configuration", "err (m)", "no-fix wins", "extra beacons"),
        "%-26s %-12.2f %-12d %-14d"
        % ("10 anchors (baseline)", avg(baseline),
           baseline.windows_without_fix, 0),
        "%-26s %-12.2f %-12d %-14d"
        % ("+ promotion (gate 6 m)", avg(promoted),
           promoted.windows_without_fix,
           promoted_team.promoted_beacons_sent),
        "%-26s %-12.2f %-12d %-14d"
        % ("+ promotion (gate 60 m)", avg(loose),
           loose.windows_without_fix, loose_team.promoted_beacons_sent),
        "",
        "Paper (§6): promotion could reduce the anchors needed, but a bad "
        "'goodness' judgement could increase errors - hence the gate.",
    ]
    report("Extension - beacon promotion by localized unknowns", lines)

    # Promotion adds beacon sources and rescues missed windows.
    assert promoted_team.promoted_beacons_sent > 0
    assert promoted.windows_without_fix <= baseline.windows_without_fix
    # The gated variant must not wreck accuracy.
    assert avg(promoted) < avg(baseline) + 4.0


def test_power_control(benchmark, report):
    duration = scaled(400.0, full=1200.0)

    result = benchmark.pedantic(
        lambda: run_power_sweep(
            power_deltas_db=(-6.0, 0.0, 6.0), duration_s=duration
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "%-10s %-12s %-12s %-14s %-14s"
        % ("dP (dB)", "range (m)", "err (m)", "energy (J)", "delivered"),
    ]
    for point in result:
        lines.append(
            "%-10.0f %-12.0f %-12.2f %-14.0f %-14d"
            % (
                point.power_delta_db,
                point.range_m,
                point.time_average_error_m,
                point.total_energy_j,
                point.beacons_delivered,
            )
        )
    lines += [
        "",
        "Paper (§6): power control can increase the distance over which "
        "nodes cooperate; the price is transmit energy.",
    ]
    report("Extension - transmission power control", lines)

    by_delta = {p.power_delta_db: p for p in result}
    # More power, more range, more frames delivered.
    assert by_delta[6.0].range_m > by_delta[0.0].range_m > by_delta[-6.0].range_m
    assert by_delta[6.0].beacons_delivered > by_delta[-6.0].beacons_delivered
    # Less power must not improve accuracy (fewer audible anchors).
    assert (
        by_delta[-6.0].time_average_error_m
        >= by_delta[6.0].time_average_error_m - 2.0
    )


def test_georouting_on_cocoa_coordinates(benchmark, report):
    duration = scaled(460.0, full=1200.0)
    snapshots = (duration * 0.4, duration * 0.65, duration * 0.9)

    result = benchmark.pedantic(
        lambda: run_georouting_study(
            CoCoAConfig(duration_s=duration, master_seed=9),
            snapshot_times=snapshots,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "routable (source, destination) pairs: %d" % result.attempts,
        "greedy delivery on true coordinates:      %.1f%%"
        % (100.0 * result.delivery_rate_true),
        "greedy delivery on CoCoA coordinates:     %.1f%%"
        % (100.0 * result.delivery_rate_estimated),
        "mean path stretch (true / CoCoA): %.2f / %.2f"
        % (result.mean_stretch_true, result.mean_stretch_estimated),
        "",
        "Paper (§6): 'CoCoA coordinates are good enough to enable "
        "scalable geographic routing'.",
    ]
    report("Extension - geographic routing over CoCoA coordinates", lines)

    assert result.attempts > 30
    # The §6 claim: CoCoA coordinates route nearly as well as the truth.
    assert result.delivery_rate_estimated > 0.8
    assert (
        result.delivery_rate_estimated
        > result.delivery_rate_true - 0.15
    )
    if not math.isnan(result.mean_stretch_estimated):
        assert result.mean_stretch_estimated < 1.6
