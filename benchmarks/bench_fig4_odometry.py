"""Figure 4: localization error over time using only odometry.

Paper: 50 robots dead-reckon from known initial positions for 30 minutes;
the average error grows without bound, approaching/exceeding 100 m for
both maximum speeds (0.5 and 2.0 m/s).
"""

from conftest import scaled

from repro.experiments.figures import run_fig4


def test_fig4_odometry_only(benchmark, report):
    duration = scaled(900.0)  # odometry-only runs are cheap; scale mildly

    result = benchmark.pedantic(
        lambda: run_fig4(v_maxes=(0.5, 2.0), duration_s=duration),
        rounds=1,
        iterations=1,
    )
    lines = [
        "%-8s %-12s %-12s %-12s %-12s"
        % ("v_max", "@25%", "@50%", "@75%", "final"),
    ]
    for v_max, data in result.items():
        series = data["mean_error"]
        n = len(series)
        lines.append(
            "%-8.1f %-12.1f %-12.1f %-12.1f %-12.1f"
            % (
                v_max,
                series[n // 4],
                series[n // 2],
                series[3 * n // 4],
                series[-1],
            )
        )
    lines += [
        "",
        "Paper: error exceeds 100 m after 30 minutes for both speeds "
        "(unbounded growth).",
    ]
    report("Figure 4 - odometry-only error over time (%.0f s)" % duration,
           lines)

    for v_max, data in result.items():
        series = data["mean_error"]
        n = len(series)
        # Unbounded growth: late error far above early error.
        assert series[-1] > 2.0 * series[n // 6]
        # Substantial absolute drift by the end of the run.
        assert data["summary"].final_m > 25.0
    # Faster robots accumulate error at least as fast.
    assert (
        result[2.0]["summary"].time_average_m
        > 0.8 * result[0.5]["summary"].time_average_m
    )
