"""Ablation: the grid filter versus Monte Carlo localization.

The paper (§5): "CoCoA is not tied to a specific localization technique
... Other approaches could be integrated in CoCoA as well."  This bench
swaps the localization component — everything else identical — and
compares accuracy and wall-clock cost.
"""

import time

from conftest import scaled

from repro.core.config import CoCoAConfig, LocalizationFilter
from repro.core.team import CoCoATeam
from repro.experiments.metrics import summarize_errors


def test_grid_vs_particle_filter(benchmark, report, calibration):
    duration = scaled(500.0, full=1200.0)
    base = CoCoAConfig(duration_s=duration, master_seed=6)
    table = calibration.table_for(base)

    def run():
        out = {}
        for kind in (LocalizationFilter.GRID, LocalizationFilter.PARTICLE):
            config = base.paper_scenario(localization_filter=kind)
            start = time.perf_counter()
            result = CoCoATeam(config, pdf_table=table).run()
            elapsed = time.perf_counter() - start
            out[kind.value] = (result, elapsed)
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    skip = min(base.beacon_period_s * 1.1 + 5, duration / 2)
    lines = [
        "%-10s %-14s %-12s %-12s %-12s"
        % ("filter", "avg err (m)", "median (m)", "fixes", "wall (s)"),
    ]
    summaries = {}
    for kind in ("grid", "particle"):
        res, elapsed = result[kind]
        summary = summarize_errors(res.errors, skip_first_s=skip)
        summaries[kind] = summary
        lines.append(
            "%-10s %-14.2f %-12.2f %-12d %-12.1f"
            % (kind, summary.time_average_m, summary.median_m, res.fixes,
               elapsed)
        )
    lines += [
        "",
        "Paper (§5): the architecture is technique-agnostic; both filters "
        "plug into the same estimator, coordinator and beaconing.",
    ]
    report("Ablation - localization technique (grid vs particle)", lines)

    grid, particle = summaries["grid"], summaries["particle"]
    # The two techniques must deliver comparable accuracy (within ~40%).
    assert particle.time_average_m < 1.4 * grid.time_average_m + 2.0
    assert grid.time_average_m < 1.4 * particle.time_average_m + 2.0
    # Both produce fixes in nearly all windows.
    assert result["grid"][0].fixes > 0
    assert result["particle"][0].fixes > 0
