"""Figure 9: impact of the beacon period T on error and energy.

Paper: (a) error is lowest for T around 50-100 s; (b) coordinated
sleeping consumes 2.6x-8x less energy than leaving radios idle, with the
savings growing (and flattening) as T grows.  The recommended operating
range is T in [50, 100] s.
"""

from conftest import scaled

from repro.experiments.figures import run_fig9


def test_fig9_beacon_period_tradeoff(benchmark, report, calibration):
    periods = (10.0, 50.0, 100.0, 300.0)

    def run():
        out = {}
        for period in periods:
            duration = scaled(max(4.0 * period, 300.0))
            out[period] = run_fig9(
                beacon_periods_s=(period,),
                duration_s=duration,
                calibration=calibration,
            )[period]
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "%-8s %-14s %-16s %-16s %-10s"
        % ("T (s)", "avg error (m)", "E coord (J)", "E no-coord (J)",
           "ratio"),
    ]
    for period in periods:
        data = result[period]
        lines.append(
            "%-8.0f %-14.2f %-16.0f %-16.0f %-10.1f"
            % (
                period,
                data["summary"].time_average_m,
                data["energy_coordinated_j"],
                data["energy_uncoordinated_j"],
                data["energy_ratio"],
            )
        )
    lines += [
        "",
        "Paper: error best near T=50 (7 m @10, 5 m @50, 6.6 m @100); "
        "energy 2.6x-8x cheaper with coordination, saving grows with T.",
        "Note: the paper's T=10 bad-beacon penalty does not reproduce "
        "under our channel calibration (see EXPERIMENTS.md).",
    ]
    report("Figure 9 - beacon period vs accuracy and energy", lines)

    ratios = [result[p]["energy_ratio"] for p in periods]
    # Savings grow with T (more sleep per period) and land in the paper's
    # 2.6x-8x ballpark at the extremes.
    assert ratios == sorted(ratios)
    assert 1.5 < ratios[0] < 4.5
    assert 5.0 < ratios[-1] < 14.0
    # Diminishing returns: T 100 -> 300 buys much less than 10 -> 50.
    e = {p: result[p]["energy_coordinated_j"] for p in periods}
    assert (e[10.0] - e[50.0]) > 2.0 * (e[100.0] - e[300.0])
    # Accuracy degrades sharply for very large T.
    assert (
        result[300.0]["summary"].time_average_m
        > result[50.0]["summary"].time_average_m
    )
