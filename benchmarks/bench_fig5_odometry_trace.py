"""Figure 5: an example of accumulated odometry error.

Paper: illustration of a single robot's real path versus its odometry
estimate — displacement error accrues continuously and each turn adds an
angular error, so the final estimate ends far from the true endpoint.
"""

import numpy as np

from repro.experiments.figures import run_fig5


def test_fig5_odometry_error_trace(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_fig5(speed=1.0, master_seed=4), rounds=1, iterations=1
    )
    errors = result["errors"]
    marks = np.linspace(0, len(errors) - 1, 7).astype(int)
    lines = [
        "six-waypoint path, length %.0f m, speed 1 m/s"
        % result["path_length_m"],
        "error along the path: "
        + "  ".join("%.1f" % errors[i] for i in marks)
        + "  (m)",
        "final error: %.1f m" % result["final_error_m"],
        "",
        "Paper: the estimated path diverges from the real one, a little "
        "more at every turn; the final estimate (x6', y6') ends far from "
        "the real endpoint (x6, y6).",
    ]
    report("Figure 5 - single-robot odometry error accumulation", lines)

    # The error accumulates: non-trivial at the end, small at the start.
    assert errors[0] == 0.0
    assert result["final_error_m"] > 2.0
    # Late-path error exceeds early-path error on average.
    third = len(errors) // 3
    assert errors[-third:].mean() > errors[:third].mean()
