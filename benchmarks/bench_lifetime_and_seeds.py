"""Mission lifetime projection and seed sensitivity.

Two analyses the paper implies but never runs:

- **Team lifetime**: convert Figure 9(b)'s joules into mission hours with
  a battery model — the operator-facing meaning of "energy-efficient".
- **Seed sensitivity**: the paper's numbers come from single simulation
  runs; re-running the headline comparison across seeds attaches
  confidence intervals and a significance test to "CoCoA beats RF-only".
"""

from conftest import FULL_SCALE, scaled

from repro.analysis.seeds import compare_scenarios, run_seed_sweep
from repro.core.config import CoCoAConfig, LocalizationMode
from repro.core.team import CoCoATeam
from repro.energy.battery import Battery, project_lifetime


def test_team_lifetime_projection(benchmark, report, calibration):
    duration = scaled(400.0, full=1200.0)
    base = CoCoAConfig(duration_s=duration, master_seed=4)
    table = calibration.table_for(base)
    battery = Battery()  # 80 kJ pack, 25% budgeted to the radio

    def run():
        out = {}
        for label, coordination in (("coordinated", True), ("idle", False)):
            config = base.paper_scenario(coordination=coordination)
            result = CoCoATeam(config, pdf_table=table).run()
            out[label] = project_lifetime(
                result.per_node_energy_j, duration, battery
            )
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "battery: %.0f kJ pack, %.0f%% radio budget"
        % (battery.capacity_j / 1000.0, battery.radio_share * 100.0),
        "",
        "%-14s %-16s %-16s %-16s"
        % ("scenario", "first death", "half team", "mean"),
    ]
    for label in ("coordinated", "idle"):
        projection = result[label]
        lines.append(
            "%-14s %-16s %-16s %-16s"
            % (
                label,
                "%.1f h" % (projection.first_death_s / 3600.0),
                "%.1f h" % (projection.half_team_s / 3600.0),
                "%.1f h" % (projection.mean_lifetime_s / 3600.0),
            )
        )
    ratio = (
        result["coordinated"].first_death_s / result["idle"].first_death_s
    )
    lines += [
        "",
        "coordination extends time-to-first-death by %.1fx" % ratio,
    ]
    report("Team lifetime - what Figure 9(b)'s joules buy", lines)

    assert ratio > 2.0
    assert result["idle"].first_death_s < result["idle"].last_death_s


def test_seed_sensitivity_of_headline_claim(benchmark, report, calibration):
    duration = scaled(400.0, full=1200.0)
    seeds = (1, 2, 3) if not FULL_SCALE else (1, 2, 3, 4, 5)
    base = CoCoAConfig(duration_s=duration, beacon_period_s=50.0)

    def run():
        cocoa = run_seed_sweep(base, seeds=seeds, calibration=calibration)
        rf = run_seed_sweep(
            base.paper_scenario(
                localization_mode=LocalizationMode.RF_ONLY
            ),
            seeds=seeds,
            calibration=calibration,
        )
        return {"cocoa": cocoa, "rf": rf,
                "comparison": compare_scenarios(cocoa, rf)}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    cocoa, rf = result["cocoa"], result["rf"]
    comparison = result["comparison"]
    lines = [
        "seeds: %s" % (list(seeds),),
        "",
        "%-8s %-28s %-12s" % ("mode", "error CI", "spread"),
        "%-8s %-28s %-12.2f"
        % ("cocoa", str(cocoa.error_ci), cocoa.relative_spread),
        "%-8s %-28s %-12.2f"
        % ("rf", str(rf.error_ci), rf.relative_spread),
        "",
        "CoCoA - RF mean difference: %.2f m (Welch p = %.4f)"
        % (comparison["mean_difference_m"], comparison["p_value"]),
    ]
    report("Seed sensitivity - is 'CoCoA beats RF-only' seed noise?",
           lines)

    # The headline claim must hold on every seed, not just on average.
    assert cocoa.worst_seed_error_m < rf.best_seed_error_m
    assert comparison["mean_difference_m"] < 0
    assert comparison["p_value"] < 0.05
