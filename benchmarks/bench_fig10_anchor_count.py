"""Figure 10: impact of the number of robots with localization devices.

Paper: going from 35 to 25 anchors barely hurts (5.2 m -> 5.9 m); 15
anchors still gives ~8 m; very few anchors (5) degrade markedly because
robots miss beacon rounds entirely and fall back to dead reckoning.
"""

from conftest import scaled

from repro.experiments.figures import run_fig10


def test_fig10_anchor_count(benchmark, report, calibration):
    counts = (5, 15, 25, 35)
    duration = scaled(700.0)

    result = benchmark.pedantic(
        lambda: run_fig10(
            anchor_counts=counts,
            duration_s=duration,
            calibration=calibration,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "%-10s %-14s %-12s %-18s"
        % ("anchors", "avg error (m)", "max (m)", "windows w/o fix"),
    ]
    for count in counts:
        data = result[count]
        lines.append(
            "%-10d %-14.2f %-12.2f %-18d"
            % (
                count,
                data["summary"].time_average_m,
                data["summary"].max_m,
                data["windows_without_fix"],
            )
        )
    lines += [
        "",
        "Paper: 35 anchors -> 5.2 m, 25 -> 5.9 m, 15 -> ~8 m; half the "
        "team equipped is the cost/accuracy sweet spot.",
    ]
    report("Figure 10 - anchors (localization devices) vs error", lines)

    averages = {c: result[c]["summary"].time_average_m for c in counts}
    # More anchors, better accuracy.
    assert averages[35] <= averages[15]
    assert averages[25] <= averages[5]
    # The 35 -> 25 step is gentle (the paper's cost argument)...
    assert averages[25] < averages[35] + 4.0
    # ...while very few anchors hurt disproportionately.
    assert averages[5] > 1.5 * averages[35]
    # Sparse-anchor teams miss beacon rounds.
    assert result[5]["windows_without_fix"] > result[35][
        "windows_without_fix"
    ]
