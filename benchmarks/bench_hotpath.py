"""Hot-path kernel microbenchmarks: each kernel vs. the loop it replaces.

Three kernels are measured in isolation on Fig.-7-shaped inputs (the
same shapes ``repro bench`` uses), plus the end-to-end pair on a small
scenario.  The assertions are deliberately loose — they catch a kernel
*regressing below its scalar reference*, not CI jitter:

1. **Batched RSSI sampling** vs. the per-receiver scalar draw loop.
2. **LUT density evaluation** vs. the exact per-bin evaluation.
3. **Shared constraint fields** vs. per-robot recomputation.

``repro bench`` (``src/repro/experiments/bench.py``) is the pinned,
JSON-reporting flavor of the same measurements; this file is the
interactive one (``pytest benchmarks/bench_hotpath.py --benchmark-only``).
"""

import time

import numpy as np

from conftest import scaled

from repro.core.bayes import GridBayesFilter
from repro.core.constraint_cache import ConstraintFieldCache
from repro.experiments.bench import (
    QUICK_DURATION_S,
    pinned_config,
    run_hotpath_bench,
)
from repro.kernels import KERNELS_ON
from repro.util.geometry import Vec2


def _best_of(fn, repeats=5):
    """Minimum wall time over ``repeats`` calls (noise only adds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _frame_distances(config, rng):
    """One frame's receiver distances: everyone but the transmitter."""
    return rng.uniform(
        1.0, 0.75 * config.area.width, size=config.n_robots - 1
    )


def test_rssi_sampling_batched_vs_scalar(benchmark, report):
    config = pinned_config()
    phy = config.path_loss
    distances = _frame_distances(config, np.random.default_rng(2006))
    scalars = [float(d) for d in distances]

    def scalar():
        rng = np.random.default_rng(1)
        for _ in range(100):
            for d in scalars:
                phy.sample_rssi(d, rng)

    def batched():
        rng = np.random.default_rng(1)
        for _ in range(100):
            phy.sample_rssi_batch(distances, rng)

    benchmark.pedantic(batched, rounds=5, iterations=1)
    batched_s = benchmark.stats.stats.min
    best = _best_of(scalar)
    report("Hot path - batched RSSI sampling", [
        "scalar loop : %.4f s / 100 frames" % best,
        "batched     : %.4f s / 100 frames" % batched_s,
        "speedup     : %.2fx" % (best / batched_s),
    ])
    assert batched_s <= best * 1.25  # never materially slower


def test_pdf_eval_lut_vs_exact(benchmark, report, calibration):
    config = pinned_config()
    table = calibration.table_for(config)
    grid = GridBayesFilter(config.area, config.grid_resolution_m)
    beacon = Vec2(62.0, 114.0)
    distances = grid.compute_distance_field(beacon)
    lo, hi = table.rssi_range
    key = table.bin_key_for((lo + hi) / 2.0)
    out = np.empty_like(distances)

    def evaluate():
        for _ in range(50):
            table.pdf_for_key(key, distances, out=out)

    table.set_lut(False)
    best_exact = _best_of(evaluate)

    table.set_lut(True, KERNELS_ON.lut_entries)
    table.pdf_for_key(key, distances)  # build outside the timer
    benchmark.pedantic(evaluate, rounds=5, iterations=1)
    lut_s = benchmark.stats.stats.min
    table.set_lut(False)
    report("Hot path - LUT density evaluation", [
        "exact : %.4f s / 50 grid evals" % best_exact,
        "lut   : %.4f s / 50 grid evals" % lut_s,
        "speedup: %.2fx" % (best_exact / lut_s),
    ])
    assert lut_s < best_exact


def test_constraint_field_cached_vs_recompute(benchmark, report, calibration):
    config = pinned_config()
    table = calibration.table_for(config)
    rng = np.random.default_rng(2006)
    lo, hi = table.rssi_range
    beacons = [
        (
            i,
            Vec2(
                float(rng.uniform(config.area.x_min, config.area.x_max)),
                float(rng.uniform(config.area.y_min, config.area.y_max)),
            ),
            float(rng.uniform(lo, hi)),
        )
        for i in range(16)
    ]

    plain = GridBayesFilter(config.area, config.grid_resolution_m)
    cached = GridBayesFilter(config.area, config.grid_resolution_m)
    cached.attach_constraint_cache(ConstraintFieldCache(capacity=64))

    def run(grid):
        grid.reset_uniform()
        for _ in range(4):
            for anchor_id, beacon, rssi in beacons:
                grid.apply_beacon(beacon, rssi, table, anchor_id=anchor_id)

    table.set_lut(False)
    best_plain = _best_of(lambda: run(plain))

    table.set_lut(True, KERNELS_ON.lut_entries)
    run(cached)  # warm the cache and LUTs outside the timer
    benchmark.pedantic(lambda: run(cached), rounds=5, iterations=1)
    cached_s = benchmark.stats.stats.min
    table.set_lut(False)
    report("Hot path - shared constraint fields", [
        "recompute : %.4f s / 4 beacon rounds" % best_plain,
        "cached    : %.4f s / 4 beacon rounds" % cached_s,
        "speedup   : %.2fx" % (best_plain / cached_s),
    ])
    assert cached_s < best_plain


def test_end_to_end_quick_report(report, tmp_path):
    """The ``repro bench --quick`` shape, via the library entry point."""
    duration = scaled(QUICK_DURATION_S, 600.0)
    out = tmp_path / "BENCH_hotpath.json"
    bench = run_hotpath_bench(
        quick=duration <= QUICK_DURATION_S,
        repeats=2,
        out_path=str(out),
    )
    e2e = bench["end_to_end"]
    report("Hot path - end to end (pinned Fig. 7 scenario)", [
        "kernels off: p50 %.3f s  (%s events/s)" % (
            e2e["kernels_off"]["wall_p50_s"],
            e2e["kernels_off"]["events_per_s"],
        ),
        "kernels on : p50 %.3f s  (%s events/s)" % (
            e2e["kernels_on"]["wall_p50_s"],
            e2e["kernels_on"]["events_per_s"],
        ),
        "end-to-end speedup : %.2fx" % e2e["speedup"],
        "hot-path speedup   : %.2fx (geometric mean of components)"
        % bench["hotpath_speedup"],
    ])
    assert out.exists()
    assert e2e["speedup"] > 0.8  # kernels must never cost wall-clock
