"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's evaluation figures and
prints the same rows/series the paper plots.  By default the scenarios run
at reduced simulated time so the whole suite finishes in a few minutes;
set ``REPRO_FULL=1`` for the paper's full 30-minute runs.

Run:
    pytest benchmarks/ --benchmark-only
    REPRO_FULL=1 pytest benchmarks/ --benchmark-only   # full fidelity
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import SharedCalibration

FULL_SCALE = os.environ.get("REPRO_FULL", "") == "1"


def scaled(short: float, full: float = 1800.0) -> float:
    """Pick the simulated duration for the current fidelity level."""
    return full if FULL_SCALE else short


@pytest.fixture(scope="session")
def calibration() -> SharedCalibration:
    """One calibration cache for the whole benchmark session."""
    return SharedCalibration()


@pytest.fixture()
def report(capsys):
    """Print a figure's table straight to the terminal (uncaptured)."""

    def _report(title: str, lines) -> None:
        with capsys.disabled():
            print()
            print("=" * 72)
            print(title + ("" if FULL_SCALE else "   [reduced scale]"))
            print("=" * 72)
            for line in lines:
                print(line)

    return _report
