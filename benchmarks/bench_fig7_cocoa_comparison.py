"""Figure 7: CoCoA versus odometry-only versus RF-only at T = 100 s.

Paper (v_max = 2 m/s): CoCoA averages ~6.5 m while RF-only averages
~33 m and odometry-only grows past 100 m — CoCoA wins because it combines
the advantages of both, and the §4.3 headline is that ordering.
"""

from conftest import scaled

from repro.experiments.figures import run_fig7


def test_fig7_three_strategies(benchmark, report, calibration):
    duration = scaled(700.0)

    result = benchmark.pedantic(
        lambda: run_fig7(
            v_maxes=(0.5, 2.0),
            duration_s=duration,
            calibration=calibration,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "%-8s %-16s %-16s %-16s"
        % ("v_max", "odometry (m)", "RF-only (m)", "CoCoA (m)"),
    ]
    for v_max, modes in result.items():
        lines.append(
            "%-8.1f %-16.2f %-16.2f %-16.2f"
            % (
                v_max,
                modes["odometry_only"]["summary"].time_average_m,
                modes["rf_only"]["summary"].time_average_m,
                modes["cocoa"]["summary"].time_average_m,
            )
        )
    lines += [
        "",
        "Paper (v_max=2): CoCoA ~6.5 m, RF-only ~33 m, odometry >100 m at "
        "the 30-minute mark.",
    ]
    report(
        "Figure 7 - CoCoA vs odometry vs RF-only (T=100 s, %.0f s runs)"
        % duration,
        lines,
    )

    for v_max, modes in result.items():
        cocoa = modes["cocoa"]["summary"].time_average_m
        rf = modes["rf_only"]["summary"].time_average_m
        odometry_final = modes["odometry_only"]["summary"].final_m
        # The paper's ordering: CoCoA < RF-only, and odometry drifts past
        # both by the end of the run.
        assert cocoa < rf
        assert odometry_final > cocoa
    # At high speed the RF-only penalty (stale estimates) is large.
    fast = result[2.0]
    assert (
        fast["rf_only"]["summary"].time_average_m
        > 1.5 * fast["cocoa"]["summary"].time_average_m
    )
