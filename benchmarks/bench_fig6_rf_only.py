"""Figure 6: RF-only localization error over time, varying the period T.

Paper: RF localization bounds the error (unlike odometry); the error is
smallest right after each beacon round and grows as the frozen estimate
goes stale, so larger T gives larger time-averaged error.
"""

from conftest import scaled

from repro.experiments.figures import run_fig6


def test_fig6_rf_only_beacon_periods(benchmark, report, calibration):
    periods = (10.0, 50.0, 100.0, 300.0)

    def run():
        out = {}
        for period in periods:
            duration = scaled(max(6.0 * period, 300.0))
            out[period] = run_fig6(
                beacon_periods_s=(period,),
                duration_s=duration,
                calibration=calibration,
            )[period]
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "%-8s %-14s %-12s %-12s"
        % ("T (s)", "avg error (m)", "median (m)", "max (m)"),
    ]
    for period in periods:
        summary = result[period]["summary"]
        lines.append(
            "%-8.0f %-14.2f %-12.2f %-12.2f"
            % (period, summary.time_average_m, summary.median_m,
               summary.max_m)
        )
    lines += [
        "",
        "Paper: error bounded (vs odometry's unbounded growth); larger T "
        "-> staler estimates -> larger average error.",
    ]
    report("Figure 6 - RF-only localization error vs beacon period", lines)

    averages = [result[p]["summary"].time_average_m for p in periods]
    # Larger T means staler frozen estimates: monotone-ish increase, and
    # the extremes must be well separated.
    assert averages[0] < averages[-1]
    assert averages[1] < averages[3]
    # Bounded: even T=300 stays far below odometry's unbounded drift.
    assert averages[-1] < 120.0
