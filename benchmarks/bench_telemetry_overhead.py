"""Telemetry overhead: disabled mode must cost (almost) nothing.

Two claims are benchmarked on a Figure-6-sized scenario:

1. **Disabled-mode overhead.**  Runs without a telemetry handle go
   through plain attribute counters and the :data:`NULL_REGISTRY`
   shim; a run must cost the same as before the subsystem existed.
   The microbenchmark pins the shim's per-call cost, and the scenario
   pair below bounds the end-to-end gap.
2. **Enabled-mode overhead.**  Rich mode (registry + span tracer) may
   cost a little, but it must stay a small fraction of the run — and it
   must not change a single output byte (also regression-tested in
   ``tests/test_telemetry.py``).
"""

import time

from conftest import scaled

from repro.core.config import CoCoAConfig
from repro.experiments.runner import run_scenario
from repro.telemetry import NULL_REGISTRY, Telemetry
from repro.util.geometry import Rect


def _fig6_config(duration_s: float) -> CoCoAConfig:
    return CoCoAConfig(
        area=Rect.square(200.0),
        n_robots=50,
        n_anchors=25,
        beacon_period_s=50.0,
        duration_s=duration_s,
        calibration_samples=20_000,
    )


def _timed_run(config, telemetry=None):
    start = time.perf_counter()
    result = run_scenario(config, telemetry=telemetry)
    return result, time.perf_counter() - start


def test_null_registry_per_call_cost(benchmark, report):
    """The disabled shim: one attribute lookup and a no-op call."""
    counter = NULL_REGISTRY.counter("bench")

    def spin():
        for _ in range(10_000):
            counter.inc()

    benchmark.pedantic(spin, rounds=5, iterations=1)
    per_call_ns = 1e9 * benchmark.stats.stats.min / 10_000
    report("Telemetry - disabled-shim per-call cost", [
        "null counter inc: %.0f ns/call" % per_call_ns,
        "",
        "Claim: the no-op shim is within noise of not instrumenting;",
        "a 50-node run makes ~1e5 instrument calls, so even 100 ns/call",
        "is < 0.1% of a multi-second simulation.",
    ])
    assert per_call_ns < 2_000  # generous: sub-2us even on busy CI


def test_fig6_run_overhead_disabled_vs_enabled(benchmark, report,
                                               calibration):
    duration = scaled(300.0, full=1800.0)
    config = _fig6_config(duration)
    run_scenario(config, calibration)  # warm the calibration cache

    baseline, baseline_s = _timed_run(config)

    def run_enabled():
        return _timed_run(config, telemetry=Telemetry.enabled())

    (rich, enabled_s) = benchmark.pedantic(
        run_enabled, rounds=1, iterations=1
    )
    # Re-time the disabled run after the enabled one so cache warmth and
    # CPU state are comparable in either direction.
    _, baseline2_s = _timed_run(config)
    disabled_s = min(baseline_s, baseline2_s)
    overhead = enabled_s / disabled_s - 1.0 if disabled_s > 0 else 0.0

    report("Telemetry - fig6-sized run, disabled vs enabled", [
        "disabled: %.2f s    enabled: %.2f s    overhead: %+.1f%%"
        % (disabled_s, enabled_s, 100.0 * overhead),
        "spans recorded: %d (dropped %d)"
        % (rich.telemetry.get("trace_spans_recorded"),
           rich.telemetry.get("trace_spans_dropped")),
        "",
        "Claim: rich mode stays a small fraction of the run and output",
        "is bit-identical either way.",
    ])

    # The load-bearing assertion: telemetry never changes results.
    assert baseline.errors.tobytes() == rich.errors.tobytes()
    assert baseline.total_energy_j() == rich.total_energy_j()
    # Rich mode actually recorded something.
    assert rich.telemetry.get("trace_spans_recorded") > 0
    # Overhead bound, slack enough for noisy CI machines: the enabled
    # run must stay well under 1.5x the disabled run.
    assert enabled_s < 1.5 * disabled_s
