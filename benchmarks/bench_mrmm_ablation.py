"""MRMM versus ODMRP: the §2.3 mesh-pruning claim.

Paper: MRMM's mobility-aware pruning selects a sparser mesh, reducing
control overhead and the number of data transmissions needed to deliver
all data packets ("improved forwarding efficiency"), without hurting
delivery.
"""

from conftest import scaled

from repro.experiments.figures import run_mrmm_ablation


def test_mrmm_vs_odmrp(benchmark, report, calibration):
    duration = scaled(600.0, full=900.0)

    result = benchmark.pedantic(
        lambda: run_mrmm_ablation(
            duration_s=duration, calibration=calibration
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "%-8s %-10s %-11s %-11s %-12s %-8s"
        % ("proto", "ctrl pkts", "data fwds", "suppressed", "SYNC recvd",
           "err (m)"),
    ]
    for protocol in ("odmrp", "mrmm"):
        data = result[protocol]
        lines.append(
            "%-8s %-10d %-11d %-11d %-12d %-8.2f"
            % (
                protocol,
                data["control_packets"],
                data["data_forwarded"],
                data["forwards_suppressed"],
                data["syncs_received"],
                data["error_summary"].time_average_m,
            )
        )
    odmrp, mrmm = result["odmrp"], result["mrmm"]
    lines += [
        "",
        "control overhead: MRMM/ODMRP = %.2f"
        % (mrmm["control_packets"] / max(odmrp["control_packets"], 1)),
        "data transmissions: MRMM/ODMRP = %.2f"
        % (mrmm["data_forwarded"] / max(odmrp["data_forwarded"], 1)),
        "",
        "Paper: pruning reduces rebroadcasts and data transmissions while "
        "keeping the mesh connected.",
    ]
    report("MRMM ablation - mesh pruning vs plain ODMRP", lines)

    # The pruning claims: less control traffic, fewer data transmissions.
    assert mrmm["control_packets"] < 0.8 * odmrp["control_packets"]
    assert mrmm["data_forwarded"] < 0.8 * odmrp["data_forwarded"]
    assert mrmm["forwards_suppressed"] > 0
    # SYNC still reaches the team (delivery preserved).
    assert mrmm["syncs_received"] > 0.8 * odmrp["syncs_received"]
    # Localization is unaffected by the multicast substrate choice.
    assert (
        abs(
            mrmm["error_summary"].time_average_m
            - odmrp["error_summary"].time_average_m
        )
        < 6.0
    )
