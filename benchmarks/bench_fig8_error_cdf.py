"""Figure 8: CDF of the localization error at three time instants.

Paper: CDFs right after a transmit window (best), in the middle of the
sleep phase, and at the end of a beacon period (stalest); locations
deteriorate over the period "but not significantly", and more than 90% of
robots are within 10 m shortly after localization.
"""

import numpy as np

from conftest import scaled

from repro.experiments.figures import run_fig8


def test_fig8_error_cdfs(benchmark, report, calibration):
    duration = scaled(700.0)

    result = benchmark.pedantic(
        lambda: run_fig8(duration_s=duration, calibration=calibration),
        rounds=1,
        iterations=1,
    )
    order = [
        "end_of_transmit_window",
        "middle_of_beacon_period",
        "end_of_beacon_period",
    ]
    lines = [
        "%-26s %-8s %-12s %-10s %-12s"
        % ("instant", "t (s)", "median (m)", "p90 (m)", "frac < 10 m"),
    ]
    for name in order:
        data = result[name]
        frac10 = float((data["errors"] < 10.0).mean())
        lines.append(
            "%-26s %-8.0f %-12.2f %-10.2f %-12.2f"
            % (name, data["time_s"], data["median_m"], data["p90_m"], frac10)
        )
    lines += [
        "",
        "Paper: best right after beacons; degrades over the period but "
        "not significantly; >90% of robots within 10 m post-localization.",
    ]
    report("Figure 8 - error CDF at three instants of a beacon period",
           lines)

    post_fix = result["end_of_transmit_window"]
    stalest = result["end_of_beacon_period"]
    # Freshly localized is the best of the three instants.
    assert post_fix["median_m"] <= stalest["median_m"] + 1e-9
    # Degradation over the period stays bounded (the paper's "not
    # significantly"): the stale median is within a few x of the fresh one.
    assert stalest["median_m"] < 6.0 * max(post_fix["median_m"], 1.0)
    # A solid majority of robots localize well right after the window.
    assert float((post_fix["errors"] < 10.0).mean()) > 0.6
