"""Integration tests: the full CoCoA team on short scenarios.

These use scaled-down durations (2-4 beacon periods) so the whole file
runs in a few seconds while still exercising every component together:
channel, MAC, coordination, multicast SYNC, beaconing, the Bayesian filter
and odometry fusion.
"""

import numpy as np
import pytest

from repro.core.config import CoCoAConfig, LocalizationMode, MulticastProtocol
from repro.core.node import RobotRole
from repro.core.team import CoCoATeam


def small_config(**overrides):
    defaults = dict(
        n_robots=20,
        n_anchors=10,
        beacon_period_s=30.0,
        duration_s=95.0,
        master_seed=7,
        calibration_samples=40_000,
    )
    defaults.update(overrides)
    return CoCoAConfig(**defaults)


@pytest.fixture(scope="module")
def cocoa_result(pdf_table):
    team = CoCoATeam(small_config(), pdf_table=pdf_table)
    return team, team.run()


class TestTeamConstruction:
    def test_roles_assigned(self, pdf_table):
        team = CoCoATeam(small_config(), pdf_table=pdf_table)
        anchors = [n for n in team.nodes if n.role is RobotRole.ANCHOR]
        unknowns = [n for n in team.nodes if n.role is RobotRole.UNKNOWN]
        assert len(anchors) == 10
        assert len(unknowns) == 10
        assert all(n.beaconer is not None for n in anchors)
        assert all(n.estimator is not None for n in unknowns)

    def test_exactly_one_sync_robot(self, pdf_table):
        team = CoCoATeam(small_config(), pdf_table=pdf_table)
        sync_robots = [n for n in team.nodes if n.is_sync_robot]
        assert len(sync_robots) == 1
        assert sync_robots[0].multicast.is_source

    def test_odometry_only_team_has_no_network_roles(self):
        config = small_config(
            localization_mode=LocalizationMode.ODOMETRY_ONLY,
            n_anchors=0,
            coordination=False,
        )
        team = CoCoATeam(config)
        assert all(n.multicast is None for n in team.nodes)
        assert all(n.beaconer is None for n in team.nodes)
        assert all(n.estimator is not None for n in team.nodes)


class TestCocoaRun:
    def test_metrics_shape(self, cocoa_result):
        team, result = cocoa_result
        assert result.errors.shape[0] == 10  # unknowns
        assert result.errors.shape[1] == 95  # one sample per second
        assert len(result.times) == 95

    def test_beacons_sent_per_window(self, cocoa_result):
        team, result = cocoa_result
        # 10 anchors x 3 beacons x ~3 full windows (t=0, 30, 60, 90).
        assert result.beacons_sent >= 10 * 3 * 3

    def test_unknowns_obtain_fixes(self, cocoa_result):
        team, result = cocoa_result
        assert result.fixes >= 10 * 2  # nearly every robot, nearly every window

    def test_error_drops_after_first_window(self, cocoa_result):
        team, result = cocoa_result
        series = result.mean_error_series()
        # Before any fix the estimate is the area center (~70 m expected
        # error); after the first window it must fall dramatically.
        assert series[10] < 30.0

    def test_syncs_distributed(self, cocoa_result):
        team, result = cocoa_result
        # 19 members x up to 2 SYNC copies x 3+ windows; require broad reach.
        assert result.syncs_received >= 19

    def test_energy_accounted_for_all_nodes(self, cocoa_result):
        team, result = cocoa_result
        assert len(result.per_node_energy_j) == 20
        assert all(e > 0 for e in result.per_node_energy_j.values())
        assert result.energy.breakdown.sleep_j > 0  # coordination slept

    def test_channel_saw_traffic(self, cocoa_result):
        team, result = cocoa_result
        assert result.channel_stats.frames_sent > 50
        assert result.channel_stats.frames_delivered > 100


class TestModesComparison:
    def test_cocoa_beats_rf_only_and_odometry_diverges(self, pdf_table):
        """The paper's central comparison (Figure 7), in miniature."""
        cocoa = CoCoATeam(
            small_config(duration_s=185.0), pdf_table=pdf_table
        ).run()
        rf = CoCoATeam(
            small_config(
                duration_s=185.0,
                localization_mode=LocalizationMode.RF_ONLY,
            ),
            pdf_table=pdf_table,
        ).run()
        odo = CoCoATeam(
            small_config(
                duration_s=185.0,
                localization_mode=LocalizationMode.ODOMETRY_ONLY,
                n_anchors=0,
                coordination=False,
            )
        ).run()
        # Compare after the first fix window.
        cocoa_err = float(cocoa.errors[:, 40:].mean())
        rf_err = float(rf.errors[:, 40:].mean())
        assert cocoa_err < rf_err
        # Odometry-only error grows with time.
        odo_series = odo.mean_error_series()
        assert odo_series[-10:].mean() > odo_series[10:20].mean()

    def test_coordination_saves_energy(self, pdf_table):
        coordinated = CoCoATeam(
            small_config(), pdf_table=pdf_table
        ).run()
        uncoordinated = CoCoATeam(
            small_config(coordination=False), pdf_table=pdf_table
        ).run()
        assert coordinated.total_energy_j() < 0.6 * (
            uncoordinated.total_energy_j()
        )
        assert uncoordinated.energy.breakdown.sleep_j == 0.0

    def test_coordination_does_not_wreck_accuracy(self, pdf_table):
        coordinated = CoCoATeam(
            small_config(), pdf_table=pdf_table
        ).run()
        uncoordinated = CoCoATeam(
            small_config(coordination=False), pdf_table=pdf_table
        ).run()
        c = float(coordinated.errors[:, 35:].mean())
        u = float(uncoordinated.errors[:, 35:].mean())
        assert c < u + 6.0

    def test_odmrp_variant_runs(self, pdf_table):
        result = CoCoATeam(
            small_config(multicast=MulticastProtocol.ODMRP),
            pdf_table=pdf_table,
        ).run()
        assert result.syncs_received > 0


class TestDeterminism:
    def test_same_seed_same_results(self, pdf_table):
        r1 = CoCoATeam(small_config(), pdf_table=pdf_table).run()
        r2 = CoCoATeam(small_config(), pdf_table=pdf_table).run()
        np.testing.assert_allclose(r1.errors, r2.errors)
        assert r1.total_energy_j() == pytest.approx(r2.total_energy_j())
        assert r1.beacons_sent == r2.beacons_sent

    def test_different_seed_different_results(self, pdf_table):
        r1 = CoCoATeam(small_config(), pdf_table=pdf_table).run()
        r2 = CoCoATeam(
            small_config(master_seed=8), pdf_table=pdf_table
        ).run()
        assert not np.allclose(r1.errors, r2.errors)


class TestTeamResultHelpers:
    def test_summary_helpers(self, cocoa_result):
        team, result = cocoa_result
        series = result.mean_error_series()
        assert result.time_average_error() == pytest.approx(
            float(result.errors.mean())
        )
        assert result.final_mean_error() == pytest.approx(float(series[-1]))
        assert result.max_mean_error() == pytest.approx(float(series.max()))

    def test_error_snapshot_nearest_sample(self, cocoa_result):
        team, result = cocoa_result
        snapshot = result.error_snapshot(50.2)
        idx = int(np.argmin(np.abs(result.times - 50.2)))
        np.testing.assert_allclose(snapshot, result.errors[:, idx])
