"""Unit tests for the streaming localization service.

Covers the wire protocol, per-tenant sessions (buffer/sort/close
semantics, limits), the calibration warm-start store, shard queueing and
eviction, and the TCP front end including the ``/metrics`` scrape.
"""

from __future__ import annotations

import asyncio
import json

import pytest

import repro.experiments  # noqa: F401  (breaks the orchestrator import cycle)
from repro.core.pdf_table import PdfTable
from repro.orchestrator.cache import ResultCache
from repro.serve import (
    InProcessClient,
    LocalizationServer,
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServiceCore,
    SessionLimits,
    Shard,
    TenantSession,
    calibration_fingerprint,
    shard_index_for,
)
from repro.serve.protocol import (
    FixRequest,
    HelloRequest,
    ObserveRequest,
    PingRequest,
    StatsRequest,
    WindowRequest,
    encode_request,
    encode_response,
    parse_request,
    parse_response,
)
from repro.serve.session import CalibrationStore


BEACONS = [
    (10.0, 10.0, -60.0),
    (70.0, 10.0, -72.0),
    (40.0, 70.0, -68.0),
    (20.0, 40.0, -64.0),
]


def _hello(tenant="t", **kwargs):
    kwargs.setdefault("area_side_m", 80.0)
    return HelloRequest(tenant=tenant, **kwargs)


def _session(pdf_table, tenant="t", limits=None, clock=None, **kwargs):
    return TenantSession(
        _hello(tenant, **kwargs), table=pdf_table,
        limits=limits, clock=clock,
    )


def _run_window(session, robot=0, order=None):
    """Open, observe BEACONS (optionally permuted), close; return payload."""
    assert session.handle(
        WindowRequest(tenant=session.tenant, robot=robot, event="open")
    ).ok
    indices = order if order is not None else range(len(BEACONS))
    for seq in indices:
        x, y, rssi = BEACONS[seq]
        response = session.handle(ObserveRequest(
            tenant=session.tenant, robot=robot, seq=seq,
            x=x, y=y, rssi_dbm=rssi,
        ))
        assert response.ok
    close = session.handle(
        WindowRequest(tenant=session.tenant, robot=robot, event="close")
    )
    assert close.ok
    return close.payload


# -- protocol -----------------------------------------------------------------


def test_protocol_request_round_trip():
    requests = [
        _hello("alpha", calibration_seed=7, lut=True),
        WindowRequest(tenant="alpha", robot=3, event="open", t=12.5),
        ObserveRequest(tenant="alpha", robot=3, seq=2, x=1.25, y=-4.5,
                       rssi_dbm=-63.5, anchor_id=9, t=12.75),
        FixRequest(tenant="alpha", robot=3),
        StatsRequest(tenant="alpha"),
        PingRequest(),
    ]
    for request in requests:
        assert parse_request(encode_request(request)) == request


def test_protocol_floats_survive_the_wire_exactly():
    value = 67.14279829037997
    request = ObserveRequest(tenant="t", robot=0, seq=0, x=value,
                             y=value / 3.0, rssi_dbm=-61.123456789)
    decoded = parse_request(encode_request(request))
    assert decoded.x.hex() == request.x.hex()
    assert decoded.y.hex() == request.y.hex()
    assert decoded.rssi_dbm.hex() == request.rssi_dbm.hex()


@pytest.mark.parametrize("line", [
    "not json",
    '{"op": "warp"}',
    '{"op": "observe", "tenant": "t"}',                     # missing fields
    '{"op": "window", "tenant": "t", "robot": 0, "event": "pause"}',
    '{"op": "observe", "tenant": "", "robot": 0, "seq": 0, '
    '"x": 1, "y": 2, "rssi_dbm": -60}',                      # empty tenant
    '{"op": "observe", "tenant": "t", "robot": true, "seq": 0, '
    '"x": 1, "y": 2, "rssi_dbm": -60}',                      # bool robot
    '{"op": "hello", "tenant": "t", "calibration_samples": 0}',
])
def test_protocol_rejects_bad_lines(line):
    with pytest.raises(ProtocolError):
        parse_request(line)


def test_protocol_rejects_oversized_line():
    line = json.dumps({"op": "ping", "tenant": "x" * 70_000})
    with pytest.raises(ProtocolError):
        parse_request(line)


def test_protocol_response_round_trip():
    from repro.serve.protocol import Response, error_response

    ok = Response(ok=True, payload={"fixes": 2, "x_hex": "0x1.8p+5"})
    assert parse_response(encode_response(ok)) == ok
    bad = error_response("overloaded", "queue full")
    decoded = parse_response(encode_response(bad))
    assert not decoded.ok
    assert decoded.error == "overloaded"
    assert decoded.payload == {"detail": "queue full"}


# -- session ------------------------------------------------------------------


def test_session_window_produces_fix(pdf_table):
    session = _session(pdf_table)
    payload = _run_window(session)
    assert payload["fixed"]
    assert payload["applied"] == len(BEACONS)
    assert payload["x_hex"] == float(payload["x"]).hex()
    fix = session.handle(FixRequest(tenant="t", robot=0))
    assert fix.ok and fix.payload["has_fix"]
    assert fix.payload["x_hex"] == payload["x_hex"]


def test_session_sorts_by_source_seq(pdf_table):
    in_order = _run_window(_session(pdf_table))
    reversed_order = _run_window(
        _session(pdf_table), order=list(reversed(range(len(BEACONS))))
    )
    assert in_order["x_hex"] == reversed_order["x_hex"]
    assert in_order["y_hex"] == reversed_order["y_hex"]


def test_session_acknowledges_out_of_window_observations(pdf_table):
    session = _session(pdf_table)
    response = session.handle(ObserveRequest(
        tenant="t", robot=0, seq=0, x=1.0, y=2.0, rssi_dbm=-60.0,
    ))
    assert response.ok
    assert response.payload == {"buffered": False}
    assert session.observations_out_of_window == 1
    # ... and the next full window is unaffected by the stray beacon.
    assert _run_window(session)["applied"] == len(BEACONS)


def test_session_pending_limit_sheds(pdf_table):
    limits = SessionLimits(max_pending_observations=2)
    session = _session(pdf_table, limits=limits)
    session.handle(WindowRequest(tenant="t", robot=0, event="open"))
    results = []
    for seq in range(4):
        results.append(session.handle(ObserveRequest(
            tenant="t", robot=0, seq=seq, x=1.0, y=2.0, rssi_dbm=-60.0,
        )))
    assert [r.ok for r in results] == [True, True, False, False]
    assert results[2].error == "pending_limit"
    assert session.observations_dropped == 2


def test_session_robot_limit(pdf_table):
    session = _session(pdf_table, limits=SessionLimits(max_robots=1))
    assert session.handle(
        WindowRequest(tenant="t", robot=0, event="open")
    ).ok
    refused = session.handle(
        WindowRequest(tenant="t", robot=1, event="open")
    )
    assert not refused.ok
    assert refused.error == "robot_limit"


def test_session_reopen_drops_stale_pending(pdf_table):
    session = _session(pdf_table)
    session.handle(WindowRequest(tenant="t", robot=0, event="open"))
    session.handle(ObserveRequest(tenant="t", robot=0, seq=0,
                                  x=1.0, y=2.0, rssi_dbm=-60.0))
    # Window never closed; the next open must not leak the stale beacon.
    payload = _run_window(session)
    assert payload["applied"] == len(BEACONS)
    assert session.observations_dropped == 1


def test_session_stats_and_idle_tracking(pdf_table):
    now = {"t": 100.0}
    session = _session(pdf_table, clock=lambda: now["t"])
    _run_window(session)
    stats = session.handle(StatsRequest(tenant="t"))
    assert stats.ok
    assert stats.payload["windows_closed"] == 1
    assert stats.payload["observations"] == len(BEACONS)
    now["t"] = 160.0
    assert session.idle_for(now["t"]) == pytest.approx(60.0)


# -- calibration store --------------------------------------------------------


def test_calibration_fingerprint_is_prefixed_and_stable():
    a = calibration_fingerprint(1, 1000)
    assert a.startswith("cal-")
    assert a == calibration_fingerprint(1, 1000)
    assert a != calibration_fingerprint(2, 1000)
    assert a != calibration_fingerprint(1, 2000)


def test_calibration_store_shares_tables_in_process():
    store = CalibrationStore()
    first = store.table_for(_hello(calibration_samples=2000))
    second = store.table_for(_hello("other", calibration_samples=2000))
    assert first is second
    different = store.table_for(_hello(calibration_samples=3000))
    assert different is not first


def test_calibration_store_warm_starts_from_result_cache(tmp_path):
    cache = ResultCache(root=str(tmp_path / "cache"))
    cold = CalibrationStore(warm_store=cache)
    table = cold.table_for(_hello(calibration_samples=2000))
    assert cache.stats.stores == 1
    # A fresh process (new store instance) warm-starts from disk.
    warm_cache = ResultCache(root=str(tmp_path / "cache"))
    warm = CalibrationStore(warm_store=warm_cache)
    restored = warm.table_for(_hello(calibration_samples=2000))
    assert warm_cache.stats.hits == 1
    assert restored.rssi_range == table.rssi_range
    assert isinstance(restored, PdfTable)


def test_result_cache_payload_type_check(tmp_path):
    cache = ResultCache(root=str(tmp_path / "cache"))
    assert cache.put_payload("cal-xyz", {"not": "a table"})
    assert cache.get_payload("cal-xyz", PdfTable) is None  # typed miss
    assert cache.get_payload("cal-xyz", dict) == {"not": "a table"}


# -- shard --------------------------------------------------------------------


def test_shard_index_is_stable_and_in_range():
    assert shard_index_for("tenant-a", 4) == shard_index_for("tenant-a", 4)
    spread = {shard_index_for("tenant-%d" % i, 4) for i in range(64)}
    assert spread == {0, 1, 2, 3}


def _failing_factory(hello):
    raise RuntimeError("no sessions today")


def test_shard_queue_full_sheds():
    async def scenario():
        shard = Shard(0, _failing_factory, queue_limit=1,
                      tenant_inflight_limit=10)
        # Worker not started: the queue fills and stays full.
        futures = [shard.submit(PingRequest()) for _ in range(3)]
        shed = [f for f in futures if f.done()]
        assert len(shed) == 2
        for future in shed:
            assert future.result().error == "overloaded"
        assert shard.shed == 2
        await shard.stop()

    asyncio.run(scenario())


def test_shard_tenant_inflight_limit_sheds():
    async def scenario():
        shard = Shard(0, _failing_factory, queue_limit=100,
                      tenant_inflight_limit=2)
        futures = [
            shard.submit(StatsRequest(tenant="hog")) for _ in range(4)
        ]
        tenant_shed = [f for f in futures if f.done()]
        assert len(tenant_shed) == 2
        for future in tenant_shed:
            assert future.result().error == "tenant_overloaded"
        await shard.stop()

    asyncio.run(scenario())


def test_shard_routes_and_reports_unknown_tenant(pdf_table):
    async def scenario():
        shard = Shard(0, lambda hello: TenantSession(hello, pdf_table))
        shard.start()
        missing = await shard.submit(StatsRequest(tenant="ghost"))
        assert missing.error == "unknown_tenant"
        assert (await shard.submit(_hello("real"))).ok
        assert (await shard.submit(StatsRequest(tenant="real"))).ok
        bye = await shard.submit(
            parse_request('{"op": "bye", "tenant": "real"}')
        )
        assert bye.ok and bye.payload["tenant"] == "real"
        assert (await shard.submit(StatsRequest(tenant="real"))).error \
            == "unknown_tenant"
        await shard.stop()

    asyncio.run(scenario())


def test_shard_internal_errors_do_not_kill_the_worker():
    async def scenario():
        shard = Shard(0, _failing_factory)
        shard.start()
        broken = await shard.submit(_hello("doomed"))
        assert broken.error == "internal"
        assert (await shard.submit(PingRequest())).ok  # worker survived
        await shard.stop()

    asyncio.run(scenario())


def test_shard_evicts_idle_sessions(pdf_table):
    async def scenario():
        now = {"t": 0.0}
        shard = Shard(
            0, lambda hello: TenantSession(hello, pdf_table,
                                           clock=lambda: now["t"]),
            session_ttl_s=30.0, clock=lambda: now["t"],
        )
        shard.start()
        assert (await shard.submit(_hello("idler"))).ok
        assert (await shard.submit(_hello("active"))).ok
        now["t"] = 20.0
        assert (await shard.submit(StatsRequest(tenant="active"))).ok
        now["t"] = 40.0  # idler idle 40s > 30s TTL; active idle 20s
        assert shard.sweep_idle_sessions() == 1
        assert "idler" not in shard.sessions
        assert "active" in shard.sessions
        await shard.stop()

    asyncio.run(scenario())


def test_shard_stop_clears_inflight_ledger():
    async def scenario():
        shard = Shard(0, _failing_factory, queue_limit=100,
                      tenant_inflight_limit=2)
        # Worker not started: both submissions sit queued, charged to
        # the tenant's in-flight budget.
        futures = [
            shard.submit(StatsRequest(tenant="hog")) for _ in range(2)
        ]
        await shard.stop()
        for future in futures:
            assert future.result().error == "shutting_down"
        # A restarted shard must not shed the tenant against in-flight
        # counts from its previous life.
        shard.start()
        response = await shard.submit(StatsRequest(tenant="hog"))
        assert response.error == "unknown_tenant"  # routed, not shed
        await shard.stop()

    asyncio.run(scenario())


def test_shard_sweeper_survives_sweep_errors():
    async def scenario():
        shard = Shard(0, _failing_factory, session_ttl_s=30.0,
                      sweep_interval_s=0.01)
        calls = {"n": 0}
        recovered = asyncio.Event()

        def flaky_sweep():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("checkpoint store hiccup")
            recovered.set()
            return 0

        shard.sweep_idle_sessions = flaky_sweep
        shard.start()
        # The first sweep raises; the sweeper must survive it and keep
        # sweeping (TTL eviction used to die silently here, and the
        # stored exception then re-raised out of stop()).
        await asyncio.wait_for(recovered.wait(), timeout=5.0)
        await shard.stop()
        assert calls["n"] >= 2

    asyncio.run(scenario())


# -- server + clients ---------------------------------------------------------


def _small_core(**overrides):
    config = ServeConfig(n_shards=2, **overrides)
    return ServiceCore(config)


def test_in_process_client_round_trip():
    async def scenario():
        client = InProcessClient(_small_core())
        assert (await client.hello(
            "t", calibration_samples=2000, area_side_m=80.0
        )).ok
        await client.window_open("t", 0)
        for seq, (x, y, rssi) in enumerate(BEACONS):
            assert (await client.observe("t", 0, seq=seq, x=x, y=y,
                                         rssi_dbm=rssi)).ok
        close = await client.window_close("t", 0)
        assert close.ok and close.payload["fixed"]
        confidence = await client.confidence("t", 0)
        assert confidence.ok
        assert confidence.payload["beacons_applied"] == len(BEACONS)
        await client.core.stop()

    asyncio.run(scenario())


def test_tcp_round_trip_with_pipelining():
    async def scenario():
        server = LocalizationServer(_small_core())
        await server.start()
        async with ServeClient("127.0.0.1", server.port) as client:
            assert (await client.hello(
                "t", calibration_samples=2000, area_side_m=80.0
            )).ok
            await client.window_open("t", 0)
            # Pipelined: all observes in flight before any response read.
            futures = [
                await client.send(ObserveRequest(
                    tenant="t", robot=0, seq=seq, x=x, y=y, rssi_dbm=rssi,
                ))
                for seq, (x, y, rssi) in enumerate(BEACONS)
            ]
            for future in futures:
                assert (await future).ok
            close = await client.window_close("t", 0)
            assert close.ok and close.payload["fixed"]
        await server.stop()

    asyncio.run(scenario())


def test_tcp_bad_line_keeps_connection_usable():
    async def scenario():
        server = LocalizationServer(_small_core())
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        writer.write(b"this is not json\n")
        writer.write(b'{"op": "ping"}\n')
        await writer.drain()
        first = parse_response(await reader.readline())
        second = parse_response(await reader.readline())
        assert not first.ok and first.error == "bad_request"
        assert second.ok and second.payload["pong"]
        writer.close()
        await writer.wait_closed()
        await server.stop()

    asyncio.run(scenario())


async def _http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b"GET %s HTTP/1.1\r\nHost: test\r\n\r\n" % path)
    await writer.drain()
    data = await reader.read(-1)
    writer.close()
    await writer.wait_closed()
    return data


def test_metrics_endpoint_serves_prometheus_text():
    async def scenario():
        server = LocalizationServer(_small_core())
        await server.start()
        client = InProcessClient(server.core)
        await client.ping()
        scrape = await _http_get(server.port, b"/metrics")
        assert b"200 OK" in scrape
        assert b"repro_serve_requests_total" in scrape
        missing = await _http_get(server.port, b"/nope")
        assert b"404" in missing
        await server.stop()

    asyncio.run(scenario())


def test_service_core_stats_exposes_counters():
    async def scenario():
        core = _small_core()
        client = InProcessClient(core)
        await client.ping()
        stats = core.stats()
        assert stats["serve_requests_total"] == 1.0
        assert stats["serve_processed_total"] == 1.0
        assert "serve_request_latency_s_p50" in stats
        assert core.metrics_text().startswith("# TYPE")
        await core.stop()

    asyncio.run(scenario())


def test_cli_serve_smoke(capsys):
    from repro.cli import main

    code = main(["serve", "--port", "0", "--shards", "2", "--smoke"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "smoke: /metrics scrape ok" in out


@pytest.mark.parametrize("argv", [
    ["serve", "--port", "-5"],
    ["serve", "--port", "70000"],
])
def test_cli_serve_bad_config_exits_2(capsys, argv):
    from repro.cli import main

    code = main(argv)
    out = capsys.readouterr().out
    assert code == 2
    assert out.startswith("serve: ")


# -- observability: trace echo, gauges, probes under load ---------------------


def test_tcp_echoes_client_stamped_trace():
    async def scenario():
        server = LocalizationServer(_small_core())
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        writer.write(b'{"op": "ping", "trace": "client-abc"}\n')
        writer.write(b'{"op": "ping"}\n')
        await writer.drain()
        stamped = json.loads(await reader.readline())
        assert stamped["trace"] == "client-abc"
        # Sampled mode still answers the raw peer with a minted id.
        unstamped = json.loads(await reader.readline())
        assert unstamped.get("trace")
        assert unstamped["trace"] != "client-abc"
        writer.close()
        await writer.wait_closed()
        await server.stop()

    asyncio.run(scenario())


def test_trace_echo_survives_tracing_off():
    async def scenario():
        server = LocalizationServer(_small_core(trace_mode="off"))
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        writer.write(b'{"op": "ping", "trace": "still-here"}\n')
        writer.write(b'{"op": "ping"}\n')
        await writer.drain()
        stamped = json.loads(await reader.readline())
        assert stamped["trace"] == "still-here"
        # No client id and no tracing: nothing to echo, nothing minted.
        unstamped = json.loads(await reader.readline())
        assert "trace" not in unstamped
        writer.close()
        await writer.wait_closed()
        await server.stop()

    asyncio.run(scenario())


def test_trace_never_leaks_into_cached_replies(pdf_table):
    # An idempotent retry carrying a *different* trace id must get the
    # cached payload byte-identically, echoing the retry's own id.
    session = _session(pdf_table)
    first = session.handle(WindowRequest(
        tenant="t", robot=0, event="open", rid=1, trace="attempt-1",
    ))
    retry = session.handle(WindowRequest(
        tenant="t", robot=0, event="open", rid=1, trace="attempt-2",
    ))
    assert retry is first  # cache hit: the very same Response object
    assert first.trace is None
    assert (encode_response(first, trace="attempt-1")
            != encode_response(first, trace="attempt-2"))
    assert json.loads(encode_response(first, trace="attempt-2"))["trace"] \
        == "attempt-2"


def test_tracer_records_per_hop_spans():
    async def scenario():
        core = _small_core(trace_mode="always")
        client = InProcessClient(core)
        assert (await client.hello(
            "t", calibration_samples=2000, area_side_m=80.0
        )).ok
        await client.window_open("t", 0)
        for seq, (x, y, rssi) in enumerate(BEACONS):
            await client.observe("t", 0, seq=seq, x=x, y=y, rssi_dbm=rssi)
        close = await client.window_close("t", 0)
        assert close.ok and close.payload["fixed"]
        records = core.tracer.records()
        await core.stop()
        return records

    records = asyncio.run(scenario())
    names = {record["name"] for record in records}
    assert {"request", "queue", "shard_service",
            "estimator_ingest", "checkpoint"} <= names
    # Every non-root span is parented inside its own trace's root.
    roots = {record["trace"]: record["span"] for record in records
             if record["name"] == "request"}
    for record in records:
        if record["name"] != "request":
            assert record["parent"] == roots[record["trace"]]
    # Closed spans nest inside their root's interval.
    for record in records:
        root_spans = [r for r in records
                      if r["trace"] == record["trace"]
                      and r["name"] == "request"]
        assert record["start_s"] >= root_spans[0]["start_s"]
        assert record["end_s"] <= root_spans[0]["end_s"]


def test_robots_active_gauge_tracks_lifecycle():
    async def scenario():
        core = _small_core()
        client = InProcessClient(core)
        await client.hello("a", calibration_samples=2000, area_side_m=80.0)
        await client.hello("b", calibration_samples=2000, area_side_m=80.0)
        for tenant in ("a", "b"):
            await client.window_open(tenant, 0)
            await client.window_open(tenant, 1)
        # Live gauge moved by add() at lane creation, before any scrape.
        assert core.registry.gauge("serve_robots_active").value == 4.0
        assert core.registry.gauge("serve_robots_active_peak").value == 4.0
        assert (await client.bye("a")).ok
        # Decrement-on-evict: bye subtracts the tenant's robots.
        assert core.registry.gauge("serve_robots_active").value == 2.0
        stats = core.stats()
        await core.stop()
        return stats

    stats = asyncio.run(scenario())
    # The scrape recomputes truth; the peak survives the eviction.
    assert stats["serve_robots_active"] == 2.0
    assert stats["serve_robots_active_peak"] == 4.0


def test_health_probes_concurrent_with_live_ingest():
    async def scenario():
        server = LocalizationServer(_small_core())
        await server.start()

        async def load(tenant):
            async with ServeClient("127.0.0.1", server.port) as client:
                await client.hello(tenant, calibration_samples=2000,
                                   area_side_m=80.0)
                for window in range(4):
                    await client.window_open(tenant, 0, t=float(window))
                    for seq, (x, y, rssi) in enumerate(BEACONS):
                        await client.observe(tenant, 0, seq=seq, x=x, y=y,
                                             rssi_dbm=rssi, t=float(window))
                    close = await client.window_close(tenant, 0,
                                                      t=float(window))
                    assert close.ok
            return True

        async def scrape_loop():
            bodies = []
            for _ in range(6):
                for path in (b"/healthz", b"/readyz", b"/metrics"):
                    bodies.append((path, await _http_get(server.port, path)))
                await asyncio.sleep(0)
            return bodies

        results = await asyncio.gather(
            load("probe-a"), load("probe-b"),
            scrape_loop(), scrape_loop(),
        )
        await server.stop()
        return results

    load_a, load_b, *scrapes = asyncio.run(scenario())
    assert load_a and load_b
    for bodies in scrapes:
        for path, body in bodies:
            assert b"200 OK" in body, path
            if path == b"/healthz":
                assert b"ok" in body
            elif path == b"/readyz":
                assert b"ready" in body
            else:
                assert b"repro_serve_requests_total" in body
