"""Unit tests for ``repro.obs``: spans, sampling, exporters, views.

Everything here drives the tracer with a fake relative clock — no test
sleeps, and every asserted duration is exact arithmetic on the fake
clock's ticks.
"""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    OpsLog,
    RequestTracer,
    SpanBuffer,
    TraceConfig,
    hop_table,
    perfetto_trace_events,
    read_trace_jsonl,
    render_slowest,
    render_summary,
    slowest_traces,
    write_perfetto_json,
    write_trace_jsonl,
)
from repro.obs.oplog import NULL_OPS_LOG
from repro.serve.protocol import FixRequest, WindowRequest
from repro.telemetry.registry import MetricsRegistry


class FakeClock:
    """A hand-cranked relative clock."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, dt):
        self.now += dt


def make_tracer(mode="always", clock=None, registry=None, **knobs):
    return RequestTracer(
        TraceConfig(mode=mode, **knobs),
        clock=clock if clock is not None else FakeClock(),
        registry=registry if registry is not None else MetricsRegistry(),
        id_entropy="test",
    )


REQUEST = FixRequest(tenant="acme", robot=3, rid=7)


class TestTraceConfig:
    def test_defaults_valid(self):
        config = TraceConfig()
        assert config.mode == "sampled"

    @pytest.mark.parametrize("knobs", [
        {"mode": "sometimes"},
        {"head_sample_every": 0},
        {"slow_ms": -1.0},
        {"max_spans": 0},
    ])
    def test_bad_knobs_rejected(self, knobs):
        with pytest.raises(ValueError):
            TraceConfig(**knobs)


class TestActiveTrace:
    def test_root_and_queue_open_at_begin(self):
        clock = FakeClock()
        tracer = make_tracer(clock=clock)
        active = tracer.begin(REQUEST)
        names = [span.name for span in active.spans]
        assert names == ["request", "queue"]
        assert active.root.attrs == {"op": "fix", "tenant": "acme", "rid": 7}
        assert active.spans[1].parent_id == active.root.span_id

    def test_dequeued_closes_queue_opens_service(self):
        clock = FakeClock()
        tracer = make_tracer(clock=clock)
        active = tracer.begin(REQUEST)
        clock.tick(0.010)
        service = active.dequeued()
        assert active.queue_span.duration_s == pytest.approx(0.010)
        assert service.name == "shard_service"
        assert service.end_s is None
        clock.tick(0.005)
        active.close_span(service)
        assert service.duration_s == pytest.approx(0.005)

    def test_hop_context_manager_closes_on_exit(self):
        clock = FakeClock()
        tracer = make_tracer(clock=clock)
        active = tracer.begin(REQUEST)
        with active.hop("checkpoint", robot=3) as span:
            clock.tick(0.002)
        assert span.duration_s == pytest.approx(0.002)
        assert span.attrs["robot"] == 3

    def test_seal_closes_stragglers_and_tags_error(self):
        clock = FakeClock()
        tracer = make_tracer(clock=clock)
        active = tracer.begin(REQUEST)
        active.open_span("estimator_ingest")
        clock.tick(0.5)
        duration = active.seal("overloaded")
        assert duration == pytest.approx(0.5)
        assert all(span.end_s is not None for span in active.spans)
        assert active.root.attrs["error"] == "overloaded"

    def test_close_span_idempotent(self):
        clock = FakeClock()
        tracer = make_tracer(clock=clock)
        active = tracer.begin(REQUEST)
        span = active.open_span("checkpoint")
        clock.tick(0.001)
        active.close_span(span)
        first_end = span.end_s
        clock.tick(0.001)
        active.close_span(span)
        active.close_span(None)
        assert span.end_s == first_end


class TestSampling:
    def test_off_mode_returns_none(self):
        tracer = make_tracer(mode="off")
        assert tracer.begin(REQUEST) is None
        assert not tracer.enabled
        assert tracer.records() == []

    def test_always_mode_keeps_everything(self):
        tracer = make_tracer(mode="always")
        for _ in range(5):
            active = tracer.begin(REQUEST)
            tracer.finish(active, None)
        traces = {record["trace"] for record in tracer.records()}
        assert len(traces) == 5

    def test_head_sampling_one_in_n(self):
        registry = MetricsRegistry()
        tracer = make_tracer(mode="sampled", head_sample_every=4,
                             slow_ms=1e9, registry=registry)
        for _ in range(8):
            tracer.finish(tracer.begin(REQUEST), None)
        assert registry.counter("obs_traces_recorded").value == 2.0
        assert registry.counter("obs_traces_sampled_out").value == 6.0

    def test_tail_sampling_keeps_slow_requests(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        tracer = make_tracer(mode="sampled", head_sample_every=10**6,
                             slow_ms=25.0, clock=clock, registry=registry)
        # Burn the head sample so only the tail rule can keep traces.
        tracer.finish(tracer.begin(REQUEST), None)
        fast = tracer.begin(REQUEST)
        clock.tick(0.001)
        tracer.finish(fast, None)
        slow = tracer.begin(REQUEST)
        clock.tick(0.050)
        tracer.finish(slow, None)
        kept = {record["trace"] for record in tracer.records()}
        assert slow.trace_id in kept
        assert fast.trace_id not in kept
        assert registry.counter("obs_traces_tail_kept").value == 1.0

    def test_adopts_client_stamped_id(self):
        tracer = make_tracer()
        stamped = WindowRequest(tenant="acme", robot=0, event="close",
                                trace="client-42")
        active = tracer.begin(stamped)
        assert active.trace_id == "client-42"

    def test_minted_ids_unique_and_prefixed(self):
        tracer = make_tracer()
        ids = {tracer.mint() for _ in range(100)}
        assert len(ids) == 100
        assert all(minted.startswith("test-") for minted in ids)

    def test_error_response_tagged_on_root(self):
        from repro.serve.protocol import error_response

        tracer = make_tracer()
        active = tracer.begin(REQUEST)
        tracer.finish(active, error_response("overloaded"))
        roots = [record for record in tracer.records()
                 if record["name"] == "request"]
        assert roots[0]["attrs"]["error"] == "overloaded"

    def test_null_tracer_surface(self):
        assert NULL_TRACER.begin(REQUEST) is None
        NULL_TRACER.finish(None, None)
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.spans_for("x") == []
        assert not NULL_TRACER.enabled


class TestSpanBuffer:
    def test_bounded_with_drop_accounting(self):
        buffer = SpanBuffer(max_spans=3)
        for item in range(5):
            buffer.append(item)
        assert len(buffer) == 3
        assert list(buffer) == [2, 3, 4]
        assert buffer.dropped == 2
        assert buffer.max_spans == 3

    def test_extend_and_clear(self):
        buffer = SpanBuffer(max_spans=10)
        buffer.extend([1, 2, 3])
        assert buffer.snapshot() == [1, 2, 3]
        buffer.clear()
        assert len(buffer) == 0

    def test_tracer_buffer_evicts_oldest(self):
        tracer = make_tracer(max_spans=4)
        first = tracer.begin(REQUEST)
        tracer.finish(first, None)
        second = tracer.begin(REQUEST)
        tracer.finish(second, None)
        third = tracer.begin(REQUEST)
        tracer.finish(third, None)
        kept = {record["trace"] for record in tracer.records()}
        assert first.trace_id not in kept
        assert {second.trace_id, third.trace_id} <= kept


class TestOpsLog:
    def test_emit_records_relative_time_and_fields(self):
        clock = FakeClock(start=5.0)
        ops = OpsLog(clock=clock)
        ops.emit("shard_restarted", shard=1, restarts=2, error=None)
        clock.tick(1.0)
        ops.emit("session_evicted", tenant="acme", robots=4)
        records = ops.records()
        assert records[0] == {"kind": "shard_restarted", "at_s": 5.0,
                              "shard": 1, "restarts": 2}
        assert records[1]["at_s"] == 6.0
        assert records[1]["tenant"] == "acme"

    def test_bounded(self):
        ops = OpsLog(max_events=3, clock=FakeClock())
        for index in range(6):
            ops.emit("tick", index=index)
        assert [record["index"] for record in ops.records()] == [3, 4, 5]

    def test_write_jsonl(self, tmp_path):
        ops = OpsLog(clock=FakeClock())
        ops.emit("tick", index=1)
        path = tmp_path / "ops.jsonl"
        assert ops.write_jsonl(path) == 1
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "tick"

    def test_null_shim(self):
        NULL_OPS_LOG.emit("anything", key="value")
        assert NULL_OPS_LOG.records() == []


def recorded_spans():
    """A deterministic recording: two traces with distinct shapes."""
    clock = FakeClock()
    tracer = make_tracer(clock=clock)
    fast = tracer.begin(FixRequest(tenant="acme", robot=1, trace="t-fast"))
    clock.tick(0.001)
    service = fast.dequeued()
    clock.tick(0.002)
    fast.close_span(service)
    tracer.finish(fast, None)

    slow = tracer.begin(WindowRequest(tenant="acme", robot=2, event="close",
                                      trace="t-slow"))
    clock.tick(0.004)
    service = slow.dequeued()
    with slow.hop("estimator_ingest"):
        clock.tick(0.030)
    with slow.hop("checkpoint"):
        clock.tick(0.006)
    slow.close_span(service)
    tracer.finish(slow, None)
    return tracer.records()


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        records = recorded_spans()
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(path, records) == len(records)
        assert read_trace_jsonl(path) == records

    def test_perfetto_document_shape(self):
        document = perfetto_trace_events(recorded_spans())
        events = document["traceEvents"]
        complete = [event for event in events if event["ph"] == "X"]
        metadata = [event for event in events if event["ph"] == "M"]
        assert complete and metadata
        # One tid track per trace, process named via metadata.
        assert {event["args"]["name"] for event in metadata
                if event["name"] == "process_name"} == {"repro.serve"}
        tids = {event["tid"] for event in complete}
        assert len(tids) == 2
        for event in complete:
            assert event["dur"] >= 0.0
            assert event["args"]["trace"] in ("t-fast", "t-slow")

    def test_perfetto_skips_open_spans(self):
        records = recorded_spans()
        records.append({"trace": "t-open", "span": 9, "parent": None,
                        "name": "request", "start_s": 0.0, "end_s": None,
                        "attrs": {}})
        document = perfetto_trace_events(records)
        names = {event["args"].get("trace")
                 for event in document["traceEvents"]
                 if event["ph"] == "X"}
        assert "t-open" not in names

    def test_write_perfetto_json_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.perfetto.json"
        count = write_perfetto_json(path, recorded_spans())
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert count == len(recorded_spans())
        assert document["displayTimeUnit"] == "ms"


class TestSummary:
    def test_hop_table_attribution(self):
        rows = hop_table(recorded_spans())
        byname = {row["name"]: row for row in rows}
        assert rows[0]["name"] == "request"
        assert rows[0]["share"] == pytest.approx(1.0)
        assert byname["estimator_ingest"]["mean_ms"] == pytest.approx(30.0)
        assert byname["checkpoint"]["total_ms"] == pytest.approx(6.0)
        assert byname["queue"]["count"] == 2
        # Hops sorted by total time after the root row.
        hop_totals = [row["total_ms"] for row in rows[1:]]
        assert hop_totals == sorted(hop_totals, reverse=True)

    def test_slowest_traces_ranked_with_hops(self):
        entries = slowest_traces(recorded_spans(), n=1)
        assert len(entries) == 1
        assert entries[0]["trace"] == "t-slow"
        assert entries[0]["duration_ms"] == pytest.approx(40.0)
        assert entries[0]["hops"]["estimator_ingest"] == pytest.approx(30.0)

    def test_render_views_are_stable_text(self):
        records = recorded_spans()
        summary = render_summary(records)
        assert "2 traces" in summary
        assert "estimator_ingest" in summary
        slowest = render_slowest(records, n=2)
        assert slowest.splitlines()[0].lstrip().startswith("1. t-slow")
        assert render_summary([]) == "no closed spans recorded"
        assert render_slowest([]) == "no closed spans recorded"
