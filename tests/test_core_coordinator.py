"""Unit tests for the coordinator, beaconer and SYNC handling."""

import pytest

from repro.core.beaconing import BEACON_KIND, AnchorBeaconer
from repro.core.clock import DriftingClock
from repro.core.coordinator import Coordinator, SyncPayload
from repro.energy.model import EnergyModel
from repro.mobility.base import ScriptedMobility, StationaryMobility
from repro.net.channel import BroadcastChannel
from repro.net.interface import NetworkInterface
from repro.net.phy import PathLossModel
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.util.geometry import Vec2


def build_node(sim=None, position=Vec2(0, 0), node_id=0, seed=1, mobility=None):
    sim = sim or Simulator()
    streams = RandomStreams(seed)
    channel = getattr(sim, "_test_channel", None)
    if channel is None:
        channel = BroadcastChannel(sim, PathLossModel(), streams.get("phy"))
        sim._test_channel = channel
    mobility = mobility or StationaryMobility(position)
    interface = NetworkInterface(
        sim,
        node_id,
        mobility,
        channel,
        EnergyModel.wavelan_2mbps(),
        streams.spawn("mac", node_id),
    )
    return sim, channel, interface, mobility


class TestCoordinatorSchedule:
    def make(self, coordination=True, drift=0.0, **kwargs):
        sim, channel, interface, _ = build_node()
        events = []

        def recorder(name):
            return lambda: events.append((name, sim.now))

        coordinator = Coordinator(
            sim,
            DriftingClock(drift),
            interface,
            period_s=20.0,
            window_s=3.0,
            guard_s=1.0,
            sync_slack_s=0.5,
            coordination=coordination,
            on_window_open=recorder("open"),
            on_window_start=recorder("start"),
            on_window_close=recorder("close"),
            on_period_end=recorder("end"),
            **kwargs,
        )
        return sim, interface, coordinator, events

    def test_first_window_opens_immediately(self):
        sim, interface, coordinator, events = self.make()
        coordinator.start()
        sim.run(until=0.5)
        assert ("open", 0.0) in events
        assert ("start", 0.0) in events

    def test_window_close_after_window_length(self):
        sim, interface, coordinator, events = self.make()
        coordinator.start()
        sim.run(until=5.0)
        closes = [t for name, t in events if name == "close"]
        assert closes == [pytest.approx(3.0)]

    def test_radio_sleeps_between_windows(self):
        sim, interface, coordinator, events = self.make()
        coordinator.start()
        sim.run(until=10.0)
        assert not interface.is_awake

    def test_radio_wakes_before_next_window(self):
        sim, interface, coordinator, events = self.make()
        coordinator.start()
        sim.run(until=19.5)  # next window starts at 20, guard 1 s
        assert interface.is_awake

    def test_periodic_cycle(self):
        sim, interface, coordinator, events = self.make()
        coordinator.start()
        sim.run(until=65.0)
        opens = [t for name, t in events if name == "open"]
        assert opens == [
            pytest.approx(0.0),
            pytest.approx(19.0),
            pytest.approx(39.0),
            pytest.approx(59.0),
        ]
        assert coordinator.windows_run == 4

    def test_without_coordination_radio_stays_awake(self):
        sim, interface, coordinator, events = self.make(coordination=False)
        coordinator.start()
        sim.run(until=50.0)
        assert interface.is_awake
        # Schedule still runs: estimators need their windows either way.
        assert coordinator.windows_run >= 3

    def test_drifting_clock_shifts_schedule(self):
        sim, interface, coordinator, events = self.make(drift=0.02)
        coordinator.start()
        sim.run(until=40.0)
        opens = [t for name, t in events if name == "open"]
        # Local window 2 at local t=19 (20 - guard): true = 19/1.02.
        assert opens[1] == pytest.approx(19.0 / 1.02, abs=0.01)

    def test_cannot_start_twice(self):
        sim, interface, coordinator, events = self.make()
        coordinator.start()
        with pytest.raises(RuntimeError):
            coordinator.start()

    def test_on_sync_adopts_parameters(self):
        sim, interface, coordinator, events = self.make()
        coordinator.start()
        sim.run(until=1.0)
        coordinator.on_sync(
            SyncPayload(
                period_s=40.0,
                window_s=5.0,
                seq=1,
                reference_local_time=1.2,
            )
        )
        assert coordinator.period_s == 40.0
        assert coordinator.window_s == 5.0
        assert coordinator.syncs_received == 1
        assert coordinator.clock.local_time(sim.now) == pytest.approx(1.2)

    def test_on_sync_rejects_nonsense_parameters(self):
        sim, interface, coordinator, events = self.make()
        coordinator.on_sync(
            SyncPayload(
                period_s=1.0, window_s=5.0, seq=1, reference_local_time=0.0
            )
        )
        assert coordinator.period_s == 20.0  # unchanged

    def test_invalid_construction(self):
        sim, channel, interface, _ = build_node()
        with pytest.raises(ValueError):
            Coordinator(
                sim, DriftingClock(0.0), interface, period_s=3.0, window_s=3.0,
                guard_s=1.0,
            )
        with pytest.raises(ValueError):
            Coordinator(
                sim, DriftingClock(0.0), interface, period_s=20.0,
                window_s=3.0, guard_s=-1.0,
            )

    def test_window_hooks_fire_after_primary_callbacks(self):
        sim, interface, coordinator, events = self.make()
        coordinator.add_window_start_hook(
            lambda: events.append(("hook-start", sim.now))
        )
        coordinator.add_window_close_hook(
            lambda: events.append(("hook-close", sim.now))
        )
        coordinator.start()
        sim.run(until=5.0)
        assert events.index(("start", 0.0)) < events.index(
            ("hook-start", 0.0)
        )
        closes = [t for name, t in events if name == "hook-close"]
        assert closes == [pytest.approx(3.0)]

    def test_hooks_run_in_registration_order(self):
        sim, interface, coordinator, events = self.make()
        coordinator.add_window_start_hook(lambda: events.append(("h1", 0)))
        coordinator.add_window_start_hook(lambda: events.append(("h2", 0)))
        coordinator.start()
        sim.run(until=0.5)
        assert events.index(("h1", 0)) < events.index(("h2", 0))


class TestAnchorBeaconer:
    def test_sends_k_beacons_in_window(self):
        sim, channel, interface, mobility = build_node()
        # A listener 30 m away.
        _, _, listener, _ = build_node(sim=sim, position=Vec2(30, 0), node_id=1)
        heard = []
        listener.on_receive(BEACON_KIND, lambda rp: heard.append(rp))
        beaconer = AnchorBeaconer(
            sim,
            interface,
            mobility,
            RandomStreams(2).get("beacon"),
            k=3,
            window_s=3.0,
        )
        beaconer.start_window()
        sim.run(until=5.0)
        assert beaconer.beacons_sent == 3
        assert len(heard) == 3
        send_times = [rp.receive_time for rp in heard]
        assert max(send_times) <= 3.1

    def test_beacon_carries_current_position(self):
        sim = Simulator()
        mobility = ScriptedMobility([Vec2(0, 0), Vec2(100, 0)], speed=10.0)
        streams = RandomStreams(3)
        channel = BroadcastChannel(sim, PathLossModel(), streams.get("phy"))
        sim._test_channel = channel
        interface = NetworkInterface(
            sim, 0, mobility, channel, EnergyModel.wavelan_2mbps(),
            streams.spawn("mac", 0),
        )
        _, _, listener, _ = build_node(sim=sim, position=Vec2(20, 10), node_id=1)
        payloads = []
        listener.on_receive(
            BEACON_KIND, lambda rp: payloads.append(rp.packet.payload)
        )
        beaconer = AnchorBeaconer(
            sim, interface, mobility, streams.get("beacon"), k=3, window_s=3.0
        )
        beaconer.start_window()
        sim.run(until=4.0)
        assert len(payloads) == 3
        # The anchor moves at 10 m/s: successive beacons advertise
        # different positions, each matching the true position at send time.
        xs = [p.x for p in payloads]
        assert xs == sorted(xs)
        assert xs[-1] - xs[0] > 5.0

    def test_slam_error_perturbs_coordinates(self):
        sim, channel, interface, mobility = build_node()
        _, _, listener, _ = build_node(sim=sim, position=Vec2(10, 0), node_id=1)
        payloads = []
        listener.on_receive(
            BEACON_KIND, lambda rp: payloads.append(rp.packet.payload)
        )
        beaconer = AnchorBeaconer(
            sim,
            interface,
            mobility,
            RandomStreams(4).get("beacon"),
            k=3,
            window_s=3.0,
            slam_error_std_m=2.0,
        )
        beaconer.start_window()
        sim.run(until=4.0)
        offsets = [
            Vec2(p.x, p.y).distance_to(Vec2(0, 0)) for p in payloads
        ]
        assert any(offset > 0.1 for offset in offsets)

    def test_asleep_anchor_skips_beacons(self):
        sim, channel, interface, mobility = build_node()
        beaconer = AnchorBeaconer(
            sim, interface, mobility, RandomStreams(5).get("beacon"),
            k=3, window_s=3.0,
        )
        interface.sleep()
        beaconer.start_window()
        sim.run(until=4.0)
        assert beaconer.beacons_sent == 0

    def test_set_window_validates(self):
        sim, channel, interface, mobility = build_node()
        beaconer = AnchorBeaconer(
            sim, interface, mobility, RandomStreams(5).get("beacon")
        )
        beaconer.set_window(5.0)
        with pytest.raises(ValueError):
            beaconer.set_window(0.0)

    def test_invalid_construction(self):
        sim, channel, interface, mobility = build_node()
        rng = RandomStreams(5).get("beacon")
        with pytest.raises(ValueError):
            AnchorBeaconer(sim, interface, mobility, rng, k=0)
        with pytest.raises(ValueError):
            AnchorBeaconer(sim, interface, mobility, rng, window_s=0.0)
        with pytest.raises(ValueError):
            AnchorBeaconer(
                sim, interface, mobility, rng, slam_error_std_m=-1.0
            )
