"""Unit tests for the mobility substrate: waypoint model and base classes."""

import math

import pytest

from repro.mobility.base import Pose, ScriptedMobility, StationaryMobility
from repro.mobility.waypoint import WaypointMobility
from repro.sim.rng import RandomStreams
from repro.util.geometry import Rect, Vec2


@pytest.fixture()
def area():
    return Rect.square(200.0)


@pytest.fixture()
def rng():
    return RandomStreams(11).get("mobility")


class TestStationaryMobility:
    def test_never_moves(self):
        mob = StationaryMobility(Vec2(5, 5), heading=1.0)
        assert mob.position(0.0) == Vec2(5, 5)
        assert mob.position(1000.0) == Vec2(5, 5)
        assert mob.heading(500.0) == 1.0
        assert mob.speed(500.0) == 0.0


class TestScriptedMobility:
    def test_starts_at_first_waypoint(self):
        mob = ScriptedMobility([Vec2(0, 0), Vec2(10, 0)], speed=1.0)
        assert mob.position(0.0) == Vec2(0, 0)

    def test_interpolates_along_segment(self):
        mob = ScriptedMobility([Vec2(0, 0), Vec2(10, 0)], speed=2.0)
        p = mob.position(2.5)
        assert p.x == pytest.approx(5.0)
        assert p.y == pytest.approx(0.0)

    def test_travel_time(self):
        mob = ScriptedMobility(
            [Vec2(0, 0), Vec2(10, 0), Vec2(10, 10)], speed=2.0
        )
        assert mob.travel_time == pytest.approx(10.0)

    def test_stops_at_final_waypoint(self):
        mob = ScriptedMobility([Vec2(0, 0), Vec2(10, 0)], speed=1.0)
        assert mob.position(100.0) == Vec2(10, 0)
        assert mob.speed(100.0) == 0.0

    def test_heading_follows_segments(self):
        mob = ScriptedMobility(
            [Vec2(0, 0), Vec2(10, 0), Vec2(10, 10)], speed=1.0
        )
        assert mob.heading(5.0) == pytest.approx(0.0)
        assert mob.heading(15.0) == pytest.approx(math.pi / 2)

    def test_loop_repeats(self):
        mob = ScriptedMobility(
            [Vec2(0, 0), Vec2(10, 0)], speed=1.0, loop=True
        )
        # Loop path: 0 -> 10 -> back to 0, total 20 s.
        p = mob.position(25.0)
        assert p.x == pytest.approx(5.0)

    def test_requires_two_waypoints(self):
        with pytest.raises(ValueError):
            ScriptedMobility([Vec2(0, 0)], speed=1.0)

    def test_rejects_identical_waypoints(self):
        with pytest.raises(ValueError):
            ScriptedMobility([Vec2(1, 1), Vec2(1, 1)], speed=1.0)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            ScriptedMobility([Vec2(0, 0), Vec2(1, 0)], speed=0.0)

    def test_start_time_delays_motion(self):
        mob = ScriptedMobility(
            [Vec2(0, 0), Vec2(10, 0)], speed=1.0, start_time=5.0
        )
        assert mob.position(3.0) == Vec2(0, 0)
        assert mob.position(7.0).x == pytest.approx(2.0)


class TestWaypointMobility:
    def test_stays_inside_area(self, area, rng):
        mob = WaypointMobility(area, rng, v_max=2.0)
        for t in range(0, 2000, 50):
            assert area.contains(mob.position(float(t)), tolerance=1e-9)

    def test_speed_within_bounds_while_moving(self, area, rng):
        mob = WaypointMobility(area, rng, v_min=0.1, v_max=2.0)
        for t in range(0, 1000, 25):
            pose = mob.pose(float(t))
            if pose.speed > 0:
                assert 0.1 <= pose.speed <= 2.0

    def test_continuous_position(self, area, rng):
        """Positions at close times must be close (no teleporting)."""
        mob = WaypointMobility(area, rng, v_max=2.0)
        prev = mob.position(0.0)
        for i in range(1, 600):
            t = i * 0.5
            cur = mob.position(t)
            assert prev.distance_to(cur) <= 2.0 * 0.5 + 1e-9
            prev = cur

    def test_moves_over_time(self, area, rng):
        mob = WaypointMobility(area, rng, v_max=2.0)
        start = mob.position(0.0)
        later = mob.position(300.0)
        assert start.distance_to(later) > 0.0

    def test_fixed_start_position(self, area, rng):
        mob = WaypointMobility(area, rng, start=Vec2(50, 50))
        assert mob.position(0.0) == Vec2(50, 50)

    def test_start_outside_area_rejected(self, area, rng):
        with pytest.raises(ValueError):
            WaypointMobility(area, rng, start=Vec2(-5, 50))

    def test_backwards_query_rejected(self, area, rng):
        mob = WaypointMobility(area, rng)
        mob.position(100.0)
        with pytest.raises(ValueError):
            mob.position(50.0)

    def test_invalid_speed_bounds_rejected(self, area, rng):
        with pytest.raises(ValueError):
            WaypointMobility(area, rng, v_min=2.0, v_max=0.5)
        with pytest.raises(ValueError):
            WaypointMobility(area, rng, v_min=0.0, v_max=1.0)

    def test_negative_rest_rejected(self, area, rng):
        with pytest.raises(ValueError):
            WaypointMobility(area, rng, rest_time_max=-1.0)

    def test_trajectory_reproducible_with_same_stream(self, area):
        mob1 = WaypointMobility(area, RandomStreams(5).spawn("m", 0))
        mob2 = WaypointMobility(area, RandomStreams(5).spawn("m", 0))
        for t in (0.0, 10.0, 100.0, 500.0):
            assert mob1.position(t) == mob2.position(t)

    def test_trajectory_independent_of_query_granularity(self, area):
        mob1 = WaypointMobility(area, RandomStreams(5).spawn("m", 1))
        mob2 = WaypointMobility(area, RandomStreams(5).spawn("m", 1))
        for t in range(0, 500):
            mob1.position(float(t))
        assert mob1.position(500.0) == mob2.position(500.0)

    def test_rest_time_pauses_robot(self, area):
        rng = RandomStreams(5).spawn("m", 2)
        mob = WaypointMobility(area, rng, rest_time_max=30.0)
        leg = mob.current_leg(0.0)
        if leg.rest_until > leg.arrive_time:
            mid_rest = (leg.arrive_time + leg.rest_until) / 2.0
            assert mob.pose(mid_rest).speed == 0.0
            assert mob.position(mid_rest) == leg.dest

    def test_time_to_waypoint_decreases(self, area, rng):
        mob = WaypointMobility(area, rng)
        t0 = mob.time_to_waypoint(0.0)
        t1 = mob.time_to_waypoint(min(5.0, t0 / 2))
        assert t1 < t0

    def test_rest_remaining_zero_while_moving(self, area, rng):
        mob = WaypointMobility(area, rng, rest_time_max=0.0)
        assert mob.rest_remaining(0.0) == 0.0

    def test_legs_chain_without_gaps(self, area, rng):
        mob = WaypointMobility(area, rng, v_max=2.0)
        mob.position(1000.0)
        legs = mob._legs
        assert len(legs) >= 2
        for a, b in zip(legs, legs[1:]):
            assert b.start == a.dest
            assert b.depart_time == pytest.approx(a.rest_until)

    def test_pose_heading_points_at_destination(self, area, rng):
        mob = WaypointMobility(area, rng)
        leg = mob.current_leg(0.0)
        pose = mob.pose(leg.depart_time + 0.1)
        assert pose.heading == pytest.approx(leg.heading)
