"""Shared fixtures for the test suite.

The expensive shared artifact is the calibrated PDF Table; it is built once
per session from the default channel and reused by every localization test.
"""

from __future__ import annotations

import gc
import os

import pytest

from repro.core.calibration import build_pdf_table
from repro.net.phy import PathLossModel
from repro.sim.rng import RandomStreams


@pytest.fixture(autouse=True)
def _async_sanitizer():
    """Run every test under the asyncio sanitizer when armed.

    ``REPRO_ASYNC_SANITIZE=1`` (set by ``repro lint --sanitize`` and
    the CI gate) installs an event-loop policy whose loops run in debug
    mode with a slow-callback threshold; blocked-loop and lost-task
    diagnostics become test failures instead of log noise.
    """
    if not os.environ.get("REPRO_ASYNC_SANITIZE"):
        yield
        return
    from repro.lint.sanitize import loop_sanitizer, threshold_from_env

    with loop_sanitizer(slow_callback_s=threshold_from_env()) as armed:
        yield
        # Destroy dropped task handles *inside* the armed window so
        # "Task was destroyed but it is pending" lands on the test that
        # leaked the task, not a later one.
        gc.collect()
    if armed.findings:
        pytest.fail(
            "async sanitizer caught %d finding%s:\n%s" % (
                len(armed.findings),
                "" if len(armed.findings) == 1 else "s",
                "\n".join(f.format() for f in armed.findings),
            ),
            pytrace=False,
        )


@pytest.fixture(scope="session")
def default_path_loss():
    """The default (paper-calibrated) channel model."""
    return PathLossModel()


#: Session-scoped tables that tests (or teams built from them) may have
#: switched to LUT mode; reset to the exact path after every test.
_session_tables = []


@pytest.fixture(scope="session")
def pdf_table(default_path_loss):
    """A session-wide calibrated PDF Table (60k samples: fast, adequate)."""
    streams = RandomStreams(1234)
    table = build_pdf_table(
        default_path_loss, streams.get("calibration"), n_samples=60_000
    ).table
    _session_tables.append(table)
    return table


@pytest.fixture(autouse=True)
def _reset_session_table_luts():
    """Keep tests order-independent: a CoCoATeam run with the LUT kernel
    on flips the shared table's LUT state, so restore the exact path
    after each test."""
    yield
    for table in _session_tables:
        table.set_lut(False)


@pytest.fixture()
def streams():
    """A fresh named-stream factory with a fixed master seed."""
    return RandomStreams(42)
