"""Shared fixtures for the test suite.

The expensive shared artifact is the calibrated PDF Table; it is built once
per session from the default channel and reused by every localization test.
"""

from __future__ import annotations

import pytest

from repro.core.calibration import build_pdf_table
from repro.net.phy import PathLossModel
from repro.sim.rng import RandomStreams


@pytest.fixture(scope="session")
def default_path_loss():
    """The default (paper-calibrated) channel model."""
    return PathLossModel()


#: Session-scoped tables that tests (or teams built from them) may have
#: switched to LUT mode; reset to the exact path after every test.
_session_tables = []


@pytest.fixture(scope="session")
def pdf_table(default_path_loss):
    """A session-wide calibrated PDF Table (60k samples: fast, adequate)."""
    streams = RandomStreams(1234)
    table = build_pdf_table(
        default_path_loss, streams.get("calibration"), n_samples=60_000
    ).table
    _session_tables.append(table)
    return table


@pytest.fixture(autouse=True)
def _reset_session_table_luts():
    """Keep tests order-independent: a CoCoATeam run with the LUT kernel
    on flips the shared table's LUT state, so restore the exact path
    after each test."""
    yield
    for table in _session_tables:
        table.set_lut(False)


@pytest.fixture()
def streams():
    """A fresh named-stream factory with a fixed master seed."""
    return RandomStreams(42)
