"""Shared fixtures for the test suite.

The expensive shared artifact is the calibrated PDF Table; it is built once
per session from the default channel and reused by every localization test.
"""

from __future__ import annotations

import pytest

from repro.core.calibration import build_pdf_table
from repro.net.phy import PathLossModel
from repro.sim.rng import RandomStreams


@pytest.fixture(scope="session")
def default_path_loss():
    """The default (paper-calibrated) channel model."""
    return PathLossModel()


@pytest.fixture(scope="session")
def pdf_table(default_path_loss):
    """A session-wide calibrated PDF Table (60k samples: fast, adequate)."""
    streams = RandomStreams(1234)
    return build_pdf_table(
        default_path_loss, streams.get("calibration"), n_samples=60_000
    ).table


@pytest.fixture()
def streams():
    """A fresh named-stream factory with a fixed master seed."""
    return RandomStreams(42)
