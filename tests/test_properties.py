"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bayes import GridBayesFilter
from repro.core.clock import DriftingClock
from repro.core.pdf_table import DistanceDistribution
from repro.mobility.base import ScriptedMobility
from repro.mobility.dead_reckoning import DeadReckoning
from repro.mobility.odometry import OdometryReading
from repro.multicast.lifetime import Kinematics, predict_link_lifetime
from repro.net.phy import PathLossModel
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.util.geometry import Rect, Vec2, clamp, normalize_angle
from repro.util.units import dbm_to_mw, mw_to_dbm

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
coords = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)
angles = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestGeometryProperties:
    @given(coords, coords, coords, coords)
    def test_distance_symmetry_and_nonnegativity(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assert a.distance_to(b) >= 0.0
        assert a.distance_to(b) == b.distance_to(a)

    @given(coords, coords, coords, coords, coords, coords)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = Vec2(ax, ay), Vec2(bx, by), Vec2(cx, cy)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(angles)
    def test_normalize_angle_in_range(self, angle):
        result = normalize_angle(angle)
        assert -math.pi < result <= math.pi + 1e-12

    @given(angles)
    def test_normalize_angle_preserves_direction(self, angle):
        result = normalize_angle(angle)
        assert math.cos(result) == pytest_approx(math.cos(angle))
        assert math.sin(result) == pytest_approx(math.sin(angle))

    @given(coords, coords, angles)
    def test_rotation_preserves_norm(self, x, y, angle):
        v = Vec2(x, y)
        assert v.rotated(angle).norm() == pytest_approx(v.norm(), abs_tol=1e-6)

    @given(finite, st.floats(-100, 100, allow_nan=False), st.floats(0, 100, allow_nan=False))
    def test_clamp_within_bounds(self, value, low, width):
        high = low + width
        result = clamp(value, low, high)
        assert low <= result <= high


def pytest_approx(expected, abs_tol=1e-9):
    import pytest

    return pytest.approx(expected, abs=max(abs_tol, abs(expected) * 1e-9))


class TestUnitsProperties:
    @given(st.floats(min_value=-150.0, max_value=60.0, allow_nan=False))
    def test_dbm_roundtrip(self, dbm):
        assert mw_to_dbm(dbm_to_mw(dbm)) == pytest_approx(dbm, abs_tol=1e-9)

    @given(
        st.floats(min_value=-150.0, max_value=60.0),
        st.floats(min_value=-150.0, max_value=60.0),
    )
    def test_dbm_monotone(self, a, b):
        # Require a meaningful gap: adjacent floats can collapse in 10**x.
        if a + 1e-9 < b:
            assert dbm_to_mw(a) < dbm_to_mw(b)


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=40))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=30))
    def test_identical_times_fifo(self, tags):
        sim = Simulator()
        fired = []
        for tag in tags:
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == tags


class TestPathLossProperties:
    @given(
        st.floats(min_value=1.0, max_value=200.0),
        st.floats(min_value=1.0, max_value=200.0),
    )
    def test_mean_rssi_monotone_decreasing(self, d1, d2):
        model = PathLossModel()
        if d1 < d2:
            assert model.mean_rssi(d1) >= model.mean_rssi(d2)

    @given(st.floats(min_value=-120.0, max_value=-33.0))
    def test_distance_inverse_consistent(self, rssi):
        model = PathLossModel()
        d = model.distance_for_mean_rssi(rssi)
        assert d >= 1.0
        if d > 1.0:
            assert model.mean_rssi(d) == pytest_approx(rssi, abs_tol=1e-6)


class TestGeneratorStreamProperties:
    """The RNG identities the batched-delivery kernel rests on: a PCG64
    ``Generator`` consumes its stream identically whether values are
    drawn one at a time, in chunks, or in one batch (see
    :meth:`repro.net.phy.PathLossModel.sample_rssi_batch`)."""

    seeds = st.integers(min_value=0, max_value=2**32 - 1)

    @given(seeds, st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_k_sequential_size_one_normals_equal_one_size_k_draw(
        self, seed, k
    ):
        a = np.random.default_rng(seed)
        b = np.random.default_rng(seed)
        sequential = np.concatenate(
            [a.normal(0.0, 1.0, size=1) for _ in range(k)]
        )
        batch = b.normal(0.0, 1.0, size=k)
        assert sequential.tobytes() == batch.tobytes()
        # The streams stay in lockstep afterwards, too: the draws
        # consumed exactly the same generator state.
        assert a.random() == b.random()

    @given(
        seeds,
        st.lists(
            st.integers(min_value=1, max_value=16),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_chunked_normals_equal_one_batch(self, seed, chunks):
        a = np.random.default_rng(seed)
        b = np.random.default_rng(seed)
        chunked = np.concatenate(
            [a.normal(0.0, 1.0, size=c) for c in chunks]
        )
        batch = b.normal(0.0, 1.0, size=sum(chunks))
        assert chunked.tobytes() == batch.tobytes()
        assert a.random() == b.random()

    @given(seeds, st.integers(min_value=1, max_value=32))
    @settings(max_examples=50, deadline=None)
    def test_scalar_draws_equal_size_one_draws(self, seed, k):
        a = np.random.default_rng(seed)
        b = np.random.default_rng(seed)
        for _ in range(k):
            # Interleave the two draw kinds the scalar RSSI path uses.
            assert a.normal(0.0, 1.0) == b.normal(0.0, 1.0, size=1)[0]
            assert a.random() == b.random(size=1)[0]
        assert a.normal(0.0, 1.0) == b.normal(0.0, 1.0)


class TestPdfProperties:
    @given(
        st.floats(min_value=1.0, max_value=150.0),
        st.floats(min_value=0.1, max_value=40.0),
    )
    @settings(max_examples=30)
    def test_gaussian_pdf_nonnegative_everywhere(self, mean, std):
        dist = DistanceDistribution.gaussian(mean, std, 180.0)
        xs = np.linspace(0.0, 250.0, 200)
        assert np.all(dist.pdf(xs) > 0.0)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20)
    def test_histogram_fit_integrates_to_one(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.uniform(45.0, 170.0, size=400)
        dist = DistanceDistribution.from_samples(samples, 180.0)
        xs = np.linspace(0.0, 180.0, 3000)
        integral = float(np.trapezoid(dist.pdf(xs), xs))
        assert 0.9 < integral < 1.1


class TestBayesFilterProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=200.0),
                st.floats(min_value=0.0, max_value=200.0),
                st.floats(min_value=-92.0, max_value=-40.0),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_posterior_always_a_distribution(self, beacons, ):
        from repro.core.calibration import build_pdf_table

        table = _cached_table()
        filt = GridBayesFilter(Rect.square(200.0), 4.0)
        for x, y, rssi in beacons:
            filt.apply_beacon(Vec2(x, y), rssi, table)
        post = filt.posterior
        assert np.all(post >= 0.0)
        assert float(post.sum()) == pytest_approx(1.0, abs_tol=1e-9)
        estimate = filt.estimate()
        assert Rect.square(200.0).contains(estimate)


_TABLE_CACHE = {}


def _cached_table():
    if "table" not in _TABLE_CACHE:
        from repro.core.calibration import build_pdf_table

        _TABLE_CACHE["table"] = build_pdf_table(
            PathLossModel(),
            RandomStreams(77).get("cal"),
            n_samples=30_000,
        ).table
    return _TABLE_CACHE["table"]


class TestDeadReckoningProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),
                st.floats(min_value=-math.pi, max_value=math.pi),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_position_displacement_bounded_by_distance(self, increments):
        reckoner = DeadReckoning(Vec2(0, 0), 0.0)
        start = reckoner.position
        total = 0.0
        for i, (dist, turn) in enumerate(increments):
            reckoner.advance(
                OdometryReading(float(i), float(i + 1), dist, turn)
            )
            total += dist
        assert reckoner.position.distance_to(start) <= total + 1e-9
        assert -math.pi < reckoner.heading <= math.pi + 1e-12


class TestClockProperties:
    @given(
        st.floats(min_value=-0.05, max_value=0.05),
        st.floats(min_value=0.0, max_value=1e5),
    )
    def test_local_true_roundtrip(self, rate, t):
        clock = DriftingClock(rate)
        assert clock.true_time_of(clock.local_time(t)) == pytest_approx(
            t, abs_tol=1e-6
        )

    @given(
        st.floats(min_value=-0.02, max_value=0.02),
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=1e3),
    )
    def test_offset_bounded_by_rate(self, rate, sync_at, elapsed):
        clock = DriftingClock(rate)
        clock.synchronize(sync_at, sync_at)
        offset = clock.offset(sync_at + elapsed)
        assert abs(offset) <= abs(rate) * elapsed + 1e-9


class TestLinkLifetimeProperties:
    @given(
        st.floats(min_value=-50, max_value=50),
        st.floats(min_value=-50, max_value=50),
        st.floats(min_value=-2, max_value=2),
        st.floats(min_value=-2, max_value=2),
        st.floats(min_value=0, max_value=500),
        st.floats(min_value=0, max_value=500),
    )
    @settings(max_examples=60)
    def test_lifetime_nonnegative_and_bounded(self, bx, by, vx, vy, ta, tb):
        a = Kinematics(Vec2(0, 0), Vec2(0, 0), ta, 0.0)
        b = Kinematics(Vec2(bx, by), Vec2(vx, vy), tb, 0.0)
        lifetime = predict_link_lifetime(a, b, 100.0, max_horizon_s=600.0)
        assert 0.0 <= lifetime <= 600.0

    @given(
        st.floats(min_value=-80, max_value=80),
        st.floats(min_value=-80, max_value=80),
        st.floats(min_value=-2, max_value=2),
        st.floats(min_value=-2, max_value=2),
    )
    @settings(max_examples=60)
    def test_lifetime_symmetric(self, bx, by, vx, vy):
        a = Kinematics(Vec2(0, 0), Vec2(1.0, -0.5), 300.0, 10.0)
        b = Kinematics(Vec2(bx, by), Vec2(vx, vy), 200.0, 5.0)
        f = predict_link_lifetime(a, b, 100.0)
        g = predict_link_lifetime(b, a, 100.0)
        assert f == pytest_approx(g, abs_tol=1e-6)


class TestMobilityProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_waypoint_robot_always_inside_area(self, seed):
        from repro.mobility.waypoint import WaypointMobility

        area = Rect.square(200.0)
        mob = WaypointMobility(
            area, RandomStreams(seed).get("m"), v_max=2.0
        )
        for t in range(0, 900, 37):
            assert area.contains(mob.position(float(t)), tolerance=1e-6)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.2, max_value=2.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_waypoint_speed_never_exceeds_vmax(self, seed, v_max):
        from repro.mobility.waypoint import WaypointMobility

        area = Rect.square(200.0)
        mob = WaypointMobility(
            area, RandomStreams(seed).get("m"), v_min=0.1, v_max=v_max
        )
        for t in range(0, 600, 23):
            assert mob.speed(float(t)) <= v_max + 1e-9


class TestWatchdogProperties:
    """However a round's evidence breaks the posterior, the watchdog
    must leave behind a normalized distribution and an unchanged
    estimate — never a junk fix."""

    @given(
        poison=st.one_of(
            st.sampled_from([0.0, float("inf"), float("nan"), -1.0]),
            st.floats(min_value=1e-12, max_value=1e9),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_watchdog_restores_normalized_posterior(self, poison, pdf_table):
        from repro.core.config import LocalizationMode
        from repro.core.estimator import PositionEstimator

        est = PositionEstimator(
            LocalizationMode.RF_ONLY,
            Rect.square(100.0),
            pdf_table=pdf_table,
            min_beacons_for_fix=1,
            watchdog=True,
        )
        before = est.estimate
        est.on_window_open()
        est.filter._posterior.fill(poison)
        degenerate = est.filter.is_degenerate()
        est.on_window_close()
        if degenerate:
            assert est.watchdog_resets == 1
            assert est.fixes == 0
            assert est.estimate == before
            posterior = est.filter.posterior
            assert np.isfinite(posterior).all()
            assert float(posterior.sum()) == pytest_approx(1.0)
            # The reset is the uniform prior, not some other salvage.
            assert float(posterior.max()) == pytest_approx(
                float(posterior.min())
            )
        else:
            # A uniform fill that happens to normalize is a legitimate
            # (if uninformative) distribution; no reset, no crash.
            assert est.watchdog_resets == 0
