"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults_match_paper(self):
        args = build_parser().parse_args(["run"])
        assert args.robots == 50
        assert args.anchors == 25
        assert args.period == 100.0
        assert args.mode == "cocoa"

    def test_figure_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mode", "teleport"])


class TestRunCommand:
    def test_small_cocoa_run(self):
        code, output = run_cli([
            "run", "--robots", "12", "--anchors", "6", "--period", "30",
            "--duration", "65", "--seed", "3",
        ])
        assert code == 0
        assert "time-average" in output
        assert "team total" in output
        assert "beacons" in output

    def test_odometry_mode_forces_no_anchors(self):
        code, output = run_cli([
            "run", "--mode", "odometry_only", "--robots", "10",
            "--duration", "40", "--seed", "2",
        ])
        assert code == 0
        assert "(0 anchors)" in output

    def test_no_coordination_flag(self):
        code, output = run_cli([
            "run", "--robots", "10", "--anchors", "5", "--period", "20",
            "--duration", "45", "--no-coordination", "--seed", "2",
        ])
        assert code == 0
        # Radios never slept.
        assert "sleep_j              0.00 J" in output

    def test_particle_filter_option(self):
        code, output = run_cli([
            "run", "--robots", "10", "--anchors", "5", "--period", "20",
            "--duration", "45", "--filter", "particle", "--seed", "2",
        ])
        assert code == 0
        assert "fixes" in output


class TestFigureCommand:
    def test_fig5(self):
        code, output = run_cli(["figure", "fig5"])
        assert code == 0
        assert "odometry error" in output

    def test_fig1(self):
        code, output = run_cli(["figure", "fig1"])
        assert code == 0
        assert "gaussian" in output
        assert "histogram" in output

    def test_fig4_short(self):
        code, output = run_cli(["figure", "fig4", "--duration", "60"])
        assert code == 0
        assert "v_max=0.5" in output and "v_max=2.0" in output


class TestCalibrateCommand:
    def test_prints_table(self):
        code, output = run_cli(["calibrate", "--samples", "30000"])
        assert code == 0
        assert "bins:" in output
        assert "gaussian" in output
