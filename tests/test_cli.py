"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults_match_paper(self):
        args = build_parser().parse_args(["run"])
        assert args.robots == 50
        assert args.anchors == 25
        assert args.period == 100.0
        assert args.mode == "cocoa"

    def test_figure_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mode", "teleport"])


class TestRunCommand:
    def test_small_cocoa_run(self):
        code, output = run_cli([
            "run", "--robots", "12", "--anchors", "6", "--period", "30",
            "--duration", "65", "--seed", "3",
        ])
        assert code == 0
        assert "time-average" in output
        assert "team total" in output
        assert "beacons" in output

    def test_odometry_mode_forces_no_anchors(self):
        code, output = run_cli([
            "run", "--mode", "odometry_only", "--robots", "10",
            "--duration", "40", "--seed", "2",
        ])
        assert code == 0
        assert "(0 anchors)" in output

    def test_no_coordination_flag(self):
        code, output = run_cli([
            "run", "--robots", "10", "--anchors", "5", "--period", "20",
            "--duration", "45", "--no-coordination", "--seed", "2",
        ])
        assert code == 0
        # Radios never slept.
        assert "sleep_j              0.00 J" in output

    def test_particle_filter_option(self):
        code, output = run_cli([
            "run", "--robots", "10", "--anchors", "5", "--period", "20",
            "--duration", "45", "--filter", "particle", "--seed", "2",
        ])
        assert code == 0
        assert "fixes" in output


class TestFigureCommand:
    def test_fig5(self):
        code, output = run_cli(["figure", "fig5"])
        assert code == 0
        assert "odometry error" in output

    def test_fig1(self):
        code, output = run_cli(["figure", "fig1"])
        assert code == 0
        assert "gaussian" in output
        assert "histogram" in output

    def test_fig4_short(self):
        code, output = run_cli(["figure", "fig4", "--duration", "60"])
        assert code == 0
        assert "v_max=0.5" in output and "v_max=2.0" in output


class TestSweepCommand:
    ARGS = [
        "sweep", "--robots", "10", "--anchors", "5", "--period", "20",
        "--duration", "45", "--area", "60",
    ]

    def test_default_seeds(self):
        code, output = run_cli(self.ARGS)
        assert code == 0
        assert "5 seeds" in output
        assert "error" in output and "energy" in output

    def test_explicit_seed_list(self):
        code, output = run_cli(self.ARGS + ["--seeds", "2,4"])
        assert code == 0
        assert "2 seeds" in output

    def test_num_seeds(self):
        code, output = run_cli(self.ARGS + ["--num-seeds", "3"])
        assert code == 0
        assert "3 seeds" in output
        assert "[3/3]" in output  # per-job progress lines

    def test_bad_seed_list_rejected(self):
        code, output = run_cli(self.ARGS + ["--seeds", "1,zap"])
        assert code == 2
        assert "invalid" in output

    def test_single_seed_rejected(self):
        code, output = run_cli(self.ARGS + ["--seeds", "7"])
        assert code == 2
        assert "at least 2" in output

    def test_seeds_and_num_seeds_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--seeds", "1,2", "--num-seeds", "2"]
            )

    def test_parallel_matches_serial(self):
        code_s, out_s = run_cli(self.ARGS + ["--seeds", "1,2"])
        code_p, out_p = run_cli(self.ARGS + ["--seeds", "1,2", "--jobs", "2"])
        assert code_s == code_p == 0
        # identical per-seed tables; only the worker-count header differs
        table_s = out_s[out_s.index("\nseed"):]
        table_p = out_p[out_p.index("\nseed"):]
        assert table_s == table_p

    def test_cache_warm_rerun(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cold_args = self.ARGS + ["--seeds", "1,2", "--cache"]
        code, output = run_cli(cold_args)
        assert code == 0
        assert "cache: 0 hits, 2 misses, 2 stored" in output
        code, output = run_cli(cold_args)
        assert code == 0
        assert "cache: 2 hits, 0 misses, 0 stored" in output
        code, output = run_cli(cold_args + ["--clear-cache"])
        assert code == 0
        assert "cache: 0 hits, 2 misses, 2 stored" in output


class TestFigureOrchestrationFlags:
    def test_fig4_with_jobs_and_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        args = ["figure", "fig4", "--duration", "60", "--jobs", "2",
                "--cache-dir", cache_dir]
        code, cold = run_cli(args)
        assert code == 0
        assert "v_max=0.5" in cold and "v_max=2.0" in cold
        assert "2 stored" in cold
        code, warm = run_cli(args)
        assert code == 0
        assert "2 hits, 0 misses" in warm
        # cached figure data is identical to the freshly simulated data
        assert [l for l in cold.splitlines() if l.startswith("v_max")] == \
               [l for l in warm.splitlines() if l.startswith("v_max")]


class TestCalibrateCommand:
    def test_prints_table(self):
        code, output = run_cli(["calibrate", "--samples", "30000"])
        assert code == 0
        assert "bins:" in output
        assert "gaussian" in output


class TestResilienceCommand:
    def test_small_resilience_sweep(self):
        code, output = run_cli([
            "resilience", "--robots", "12", "--anchors", "6",
            "--period", "30", "--duration", "65", "--area", "100",
            "--seed", "3", "--intensities", "0,1",
        ])
        assert code == 0
        assert "undefended (m)" in output
        assert "defended (m)" in output
        # One table row per requested intensity.
        assert "\n0 " in output and "\n1 " in output

    def test_bad_intensity_list_rejected(self):
        code, output = run_cli(["resilience", "--intensities", "a,b"])
        assert code == 2
        assert "invalid" in output

    def test_empty_intensity_list_rejected(self):
        code, output = run_cli(["resilience", "--intensities", ","])
        assert code == 2
