"""Tests for repro.lint: the determinism-contract linter.

Each REP rule gets a good/bad snippet corpus: the bad snippet must fire
exactly where expected, the good snippet must stay silent.  Snippets
are linted under *virtual paths* so the package-scoping logic (sim
package vs orchestrator vs tests) is exercised without touching disk.
The suite ends with the self-check: the real tree lints clean at head.
"""

from __future__ import annotations

import io
import json
import textwrap
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    BAD_NOQA_CODE,
    PARSE_ERROR_CODE,
    LintUsageError,
    all_rules,
    lint_paths,
    lint_text,
    parse_code_list,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

SIM_PATH = "src/repro/core/snippet.py"
NET_PATH = "src/repro/net/snippet.py"
ORCH_PATH = "src/repro/orchestrator/snippet.py"
TEST_PATH = "tests/snippet.py"


def codes_at(text, path):
    """Lint a snippet; return the list of (code, line) pairs."""
    result = lint_text(textwrap.dedent(text), path)
    return [(f.code, f.line) for f in result.findings]


def codes(text, path):
    return [c for c, _ in codes_at(text, path)]


class TestRep001GlobalRng:
    def test_random_module_function_fires(self):
        found = codes_at(
            """\
            import random

            def jitter():
                return random.random()
            """,
            SIM_PATH,
        )
        assert found == [("REP001", 4)]

    def test_seeded_random_instance_fires(self):
        # Even a seeded instance bypasses the named-stream discipline
        # and must carry a justified noqa (as orchestrator/executor.py
        # does for its retry backoff).
        assert codes(
            "import random\nrng = random.Random(7)\n", ORCH_PATH
        ) == ["REP001"]

    def test_from_import_is_resolved(self):
        assert codes(
            "from random import randint\nx = randint(1, 6)\n", TEST_PATH
        ) == ["REP001"]

    def test_numpy_legacy_api_fires(self):
        found = codes(
            """\
            import numpy as np

            np.random.seed(3)
            x = np.random.rand(4)
            """,
            SIM_PATH,
        )
        assert found == ["REP001", "REP001"]

    def test_numpy_modern_api_is_clean(self):
        assert codes(
            """\
            import numpy as np

            rng = np.random.default_rng(7)
            seq = np.random.SeedSequence([1, 2])
            gen = np.random.Generator(np.random.PCG64(seq))
            """,
            SIM_PATH,
        ) == []

    def test_rng_module_itself_is_exempt(self):
        assert codes(
            "import random\nx = random.random()\n", "src/repro/sim/rng.py"
        ) == []

    def test_local_name_random_is_not_confused(self):
        assert codes(
            "def random():\n    return 4\n\nx = random()\n", SIM_PATH
        ) == []


class TestRep002WallClock:
    def test_absolute_time_fires_everywhere(self):
        assert codes("import time\nt = time.time()\n", TEST_PATH) == [
            "REP002"
        ]
        assert codes(
            "from datetime import datetime\nnow = datetime.now()\n",
            ORCH_PATH,
        ) == ["REP002"]

    def test_perf_counter_fires_only_in_sim_packages(self):
        snippet = "import time\nt0 = time.perf_counter()\n"
        assert codes(snippet, "src/repro/sim/engine.py") == ["REP002"]
        assert codes(snippet, NET_PATH) == ["REP002"]
        # Orchestration measuring real wall time is the legitimate use.
        assert codes(snippet, ORCH_PATH) == []
        assert codes(snippet, TEST_PATH) == []

    def test_import_datetime_module_form_is_resolved(self):
        assert codes(
            "import datetime\nnow = datetime.datetime.utcnow()\n",
            SIM_PATH,
        ) == ["REP002"]


class TestRep003UnsortedSetIteration:
    def test_for_over_set_call_fires(self):
        found = codes_at(
            """\
            def drain(items):
                out = []
                for item in set(items):
                    out.append(item)
                return out
            """,
            SIM_PATH,
        )
        assert found == [("REP003", 3)]

    def test_for_over_set_literal_and_comprehension_fire(self):
        assert codes(
            "for x in {1, 2, 3}:\n    print(x)\n", SIM_PATH
        ) == ["REP003"]
        assert codes(
            "ys = [y for y in frozenset((1, 2))]\n", SIM_PATH
        ) == ["REP003"]

    def test_set_typed_local_variable_is_tracked(self):
        found = codes(
            """\
            def route(nodes):
                pending = set(nodes)
                for node in pending:
                    yield node
            """,
            SIM_PATH,
        )
        assert found == ["REP003"]

    def test_set_union_expression_fires(self):
        assert codes(
            """\
            def mesh(forwarders, members):
                for node in set(forwarders) | set(members):
                    yield node
            """,
            SIM_PATH,
        ) == ["REP003"]

    def test_annotated_parameter_is_tracked(self):
        assert codes(
            """\
            from typing import Set

            def fanout(group: Set[int]):
                return [g + 1 for g in group]
            """,
            SIM_PATH,
        ) == ["REP003"]

    def test_list_materialization_fires(self):
        assert codes("order = list(set('abc'))\n", SIM_PATH) == ["REP003"]

    def test_sorted_wrapping_is_clean(self):
        assert codes(
            """\
            def drain(items):
                for item in sorted(set(items)):
                    yield item
            ids = tuple(sorted({3, 1, 2}))
            best = max(set((1, 2)))
            """,
            SIM_PATH,
        ) == []

    def test_membership_and_set_results_are_clean(self):
        # Membership tests and set-to-set derivations never observe
        # order, so they stay legal.
        assert codes(
            """\
            def keep(candidates, allowed):
                good = set(allowed)
                return {c for c in candidates if c in good}
            """,
            SIM_PATH,
        ) == []

    def test_outside_sim_packages_is_clean(self):
        snippet = "for x in set((1, 2)):\n    print(x)\n"
        assert codes(snippet, ORCH_PATH) == []
        assert codes(snippet, TEST_PATH) == []

    def test_dict_views_are_clean(self):
        # CPython dicts iterate in insertion order — deterministic.
        assert codes(
            "d = {'a': 1}\nfor k, v in d.items():\n    print(k, v)\n",
            SIM_PATH,
        ) == []

    def test_ordered_dict_cache_views_are_clean(self):
        # The kernel layer iterates dict views on its hot paths: the
        # channel walks its registry's .values() per frame and the
        # constraint cache's LRU stores are OrderedDicts.  View
        # iteration follows insertion order — deterministic and legal.
        assert codes(
            """\
            from collections import OrderedDict

            def offer_all(nodes, frame):
                for entry in nodes.values():
                    entry.offer(frame)

            def evict_oldest(store: OrderedDict):
                for key in store.keys():
                    return key
                return None

            def snapshot(store: OrderedDict):
                return [field for _, field in store.items()]
            """,
            NET_PATH,
        ) == []


class TestRep004FloatEquality:
    def test_float_literal_comparison_fires(self):
        assert codes("def f(x):\n    return x == 1.5\n", SIM_PATH) == [
            "REP004"
        ]
        assert codes("def f(x):\n    return x != -0.5\n", SIM_PATH) == [
            "REP004"
        ]

    def test_float_cast_comparison_fires(self):
        assert codes(
            "def f(x, y):\n    return float(x) == y\n", SIM_PATH
        ) == ["REP004"]

    def test_int_and_isclose_are_clean(self):
        assert codes(
            """\
            import math

            def f(x):
                return x == 1 and math.isclose(x, 1.5)
            """,
            SIM_PATH,
        ) == []

    def test_tests_are_out_of_scope(self):
        # Test assertions on exact fixture values are idiomatic.
        assert codes("assert 0.5 == 0.5\n", TEST_PATH) == []


class TestRep005MutableDefault:
    def test_literal_defaults_fire(self):
        found = codes(
            """\
            def f(a=[], b={}, c=None):
                return a, b, c
            """,
            TEST_PATH,
        )
        assert found == ["REP005", "REP005"]

    def test_constructor_defaults_fire(self):
        assert codes("def f(a=list(), b=dict()):\n    return a\n",
                     SIM_PATH) == ["REP005", "REP005"]

    def test_kwonly_and_lambda_defaults_fire(self):
        assert codes("def f(*, a=set()):\n    return a\n", SIM_PATH) == [
            "REP005"
        ]
        assert codes("g = lambda a=[]: a\n", SIM_PATH) == ["REP005"]

    def test_immutable_defaults_are_clean(self):
        assert codes(
            "def f(a=None, b=(), c=1.5, d='x', e=frozenset()):\n"
            "    return a\n",
            SIM_PATH,
        ) == []


class TestRep006FrozenSetattr:
    def test_setattr_outside_post_init_fires(self):
        assert codes(
            """\
            class Spec:
                def tweak(self, value):
                    object.__setattr__(self, 'field', value)
            """,
            SIM_PATH,
        ) == ["REP006"]

    def test_setattr_inside_post_init_is_clean(self):
        assert codes(
            """\
            class Spec:
                def __post_init__(self):
                    object.__setattr__(self, 'field', ())
            """,
            SIM_PATH,
        ) == []


class TestRep007OverbroadExcept:
    def test_bare_and_broad_except_fire_in_hot_paths(self):
        snippet = """\
        try:
            deliver()
        except:
            pass
        try:
            deliver()
        except Exception:
            pass
        """
        assert codes(snippet, NET_PATH) == ["REP007", "REP007"]
        assert codes(snippet, "src/repro/sim/engine.py") == [
            "REP007", "REP007"
        ]

    def test_specific_and_out_of_scope_are_clean(self):
        assert codes(
            "try:\n    deliver()\nexcept ValueError:\n    pass\n",
            NET_PATH,
        ) == []
        # The orchestrator hardens against worker crashes on purpose.
        assert codes(
            "try:\n    go()\nexcept Exception:\n    pass\n", ORCH_PATH
        ) == []


class TestSuppressionAndBaseline:
    def test_justified_inline_noqa_suppresses(self):
        result = lint_text(
            "import random\n"
            "x = random.random()  # repro: noqa[REP001] doc demo value\n",
            SIM_PATH,
        )
        assert result.findings == []
        assert result.noqa_suppressed == 1

    def test_justified_standalone_noqa_suppresses_next_line(self):
        result = lint_text(
            "import time\n"
            "# repro: noqa[REP002] manifest metadata, not a result\n"
            "stamp = time.time()\n",
            SIM_PATH,
        )
        assert result.findings == []
        assert result.noqa_suppressed == 1

    def test_unjustified_noqa_does_not_suppress(self):
        result = lint_text(
            "import random\n"
            "x = random.random()  # repro: noqa[REP001]\n",
            SIM_PATH,
        )
        found = sorted(f.code for f in result.findings)
        assert found == ["REP001", BAD_NOQA_CODE]

    def test_noqa_for_a_different_code_does_not_suppress(self):
        result = lint_text(
            "import random\n"
            "x = random.random()  # repro: noqa[REP004] wrong code\n",
            SIM_PATH,
        )
        assert [f.code for f in result.findings] == ["REP001"]

    def test_baseline_round_trip(self, tmp_path):
        source = "import random\nx = random.random()\n"
        bad = tmp_path / "legacy.py"
        bad.write_text(source)
        report = lint_paths([str(bad)])
        assert [f.code for f in report.findings] == ["REP001"]

        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), report.findings)
        again = lint_paths([str(bad)], baseline_path=str(baseline))
        assert again.findings == []
        assert again.baseline_suppressed == 1

        # A second, new instance of the same violation still surfaces.
        bad.write_text(source + "y = random.random()\n")
        third = lint_paths([str(bad)], baseline_path=str(baseline))
        assert [f.code for f in third.findings] == ["REP001"]
        assert third.baseline_suppressed == 1


class TestSelectionAndErrors:
    SOURCE = "import random\nx = random.random() == 0.5\n"

    def test_select_restricts_codes(self):
        only = lint_text(
            self.SOURCE, SIM_PATH, select=frozenset(["REP004"])
        )
        assert [f.code for f in only.findings] == ["REP004"]

    def test_ignore_drops_codes(self):
        rest = lint_text(
            self.SOURCE, SIM_PATH, ignore=frozenset(["REP001"])
        )
        assert [f.code for f in rest.findings] == ["REP004"]

    def test_unknown_code_is_a_usage_error(self):
        with pytest.raises(LintUsageError):
            parse_code_list("REP999", "--select")

    def test_missing_path_is_a_usage_error(self):
        with pytest.raises(LintUsageError):
            lint_paths(["no/such/dir"])

    def test_syntax_error_reports_parse_finding(self):
        result = lint_text("def broken(:\n", SIM_PATH)
        assert [f.code for f in result.findings] == [PARSE_ERROR_CODE]

    def test_every_domain_rule_is_registered(self):
        assert sorted(all_rules()) == (
            ["ASY00%d" % i for i in range(1, 7)]
            + ["REP00%d" % i for i in range(1, 8)]
        )

    def test_family_prefix_expands_to_codes(self):
        codes = parse_code_list("ASY", "--select")
        assert codes == frozenset("ASY00%d" % i for i in range(1, 7))
        mixed = parse_code_list("REP001,ASY", "--select")
        assert "REP001" in mixed and "ASY003" in mixed

    def test_unknown_family_is_a_usage_error(self):
        with pytest.raises(LintUsageError):
            parse_code_list("ZZZ", "--select")


class TestCli:
    def test_lint_clean_exit_zero(self, tmp_path):
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n")
        out = io.StringIO()
        assert main(["lint", str(good)], out=out) == 0
        assert "clean" in out.getvalue()

    def test_lint_findings_exit_one_and_json(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        out = io.StringIO()
        assert main(["lint", str(bad), "--json"], out=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["clean"] is False
        assert payload["findings"][0]["code"] == "REP001"
        assert payload["files_scanned"] == 1

    def test_lint_usage_error_exit_two(self):
        out = io.StringIO()
        assert main(["lint", "no/such/path"], out=out) == 2
        assert main(["lint", "--select", "NOPE", "src"], out=out) == 2

    def test_write_baseline_then_gate(self, tmp_path):
        bad = tmp_path / "legacy.py"
        bad.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        out = io.StringIO()
        assert main(
            ["lint", str(bad), "--write-baseline", str(baseline)], out=out
        ) == 0
        assert main(
            ["lint", str(bad), "--baseline", str(baseline)], out=out
        ) == 0

    def test_write_baseline_with_zero_findings_removes_stale_file(
        self, tmp_path
    ):
        bad = tmp_path / "legacy.py"
        bad.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        out = io.StringIO()
        assert main(
            ["lint", str(bad), "--write-baseline", str(baseline)], out=out
        ) == 0
        assert baseline.exists()
        # The violation gets fixed; re-recording must *remove* the stale
        # baseline rather than leave an empty-but-present file behind.
        bad.write_text("x = 1\n")
        assert main(
            ["lint", str(bad), "--write-baseline", str(baseline)], out=out
        ) == 0
        assert not baseline.exists()
        assert "removed any stale baseline" in out.getvalue()

    def test_list_rules(self):
        out = io.StringIO()
        assert main(["lint", "--list-rules"], out=out) == 0
        text = out.getvalue()
        for code in ["REP00%d" % i for i in range(1, 8)]:
            assert code in text
        for code in ["ASY00%d" % i for i in range(1, 7)]:
            assert code in text
        for code in ["SAN00%d" % i for i in range(1, 4)]:
            assert code in text


class TestSelfCheck:
    def test_tree_lints_clean_at_head(self):
        """The committed tree obeys its own determinism contract."""
        start = time.perf_counter()
        report = lint_paths([
            str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")
        ])
        elapsed = time.perf_counter() - start
        assert report.findings == [], "\n".join(
            f.format() for f in report.findings
        )
        # Every suppression in the tree is justified (REP008 would have
        # fired otherwise) and the gate stays fast enough for CI.
        assert report.files_scanned > 100
        assert elapsed < 5.0
