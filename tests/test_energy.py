"""Unit tests for the energy model, meter and team report."""

import pytest

from repro.energy.meter import EnergyBreakdown, EnergyMeter
from repro.energy.model import EnergyModel, RadioState
from repro.energy.report import aggregate_meters


class TestEnergyModel:
    def test_paper_constants(self):
        model = EnergyModel.wavelan_2mbps()
        # The paper's §2.3 motivation: 900 mW idle versus 50 mW sleep.
        assert model.idle_power_mw == pytest.approx(900.0)
        assert model.sleep_power_mw == pytest.approx(50.0)

    def test_state_power_mapping(self):
        model = EnergyModel()
        assert model.state_power_mw(RadioState.TX) == model.tx_power_mw
        assert model.state_power_mw(RadioState.RX) == model.rx_power_mw
        assert model.state_power_mw(RadioState.IDLE) == model.idle_power_mw
        assert model.state_power_mw(RadioState.SLEEP) == model.sleep_power_mw
        assert model.state_power_mw(RadioState.OFF) == 0.0

    def test_send_cost_linear_in_size(self):
        model = EnergyModel()
        small = model.send_cost_j(0)
        large = model.send_cost_j(1000)
        assert small == pytest.approx(model.send_cost_fixed_uj * 1e-6)
        assert large - small == pytest.approx(
            model.send_cost_per_byte_uj * 1000 * 1e-6
        )

    def test_recv_cheaper_than_send(self):
        model = EnergyModel()
        assert model.recv_cost_j(56) < model.send_cost_j(56)

    def test_negative_size_rejected(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.send_cost_j(-1)
        with pytest.raises(ValueError):
            model.recv_cost_j(-1)

    def test_negative_constants_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(idle_power_mw=-1.0)


class TestEnergyMeter:
    def test_idle_hour_costs_paper_number(self):
        meter = EnergyMeter(EnergyModel.wavelan_2mbps())
        meter.charge_state(RadioState.IDLE, 1800.0)
        # 900 mW x 1800 s = 1620 J: the uncoordinated baseline per node.
        assert meter.total_j == pytest.approx(1620.0)
        assert meter.breakdown.idle_j == pytest.approx(1620.0)

    def test_sleep_is_eighteen_times_cheaper_than_idle(self):
        model = EnergyModel.wavelan_2mbps()
        idle = EnergyMeter(model)
        sleep = EnergyMeter(model)
        idle.charge_state(RadioState.IDLE, 100.0)
        sleep.charge_state(RadioState.SLEEP, 100.0)
        assert idle.total_j / sleep.total_j == pytest.approx(18.0)

    def test_categories_accumulate_separately(self):
        meter = EnergyMeter(EnergyModel())
        meter.charge_state(RadioState.TX, 1.0)
        meter.charge_state(RadioState.RX, 1.0)
        meter.charge_state(RadioState.IDLE, 1.0)
        meter.charge_state(RadioState.SLEEP, 1.0)
        b = meter.breakdown
        assert b.tx_j > b.rx_j > b.idle_j > b.sleep_j > 0

    def test_packet_charges_count_packets(self):
        meter = EnergyMeter(EnergyModel())
        meter.charge_send(56)
        meter.charge_send(56)
        meter.charge_recv(56)
        assert meter.packets_sent == 2
        assert meter.packets_received == 1
        assert meter.breakdown.packet_send_j > 0
        assert meter.breakdown.packet_recv_j > 0

    def test_transition_charges(self):
        meter = EnergyMeter(EnergyModel())
        meter.charge_wake_transition()
        meter.charge_sleep_transition()
        assert meter.transitions == 2
        assert meter.breakdown.transition_j == pytest.approx(
            (EnergyModel().wake_transition_uj + EnergyModel().sleep_transition_uj)
            * 1e-6
        )

    def test_negative_duration_rejected(self):
        meter = EnergyMeter(EnergyModel())
        with pytest.raises(ValueError):
            meter.charge_state(RadioState.IDLE, -1.0)

    def test_off_state_free_by_default(self):
        meter = EnergyMeter(EnergyModel())
        meter.charge_state(RadioState.OFF, 100.0)
        assert meter.total_j == 0.0

    def test_breakdown_as_dict_total(self):
        meter = EnergyMeter(EnergyModel())
        meter.charge_state(RadioState.IDLE, 2.0)
        d = meter.breakdown.as_dict()
        assert d["total_j"] == pytest.approx(meter.total_j)


class TestTeamReport:
    def test_aggregation_sums_nodes(self):
        model = EnergyModel()
        meters = [EnergyMeter(model) for _ in range(3)]
        for i, meter in enumerate(meters):
            meter.charge_state(RadioState.IDLE, float(i + 1))
        report = aggregate_meters(meters)
        assert report.total_j == pytest.approx(sum(m.total_j for m in meters))
        assert report.max_per_node_j == pytest.approx(meters[2].total_j)
        assert report.mean_per_node_j == pytest.approx(report.total_j / 3)

    def test_empty_report(self):
        report = aggregate_meters([])
        assert report.total_j == 0.0
        assert report.mean_per_node_j == 0.0
        assert report.max_per_node_j == 0.0

    def test_breakdown_categories_summed(self):
        model = EnergyModel()
        a, b = EnergyMeter(model), EnergyMeter(model)
        a.charge_state(RadioState.TX, 1.0)
        b.charge_state(RadioState.SLEEP, 10.0)
        report = aggregate_meters([a, b])
        assert report.breakdown.tx_j == pytest.approx(a.breakdown.tx_j)
        assert report.breakdown.sleep_j == pytest.approx(b.breakdown.sleep_j)
