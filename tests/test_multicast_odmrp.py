"""Tests for ODMRP and MRMM: mesh construction, data delivery, pruning."""

import pytest

from repro.energy.model import EnergyModel
from repro.mobility.base import StationaryMobility
from repro.mobility.waypoint import WaypointMobility
from repro.multicast.lifetime import kinematics_of
from repro.multicast.mesh import (
    connectivity_graph,
    mesh_graph,
    mesh_reaches_all_members,
)
from repro.multicast.mrmm import MrmmConfig, MrmmNode
from repro.multicast.odmrp import OdmrpConfig, OdmrpNode
from repro.net.channel import BroadcastChannel
from repro.net.interface import NetworkInterface
from repro.net.phy import PathLossModel
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.util.geometry import Rect, Vec2


def build_line(
    cls=OdmrpNode,
    config=None,
    spacing=40.0,
    n=5,
    seed=3,
):
    """A line topology with adjacent nodes solidly in range."""
    sim = Simulator()
    streams = RandomStreams(seed)
    channel = BroadcastChannel(sim, PathLossModel(), streams.get("phy"))
    if config is None:
        config = MrmmConfig() if cls is MrmmNode else OdmrpConfig()
    agents, delivered = [], []
    for i in range(n):
        mob = StationaryMobility(Vec2(spacing * i, 0.0))
        interface = NetworkInterface(
            sim,
            i,
            mob,
            channel,
            EnergyModel.wavelan_2mbps(),
            streams.spawn("mac", i),
        )
        agent = cls(
            sim,
            interface,
            streams.spawn("mc", i),
            config,
            is_source=(i == 0),
            is_member=(i != 0),
            kinematics_provider=(lambda m=mob: kinematics_of(m, sim.now)),
        )
        agent.on_data(lambda body, rp: delivered.append((rp.receiver, body)))
        agents.append(agent)
    return sim, channel, agents, delivered


class TestOdmrpMesh:
    def test_join_query_floods_to_all(self):
        sim, channel, agents, _ = build_line()
        agents[0].send_join_query()
        sim.run(until=5.0)
        # Everyone except the source learned a route back to it.
        for agent in agents[1:]:
            assert 0 in agent._routes

    def test_forwarding_group_formed(self):
        sim, channel, agents, _ = build_line()
        agents[0].send_join_query()
        sim.run(until=5.0)
        forwarders = [a.node_id for a in agents if a.is_forwarder_for(0)]
        # The chain 0-1-2-3-4 needs intermediate forwarders.
        assert len(forwarders) >= 1
        assert all(0 < f < 4 for f in forwarders)

    def test_data_delivered_to_all_members(self):
        sim, channel, agents, delivered = build_line()
        agents[0].send_join_query()
        sim.schedule(0.5, agents[0].send_join_query)
        sim.run(until=3.0)
        for k in range(3):
            agents[0].send_data("msg%d" % k, 20)
            sim.run(until=sim.now + 2.0)
        receivers = {r for r, _ in delivered}
        assert receivers == {1, 2, 3, 4}

    def test_data_without_mesh_reaches_only_neighbors(self):
        sim, channel, agents, delivered = build_line()
        # No JOIN QUERY: no forwarding group, so only direct neighbors of
        # the source can hear data.
        agents[0].send_data("orphan", 20)
        sim.run(until=2.0)
        receivers = {r for r, _ in delivered}
        assert 4 not in receivers

    def test_duplicate_data_not_delivered_twice(self):
        sim, channel, agents, delivered = build_line()
        agents[0].send_join_query()
        sim.run(until=3.0)
        agents[0].send_data("once", 20)
        sim.run(until=3.0 + 5.0)
        per_node = {}
        for receiver, body in delivered:
            per_node[receiver] = per_node.get(receiver, 0) + 1
        assert all(count == 1 for count in per_node.values())

    def test_fg_flag_expires(self):
        config = OdmrpConfig(fg_timeout_s=5.0)
        sim, channel, agents, _ = build_line(config=config)
        agents[0].send_join_query()
        sim.run(until=3.0)
        had_fg = any(a.is_forwarder_for(0) for a in agents)
        sim.run(until=20.0)
        assert had_fg
        assert not any(a.is_forwarder_for(0) for a in agents)

    def test_non_source_cannot_originate(self):
        sim, channel, agents, _ = build_line()
        with pytest.raises(RuntimeError):
            agents[1].send_join_query()
        with pytest.raises(RuntimeError):
            agents[1].send_data("x", 10)

    def test_ttl_limits_flood_depth(self):
        config = OdmrpConfig(jq_ttl=2)
        sim, channel, agents, _ = build_line(config=config, n=6)
        agents[0].send_join_query()
        sim.run(until=5.0)
        # TTL 2: origin + one forward hop; nodes beyond hop 2 never hear it.
        assert 0 not in agents[5]._routes

    def test_stats_counted(self):
        sim, channel, agents, _ = build_line()
        agents[0].send_join_query()
        sim.run(until=3.0)
        agents[0].send_data("x", 20)
        sim.run(until=6.0)
        assert agents[0].stats.jq_originated == 1
        assert agents[0].stats.data_originated == 1
        assert sum(a.stats.jq_forwarded for a in agents) >= 1
        assert sum(a.stats.jr_sent for a in agents) >= 1


class TestOdmrpConfigValidation:
    def test_bad_ttl(self):
        with pytest.raises(ValueError):
            OdmrpConfig(jq_ttl=0)

    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            OdmrpConfig(fg_timeout_s=0.0)

    def test_bad_suppress_threshold(self):
        with pytest.raises(ValueError):
            OdmrpConfig(suppress_threshold=0)

    def test_bad_link_range(self):
        with pytest.raises(ValueError):
            OdmrpConfig(assumed_link_range_m=0.0)

    def test_mrmm_bad_horizon(self):
        with pytest.raises(ValueError):
            MrmmConfig(max_lifetime_horizon_s=0.0)


class TestMrmm:
    def test_mrmm_delivers_like_odmrp(self):
        for cls in (OdmrpNode, MrmmNode):
            sim, channel, agents, delivered = build_line(cls=cls)
            agents[0].send_join_query()
            sim.schedule(0.5, agents[0].send_join_query)
            sim.run(until=3.0)
            for k in range(3):
                agents[0].send_data(k, 20)
                sim.run(until=sim.now + 2.0)
            assert {r for r, _ in delivered} == {1, 2, 3, 4}

    def test_suppression_reduces_forwards_in_dense_network(self):
        """MRMM's pruning must cut transmissions in a dense mobile team
        without sacrificing delivery — the paper's §2.3 claim."""

        def run(cls, config):
            sim = Simulator()
            streams = RandomStreams(17)
            channel = BroadcastChannel(
                sim, PathLossModel(), streams.get("phy")
            )
            area = Rect.square(200.0)
            agents, delivered = [], []
            for i in range(25):
                mob = WaypointMobility(
                    area, streams.spawn("mob", i), v_max=2.0
                )
                interface = NetworkInterface(
                    sim,
                    i,
                    mob,
                    channel,
                    EnergyModel.wavelan_2mbps(),
                    streams.spawn("mac", i),
                )
                agent = cls(
                    sim,
                    interface,
                    streams.spawn("mc", i),
                    config,
                    is_source=(i == 0),
                    is_member=(i != 0),
                    kinematics_provider=(
                        lambda m=mob: kinematics_of(m, sim.now)
                    ),
                )
                agent.on_data(
                    lambda body, rp: delivered.append((rp.receiver, body))
                )
                agents.append(agent)
            messages = 0
            t = 0.0
            while t < 120.0:
                sim.run(until=t)
                agents[0].send_join_query()
                sim.run(until=t + 1.0)
                agents[0].send_data(messages, 20)
                messages += 1
                sim.run(until=t + 2.0)
                t += 20.0
            total = sum(
                a.stats.jq_forwarded + a.stats.data_forwarded for a in agents
            )
            unique = len(set(delivered))
            return total, unique / (messages * 24.0)

        odmrp_forwards, odmrp_delivery = run(OdmrpNode, OdmrpConfig())
        mrmm_forwards, mrmm_delivery = run(MrmmNode, MrmmConfig())
        assert mrmm_forwards < 0.7 * odmrp_forwards
        assert mrmm_delivery > odmrp_delivery - 0.05

    def test_mrmm_join_query_carries_kinematics(self):
        sim, channel, agents, _ = build_line(cls=MrmmNode)
        heard = []
        # Snoop on the raw packets at node 1.
        agents[1]._interface.on_receive(
            "odmrp_jq", lambda rp: heard.append(rp.packet.payload)
        )
        agents[0].send_join_query()
        sim.run(until=2.0)
        assert heard
        assert heard[0].kinematics is not None

    def test_plain_odmrp_join_query_has_no_kinematics(self):
        sim, channel, agents, _ = build_line(cls=OdmrpNode)
        heard = []
        agents[1]._interface.on_receive(
            "odmrp_jq", lambda rp: heard.append(rp.packet.payload)
        )
        agents[0].send_join_query()
        sim.run(until=2.0)
        assert heard
        assert heard[0].kinematics is None

    def test_mrmm_jq_larger_on_wire(self):
        assert MrmmNode._jq_bytes is not OdmrpNode._jq_bytes
        sim, _, agents, _ = build_line(cls=MrmmNode)
        assert agents[0]._jq_bytes() > 13


class TestMeshGraph:
    def test_connectivity_graph_edges(self):
        positions = {0: Vec2(0, 0), 1: Vec2(50, 0), 2: Vec2(200, 0)}
        graph = connectivity_graph(positions, 100.0)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert graph.has_edge(1, 2) is False

    def test_edge_annotated_with_distance(self):
        graph = connectivity_graph({0: Vec2(0, 0), 1: Vec2(30, 40)}, 100.0)
        assert graph.edges[0, 1]["distance"] == pytest.approx(50.0)

    def test_mesh_graph_restricted_to_participants(self):
        positions = {i: Vec2(40.0 * i, 0) for i in range(5)}
        graph = mesh_graph(
            positions, 100.0, forwarders={1}, source=0, members=[2]
        )
        assert set(graph.nodes) == {0, 1, 2}

    def test_mesh_reaches_all_members(self):
        positions = {i: Vec2(40.0 * i, 0) for i in range(4)}
        graph = mesh_graph(
            positions, 50.0, forwarders={1, 2}, source=0, members=[3]
        )
        assert mesh_reaches_all_members(graph, 0, [3])
        graph2 = mesh_graph(
            positions, 50.0, forwarders=set(), source=0, members=[3]
        )
        assert not mesh_reaches_all_members(graph2, 0, [3])

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            connectivity_graph({0: Vec2(0, 0)}, 0.0)
