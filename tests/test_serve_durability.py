"""Durability tests: checkpoints, restores, retries, supervision, drain.

The claims under test, smallest to largest:

- estimator/session snapshots restore **bit-exactly** (a restored
  session's next fix carries the same ``float.hex`` bytes);
- the rid reply cache dedups replayed requests without double-ingesting,
  and deliberately refuses to cache errors and no-op acks;
- evicted sessions checkpoint first and resume via their token;
- a killed shard worker is revived by its supervisor and lost sessions
  re-hydrate from checkpoints;
- checkpoints persist through the orchestrator cache across "process
  restarts" (two independent cores sharing one cache directory);
- drain refuses new work, flushes checkpoints and flips ``/readyz``.
"""

from __future__ import annotations

import asyncio

import pytest

import repro.experiments  # noqa: F401  (breaks the orchestrator import cycle)
from repro.orchestrator.cache import ResultCache
from repro.serve import (
    CheckpointStore,
    InProcessClient,
    RetryPolicy,
    ServeClient,
    ServeConfig,
    ServiceCore,
    ServiceError,
    SessionCheckpoint,
    SessionLimits,
    TenantSession,
    TransportError,
    checkpoint_fingerprint,
    ensure_ok,
)
from repro.serve.protocol import (
    HelloRequest,
    ObserveRequest,
    ProtocolError,
    WindowRequest,
    encode_request,
    parse_request,
)

WINDOW_A = [
    (10.0, 10.0, -60.0),
    (70.0, 10.0, -72.0),
    (40.0, 70.0, -68.0),
    (20.0, 40.0, -64.0),
]
WINDOW_B = [
    (15.0, 12.0, -62.0),
    (68.0, 14.0, -70.0),
    (42.0, 66.0, -66.0),
]


def _hello(tenant="t", **kwargs):
    kwargs.setdefault("area_side_m", 80.0)
    return HelloRequest(tenant=tenant, **kwargs)


def _session(pdf_table, tenant="t", **kwargs):
    return TenantSession(_hello(tenant), table=pdf_table, **kwargs)


def _feed(session, beacons, robot=0, rid_base=None):
    """Open, observe, close; returns the close payload."""
    rid = lambda offset: None if rid_base is None else rid_base + offset
    assert session.handle(WindowRequest(
        tenant=session.tenant, robot=robot, event="open", rid=rid(0),
    )).ok
    for seq, (x, y, rssi) in enumerate(beacons):
        assert session.handle(ObserveRequest(
            tenant=session.tenant, robot=robot, seq=seq, x=x, y=y,
            rssi_dbm=rssi, rid=rid(1 + seq),
        )).ok
    close = session.handle(WindowRequest(
        tenant=session.tenant, robot=robot, event="close",
        rid=rid(1 + len(beacons)),
    ))
    assert close.ok
    return close.payload


# -- protocol additions -------------------------------------------------------


def test_protocol_rid_and_resume_round_trip():
    request = WindowRequest(tenant="t", robot=1, event="open", rid=7)
    assert parse_request(encode_request(request)) == request
    hello = HelloRequest(tenant="t", resume="ckpt-" + "a" * 64, rid=1)
    assert parse_request(encode_request(hello)) == hello
    # Defaulted optionals stay off the wire.
    assert '"rid"' not in encode_request(WindowRequest(
        tenant="t", robot=1, event="open"
    ))


def test_protocol_rejects_bad_rid_and_resume():
    with pytest.raises(ProtocolError):
        parse_request('{"op":"stats","tenant":"t","rid":-1}')
    with pytest.raises(ProtocolError):
        parse_request('{"op":"stats","tenant":"t","rid":true}')
    with pytest.raises(ProtocolError):
        parse_request('{"op":"hello","tenant":"t","resume":""}')


# -- session snapshot / restore ----------------------------------------------


def test_snapshot_restore_mid_window_is_bit_exact(pdf_table):
    original = _session(pdf_table)
    twin = _session(pdf_table)
    _feed(original, WINDOW_A)
    _feed(twin, WINDOW_A)
    # Open the next window and buffer part of it, then checkpoint.
    assert original.handle(WindowRequest(
        tenant="t", robot=0, event="open"
    )).ok
    for seq, (x, y, rssi) in enumerate(WINDOW_B[:2]):
        assert original.handle(ObserveRequest(
            tenant="t", robot=0, seq=seq, x=x, y=y, rssi_dbm=rssi,
        )).ok
    checkpoint = original.snapshot()
    assert isinstance(checkpoint, SessionCheckpoint)

    restored = _session(pdf_table)
    restored.restore_from(checkpoint)
    # Both the original and the restored copy finish the window; the
    # twin runs it uninterrupted.  All three must agree to the byte.
    finishers = {"original": original, "restored": restored}
    payloads = {}
    for name, session in finishers.items():
        for seq, (x, y, rssi) in enumerate(WINDOW_B[2:], start=2):
            assert session.handle(ObserveRequest(
                tenant="t", robot=0, seq=seq, x=x, y=y, rssi_dbm=rssi,
            )).ok
        payloads[name] = session.handle(WindowRequest(
            tenant="t", robot=0, event="close"
        )).payload
    assert original.handle(WindowRequest(
        tenant="t", robot=0, event="open"
    )).ok  # session still functional afterwards
    twin_open = twin.handle(WindowRequest(tenant="t", robot=0, event="open"))
    assert twin_open.ok
    for seq, (x, y, rssi) in enumerate(WINDOW_B):
        twin.handle(ObserveRequest(
            tenant="t", robot=0, seq=seq, x=x, y=y, rssi_dbm=rssi,
        ))
    twin_payload = twin.handle(WindowRequest(
        tenant="t", robot=0, event="close"
    )).payload
    assert payloads["original"]["fixed"] and payloads["restored"]["fixed"]
    for axis in ("x_hex", "y_hex"):
        assert payloads["original"][axis] == twin_payload[axis]
        assert payloads["restored"][axis] == twin_payload[axis]


def test_restore_rejects_wrong_tenant_and_geometry(pdf_table):
    session = _session(pdf_table, tenant="alpha")
    _feed(session, WINDOW_A)
    checkpoint = session.snapshot()
    other_tenant = TenantSession(_hello("beta"), table=pdf_table)
    with pytest.raises(ValueError):
        other_tenant.restore_from(checkpoint)
    other_grid = TenantSession(
        HelloRequest(tenant="alpha", area_side_m=120.0), table=pdf_table
    )
    with pytest.raises(ValueError):
        other_grid.restore_from(checkpoint)


def test_checkpoint_fingerprint_separates_identities():
    base = checkpoint_fingerprint(_hello("a"))
    assert base.startswith("ckpt-")
    assert base == checkpoint_fingerprint(_hello("a"))
    assert base != checkpoint_fingerprint(_hello("b"))
    assert base != checkpoint_fingerprint(_hello("a", grid_resolution_m=1.0))


# -- reply cache --------------------------------------------------------------


def test_reply_cache_dedups_state_mutating_replays(pdf_table):
    session = _session(pdf_table)
    payload = _feed(session, WINDOW_A, rid_base=100)
    observations_before = session.observations
    windows_closed_before = session.windows_closed
    # Replay the close: identical payload, no re-close.
    replay = session.handle(WindowRequest(
        tenant="t", robot=0, event="close", rid=100 + 1 + len(WINDOW_A),
    ))
    assert replay.ok and replay.payload == payload
    # Replay an observe: no double ingest.
    x, y, rssi = WINDOW_A[0]
    again = session.handle(ObserveRequest(
        tenant="t", robot=0, seq=0, x=x, y=y, rssi_dbm=rssi, rid=101,
    ))
    assert again.ok and again.payload.get("buffered") is True
    assert session.observations == observations_before
    assert session.windows_closed == windows_closed_before
    assert session.replays_served == 2
    assert session.stats()["replays_served"] == 2


def test_reply_cache_skips_errors_and_no_op_acks(pdf_table):
    session = _session(pdf_table)
    # Error replies are not cached: a close with no open window fails,
    # but the same rid must succeed once a window exists.
    failed = session.handle(WindowRequest(
        tenant="t", robot=0, event="close", rid=1,
    ))
    assert not failed.ok
    # No-op observe acks are not cached either: out-of-window observe
    # answers buffered=False, and the same rid must re-execute later.
    x, y, rssi = WINDOW_A[0]
    noop = session.handle(ObserveRequest(
        tenant="t", robot=0, seq=0, x=x, y=y, rssi_dbm=rssi, rid=2,
    ))
    assert noop.ok and noop.payload["buffered"] is False
    assert session.handle(WindowRequest(
        tenant="t", robot=0, event="open", rid=3,
    )).ok
    retried = session.handle(ObserveRequest(
        tenant="t", robot=0, seq=0, x=x, y=y, rssi_dbm=rssi, rid=2,
    ))
    assert retried.ok and retried.payload["buffered"] is True
    closed = session.handle(WindowRequest(
        tenant="t", robot=0, event="close", rid=1,
    ))
    assert closed.ok and closed.payload["applied"] == 1


def test_close_with_expected_count_refuses_short_windows(pdf_table):
    session = _session(pdf_table)
    assert session.handle(WindowRequest(
        tenant="t", robot=0, event="open", rid=1,
    )).ok
    for seq, (x, y, rssi) in enumerate(WINDOW_A[:2]):
        assert session.handle(ObserveRequest(
            tenant="t", robot=0, seq=seq, x=x, y=y, rssi_dbm=rssi,
            rid=2 + seq,
        )).ok
    # A rollback ate part of the window: the guarded close refuses
    # without closing anything, and the refusal is never cached.
    short = session.handle(WindowRequest(
        tenant="t", robot=0, event="close", expected=len(WINDOW_A), rid=9,
    ))
    assert not short.ok and short.error == "window_incomplete"
    assert session.windows_closed == 0
    # Completing the window lets the *same rid* close succeed.
    for seq, (x, y, rssi) in enumerate(WINDOW_A[2:], start=2):
        assert session.handle(ObserveRequest(
            tenant="t", robot=0, seq=seq, x=x, y=y, rssi_dbm=rssi,
            rid=2 + seq,
        )).ok
    closed = session.handle(WindowRequest(
        tenant="t", robot=0, event="close", expected=len(WINDOW_A), rid=9,
    ))
    assert closed.ok and closed.payload["applied"] == len(WINDOW_A)


def test_reply_cache_is_bounded(pdf_table):
    limits = SessionLimits(reply_cache_size=4)
    session = _session(pdf_table, limits=limits)
    for rid in range(1, 11):
        event = "open" if rid % 2 else "close"
        session.handle(WindowRequest(
            tenant="t", robot=0, event=event, rid=rid,
        ))
    assert len(session._replies) <= 4


# -- checkpoint store ---------------------------------------------------------


def test_checkpoint_store_latest_wins_and_forget(pdf_table):
    store = CheckpointStore()
    session = _session(pdf_table, checkpoints=store)
    _feed(session, WINDOW_A)
    first = store.load_for_tenant("t")
    assert first is not None and first.counters["windows_closed"] == 1
    _feed(session, WINDOW_B)
    assert store.load_for_tenant("t").counters["windows_closed"] == 2
    assert store.tenants() == ["t"]
    store.forget("t")
    assert store.load_for_tenant("t") is None
    assert store.tenants() == []


def test_checkpoint_store_persists_through_result_cache(pdf_table, tmp_path):
    cache = ResultCache(root=str(tmp_path / "ckpt"))
    store = CheckpointStore(cache=cache)
    session = _session(pdf_table, checkpoints=store)
    _feed(session, WINDOW_A)
    token = session.resume_token
    # A brand-new store over the same directory = a restarted process.
    fresh = CheckpointStore(cache=cache)
    loaded = fresh.load(token)
    assert loaded is not None and loaded.tenant == "t"
    restored = _session(pdf_table)
    restored.restore_from(loaded)
    assert restored.windows_closed == 1
    # A wrong-typed entry at the address reads as a miss, not a crash.
    cache.put_payload(token, {"not": "a checkpoint"})
    assert CheckpointStore(cache=cache).load(token) is None


# -- client taxonomy and retry ------------------------------------------------


def test_ensure_ok_raises_service_error():
    from repro.serve.protocol import Response, error_response

    response = error_response("unknown_tenant", "no such tenant")
    with pytest.raises(ServiceError) as caught:
        ensure_ok(response)
    assert caught.value.tag == "unknown_tenant"
    assert caught.value.response is response
    assert "no such tenant" in str(caught.value)
    assert ensure_ok(Response(ok=True)).ok


def test_retry_policy_backoff_is_seeded_and_capped():
    import numpy as np

    policy = RetryPolicy(max_attempts=5, base_delay_s=0.1,
                         max_delay_s=0.4, jitter=0.5, seed=9)
    a = [policy.delay_s(k, np.random.default_rng(9)) for k in (1, 2, 3, 4)]
    b = [policy.delay_s(k, np.random.default_rng(9)) for k in (1, 2, 3, 4)]
    assert a == b  # same seed, same jitter
    for attempt, delay in enumerate(a, start=1):
        assert delay <= 0.4 * 1.5 + 1e-12
        assert delay >= min(0.1 * 2 ** (attempt - 1), 0.4)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=2.0)


def test_client_reconnects_and_server_dedups(pdf_table):
    async def scenario():
        core = ServiceCore(ServeConfig(n_shards=1))
        from repro.serve import LocalizationServer

        server = LocalizationServer(core)
        await server.start()
        sleeps = []

        async def fake_sleep(seconds):
            sleeps.append(seconds)

        client = ServeClient(
            "127.0.0.1", server.port,
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.01, seed=3),
            sleep=fake_sleep,
        )
        await client.connect()
        try:
            ensure_ok(await client.hello(
                "t", calibration_samples=2000, area_side_m=80.0
            ))
            ensure_ok(await client.window_open("t", 0))
            for seq, (x, y, rssi) in enumerate(WINDOW_A):
                ensure_ok(await client.observe(
                    "t", 0, seq=seq, x=x, y=y, rssi_dbm=rssi,
                ))
                if seq == 1:
                    client.abort()  # sever mid-window
            close = ensure_ok(await client.window_close("t", 0))
            assert close.payload["fixed"]
            # Every observation ingested exactly once despite retries.
            stats = ensure_ok(await client.stats("t"))
            assert stats.payload["observations"] == len(WINDOW_A)
            assert client.reconnects >= 1
            assert sleeps, "backoff must have been consulted"
        finally:
            await client.close()
            await server.stop()

    asyncio.run(scenario())


def test_client_without_retry_fails_fast(pdf_table):
    async def scenario():
        client = ServeClient("127.0.0.1", 1)  # nothing listens here
        with pytest.raises(TransportError):
            await client.connect()

    asyncio.run(scenario())


# -- eviction + resume --------------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _durable_core(clock, **overrides):
    options = dict(n_shards=1, session_ttl_s=30.0, sweep_interval_s=3600.0)
    options.update(overrides)
    return ServiceCore(ServeConfig(**options), clock=clock)


HELLO_KW = dict(calibration_samples=2000, area_side_m=80.0)


async def _client_window(client, tenant, beacons, robot=0):
    ensure_ok(await client.window_open(tenant, robot))
    for seq, (x, y, rssi) in enumerate(beacons):
        ensure_ok(await client.observe(
            tenant, robot, seq=seq, x=x, y=y, rssi_dbm=rssi,
        ))
    return ensure_ok(await client.window_close(tenant, robot)).payload


def _fix_bytes(payload):
    return (payload.get("x_hex"), payload.get("y_hex"))


async def _uninterrupted_fixes(clock):
    core = _durable_core(clock)
    client = InProcessClient(core)
    try:
        ensure_ok(await client.hello("t", **HELLO_KW))
        first = await _client_window(client, "t", WINDOW_A)
        second = await _client_window(client, "t", WINDOW_B)
        return _fix_bytes(first), _fix_bytes(second)
    finally:
        await core.stop()


def test_evicted_session_resumes_via_token(pdf_table):
    async def scenario():
        clock = _FakeClock()
        want = await _uninterrupted_fixes(clock)
        core = _durable_core(clock)
        client = InProcessClient(core)
        try:
            hello = ensure_ok(await client.hello("t", **HELLO_KW))
            token = hello.payload["resume"]
            first = await _client_window(client, "t", WINDOW_A)
            clock.now += 31.0
            assert core.shards[0].sweep_idle_sessions() == 1
            # The session is gone — and says so.
            orphan = await client.window_open("t", 0)
            assert not orphan.ok and orphan.error == "unknown_tenant"
            resumed = ensure_ok(await client.hello(
                "t", resume=token, **HELLO_KW
            ))
            assert resumed.payload["restored"] is True
            second = await _client_window(client, "t", WINDOW_B)
            assert (_fix_bytes(first), _fix_bytes(second)) == want
        finally:
            await core.stop()

    asyncio.run(scenario())


def test_resume_with_unknown_token_starts_fresh(pdf_table):
    async def scenario():
        core = _durable_core(_FakeClock())
        client = InProcessClient(core)
        try:
            hello = ensure_ok(await client.hello(
                "t", resume="ckpt-" + "0" * 64, **HELLO_KW
            ))
            assert hello.payload["restored"] is False
        finally:
            await core.stop()

    asyncio.run(scenario())


def test_bye_forgets_the_checkpoint(pdf_table):
    async def scenario():
        core = _durable_core(_FakeClock())
        client = InProcessClient(core)
        try:
            hello = ensure_ok(await client.hello("t", **HELLO_KW))
            token = hello.payload["resume"]
            await _client_window(client, "t", WINDOW_A)
            assert core.checkpoints.load(token) is not None
            ensure_ok(await client.bye("t"))
            assert core.checkpoints.load_for_tenant("t") is None
        finally:
            await core.stop()

    asyncio.run(scenario())


# -- supervision --------------------------------------------------------------


def test_supervisor_revives_worker_and_rehydrates(pdf_table):
    async def scenario():
        clock = _FakeClock()
        want = await _uninterrupted_fixes(clock)
        core = _durable_core(clock)
        client = InProcessClient(core)
        try:
            ensure_ok(await client.hello("t", **HELLO_KW))
            first = await _client_window(client, "t", WINDOW_A)
            shard = core.shards[0]
            task = shard.worker_task
            shard.sessions.clear()  # simulated memory loss
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            await asyncio.sleep(0)  # let the supervisor's callback run
            await asyncio.sleep(0)
            supervisor = core.supervisors[0]
            assert supervisor.restarts == 1
            assert supervisor.rehydrations == 1
            assert "t" in shard.sessions
            # The revived service continues byte-identically, with no
            # client-side resume needed.
            second = await _client_window(client, "t", WINDOW_B)
            assert (_fix_bytes(first), _fix_bytes(second)) == want
        finally:
            await core.stop()

    asyncio.run(scenario())


def test_orderly_stop_does_not_trigger_supervision(pdf_table):
    async def scenario():
        core = _durable_core(_FakeClock())
        client = InProcessClient(core)
        ensure_ok(await client.hello("t", **HELLO_KW))
        await core.stop()
        assert all(s.restarts == 0 for s in core.supervisors)

    asyncio.run(scenario())


# -- restart persistence ------------------------------------------------------


def test_sessions_survive_process_restart_through_cache(tmp_path):
    async def scenario():
        clock = _FakeClock()
        want = await _uninterrupted_fixes(clock)
        cache = ResultCache(root=str(tmp_path / "serve-cache"))
        first_core = ServiceCore(
            ServeConfig(n_shards=1, sweep_interval_s=3600.0),
            warm_store=cache, clock=clock,
        )
        client = InProcessClient(first_core)
        hello = ensure_ok(await client.hello("t", **HELLO_KW))
        token = hello.payload["resume"]
        first = await _client_window(client, "t", WINDOW_A)
        await first_core.drain()
        await first_core.stop()
        # A new core over the same cache directory = restarted process.
        second_core = ServiceCore(
            ServeConfig(n_shards=1, sweep_interval_s=3600.0),
            warm_store=cache, clock=clock,
        )
        client = InProcessClient(second_core)
        try:
            resumed = ensure_ok(await client.hello(
                "t", resume=token, **HELLO_KW
            ))
            assert resumed.payload["restored"] is True
            second = await _client_window(client, "t", WINDOW_B)
            assert (_fix_bytes(first), _fix_bytes(second)) == want
        finally:
            await second_core.stop()

    asyncio.run(scenario())


# -- drain and health ---------------------------------------------------------


def test_drain_flushes_checkpoints_and_sheds(pdf_table):
    async def scenario():
        core = _durable_core(_FakeClock())
        client = InProcessClient(core)
        ensure_ok(await client.hello("t", **HELLO_KW))
        await _client_window(client, "t", WINDOW_A)
        assert core.ready()
        flushed = await core.drain()
        assert flushed == 1
        assert core.draining and not core.ready()
        shed = await client.window_open("t", 0)
        assert not shed.ok and shed.error == "shutting_down"
        await core.stop()

    asyncio.run(scenario())


def test_health_endpoints_over_tcp(pdf_table):
    async def scenario():
        from repro.serve import LocalizationServer

        core = ServiceCore(ServeConfig(n_shards=1))
        server = LocalizationServer(core)
        await server.start()

        async def scrape(path):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET " + path + b" HTTP/1.1\r\n\r\n")
            await writer.drain()
            body = await reader.read(-1)
            writer.close()
            await writer.wait_closed()
            return body

        try:
            assert b"200 OK" in await scrape(b"/healthz")
            ready = await scrape(b"/readyz")
            assert b"200 OK" in ready and b"ready" in ready
            await core.drain()
            not_ready = await scrape(b"/readyz")
            assert b"503" in not_ready and b"draining" in not_ready
            assert b"200 OK" in await scrape(b"/healthz")
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_serve_config_rejects_bad_values():
    with pytest.raises(ValueError):
        ServeConfig(port=-1)
    with pytest.raises(ValueError):
        ServeConfig(n_shards=0)
