"""Unit tests for the drifting clock and the scenario configuration."""

import math

import pytest

from repro.core.clock import DriftingClock
from repro.core.config import CoCoAConfig, LocalizationMode, MulticastProtocol
from repro.sim.rng import RandomStreams
from repro.util.geometry import Rect


class TestDriftingClock:
    def test_zero_drift_tracks_true_time(self):
        clock = DriftingClock(0.0)
        assert clock.local_time(100.0) == pytest.approx(100.0)
        assert clock.offset(100.0) == pytest.approx(0.0)

    def test_fast_clock_runs_ahead(self):
        clock = DriftingClock(0.02)
        assert clock.local_time(100.0) == pytest.approx(102.0)
        assert clock.offset(100.0) == pytest.approx(2.0)

    def test_slow_clock_lags(self):
        clock = DriftingClock(-0.01)
        assert clock.local_time(100.0) == pytest.approx(99.0)

    def test_true_time_of_inverts_local_time(self):
        clock = DriftingClock(0.015)
        for t in (0.0, 50.0, 1234.5):
            assert clock.true_time_of(clock.local_time(t)) == pytest.approx(t)

    def test_synchronize_reanchors(self):
        clock = DriftingClock(0.02)
        # After 100 s the clock reads 102; a SYNC tells it the reference
        # timeline reads 100.5.
        clock.synchronize(100.0, 100.5)
        assert clock.local_time(100.0) == pytest.approx(100.5)
        # Drift resumes from the new anchor.
        assert clock.local_time(200.0) == pytest.approx(100.5 + 102.0)

    def test_drift_bounded_after_each_sync(self):
        clock = DriftingClock(0.01)
        for sync_time in (100.0, 200.0, 300.0):
            clock.synchronize(sync_time, sync_time)
            assert abs(clock.offset(sync_time + 100.0)) <= 1.0 + 1e-9

    def test_random_clock_within_bounds(self):
        for seed in range(20):
            clock = DriftingClock.random(
                RandomStreams(seed).get("clock"), 0.02
            )
            assert abs(clock.drift_rate) <= 0.02

    def test_extreme_rate_rejected(self):
        with pytest.raises(ValueError):
            DriftingClock(1.0)

    def test_negative_max_drift_rejected(self):
        with pytest.raises(ValueError):
            DriftingClock.random(RandomStreams(0).get("c"), -0.1)


class TestCoCoAConfig:
    def test_paper_defaults(self):
        config = CoCoAConfig()
        assert config.n_robots == 50
        assert config.n_anchors == 25
        assert config.area.area == pytest.approx(40000.0)
        assert config.beacon_period_s == 100.0
        assert config.transmit_window_s == 3.0
        assert config.beacons_per_window == 3
        assert config.duration_s == 1800.0
        assert config.min_beacons_for_fix == 3

    def test_derived_quantities(self):
        config = CoCoAConfig()
        assert config.n_unknowns == 25
        assert config.n_beacon_periods == 18
        assert config.guard_s == pytest.approx(4.0)

    def test_window_must_be_shorter_than_period(self):
        with pytest.raises(ValueError):
            CoCoAConfig(beacon_period_s=3.0, transmit_window_s=3.0)

    def test_anchors_bounded_by_team(self):
        with pytest.raises(ValueError):
            CoCoAConfig(n_robots=10, n_anchors=11)

    def test_zero_anchors_allowed(self):
        config = CoCoAConfig(n_anchors=0)
        assert config.n_unknowns == 50

    def test_guard_must_cover_drift(self):
        with pytest.raises(ValueError):
            CoCoAConfig(clock_drift_rate=0.05, guard_fraction=0.04)

    def test_guard_check_skipped_without_coordination(self):
        config = CoCoAConfig(
            clock_drift_rate=0.05, guard_fraction=0.04, coordination=False
        )
        assert config.clock_drift_rate == 0.05

    def test_speed_bounds_validated(self):
        with pytest.raises(ValueError):
            CoCoAConfig(v_min=2.0, v_max=0.5)

    def test_resolution_must_fit_area(self):
        with pytest.raises(ValueError):
            CoCoAConfig(area=Rect.square(2.0), grid_resolution_m=5.0)

    def test_paper_scenario_override(self):
        config = CoCoAConfig().paper_scenario(v_max=0.5, n_anchors=15)
        assert config.v_max == 0.5
        assert config.n_anchors == 15
        assert config.n_robots == 50

    def test_modes_enumerated(self):
        assert LocalizationMode("cocoa") is LocalizationMode.COCOA
        assert MulticastProtocol("mrmm") is MulticastProtocol.MRMM
