"""Unit tests for the particle-filter localization alternative."""

import numpy as np
import pytest

from repro.core.config import LocalizationFilter
from repro.core.estimator import PositionEstimator
from repro.core.config import LocalizationMode
from repro.core.particle import ParticleFilter
from repro.net.phy import PathLossModel
from repro.sim.rng import RandomStreams
from repro.util.geometry import Rect, Vec2

AREA = Rect.square(200.0)


def make_filter(seed=1, **kwargs):
    return ParticleFilter(AREA, RandomStreams(seed).get("pf"), **kwargs)


class TestConstruction:
    def test_particles_start_uniform(self):
        filt = make_filter(n_particles=2000)
        particles = filt.particles
        assert particles.shape == (2000, 2)
        assert particles[:, 0].min() >= 0.0
        assert particles[:, 0].max() <= 200.0
        # Uniform: mean near center, spread near 200/sqrt(12).
        assert abs(particles[:, 0].mean() - 100.0) < 10.0
        assert abs(particles[:, 0].std() - 200.0 / np.sqrt(12)) < 8.0

    def test_initial_estimate_near_center(self):
        filt = make_filter()
        assert filt.estimate().distance_to(AREA.center) < 12.0

    def test_weights_normalized(self):
        filt = make_filter()
        assert filt.weights.sum() == pytest.approx(1.0)

    def test_initial_ess_is_n(self):
        filt = make_filter(n_particles=500)
        assert filt.effective_sample_size() == pytest.approx(500.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_filter(n_particles=5)
        with pytest.raises(ValueError):
            make_filter(resample_ess_fraction=0.0)
        with pytest.raises(ValueError):
            make_filter(roughening_std_m=-1.0)


class TestBeaconUpdates:
    def test_triangulation(self, pdf_table):
        model = PathLossModel()
        true = Vec2(80.0, 120.0)
        filt = make_filter(n_particles=3000)
        anchors = [
            Vec2(60, 100), Vec2(110, 130), Vec2(75, 150), Vec2(95, 100),
        ]
        for anchor in anchors:
            rssi = float(model.mean_rssi(anchor.distance_to(true)))
            filt.apply_beacon(anchor, rssi, pdf_table)
        assert filt.estimate().distance_to(true) < 10.0
        assert filt.beacons_applied == 4

    def test_spread_shrinks_with_evidence(self, pdf_table):
        model = PathLossModel()
        rng = RandomStreams(3).get("x")
        true = Vec2(100.0, 100.0)
        filt = make_filter()
        before = filt.position_std_m()
        for _ in range(8):
            anchor = Vec2(
                float(rng.uniform(60, 140)), float(rng.uniform(60, 140))
            )
            rssi = float(
                model.sample_rssi(max(anchor.distance_to(true), 1.0), rng)
            )
            filt.apply_beacon(anchor, rssi, pdf_table)
        assert filt.position_std_m() < before

    def test_resampling_triggered(self, pdf_table):
        filt = make_filter()
        # Sharp, repeated evidence collapses the ESS and forces resampling.
        for _ in range(6):
            filt.apply_beacon(Vec2(100, 100), -50.0, pdf_table)
        assert filt.resamplings >= 1
        assert filt.weights.max() < 0.5

    def test_contradictory_evidence_recovers(self, pdf_table):
        filt = make_filter()
        for _ in range(30):
            filt.apply_beacon(Vec2(0, 0), -45.0, pdf_table)
            filt.apply_beacon(Vec2(200, 200), -45.0, pdf_table)
        assert np.isfinite(filt.weights.sum())
        assert filt.weights.sum() == pytest.approx(1.0)

    def test_reset_restores_uniform(self, pdf_table):
        filt = make_filter()
        filt.apply_beacon(Vec2(50, 50), -55.0, pdf_table)
        filt.reset_uniform()
        assert filt.beacons_applied == 0
        assert filt.position_std_m() > 50.0

    def test_particles_stay_inside_area(self, pdf_table):
        filt = make_filter()
        rng = RandomStreams(5).get("b")
        for _ in range(20):
            filt.apply_beacon(
                Vec2(float(rng.uniform(0, 200)), float(rng.uniform(0, 200))),
                float(rng.uniform(-90, -45)),
                pdf_table,
            )
            particles = filt.particles
            assert particles[:, 0].min() >= 0.0
            assert particles[:, 1].max() <= 200.0


class TestAgainstGrid:
    def test_comparable_accuracy_to_grid(self, pdf_table):
        """Particle and grid filters should agree on easy fixes."""
        from repro.core.bayes import GridBayesFilter

        model = PathLossModel()
        rng = RandomStreams(9).get("t")
        disagreements = []
        for trial in range(10):
            true = Vec2(
                float(rng.uniform(40, 160)), float(rng.uniform(40, 160))
            )
            grid = GridBayesFilter(AREA, 2.0)
            pf = make_filter(seed=trial, n_particles=3000)
            for _ in range(10):
                anchor = Vec2(
                    float(rng.uniform(0, 200)), float(rng.uniform(0, 200))
                )
                rssi = float(
                    model.sample_rssi(max(anchor.distance_to(true), 1.0), rng)
                )
                grid.apply_beacon(anchor, rssi, pdf_table)
                pf.apply_beacon(anchor, rssi, pdf_table)
            disagreements.append(
                grid.estimate().distance_to(pf.estimate())
            )
        assert float(np.mean(disagreements)) < 8.0

    def test_estimator_accepts_particle_filter(self, pdf_table):
        filt = make_filter()
        est = PositionEstimator(
            LocalizationMode.RF_ONLY,
            AREA,
            pdf_table=pdf_table,
            position_filter=filt,
        )
        assert est.filter is filt

    def test_team_runs_with_particle_filter(self, pdf_table):
        from repro.core.config import CoCoAConfig
        from repro.core.team import CoCoATeam

        config = CoCoAConfig(
            n_robots=12,
            n_anchors=6,
            beacon_period_s=30.0,
            duration_s=65.0,
            master_seed=3,
            localization_filter=LocalizationFilter.PARTICLE,
            n_particles=800,
        )
        result = CoCoATeam(config, pdf_table=pdf_table).run()
        assert result.fixes > 0
        assert result.errors.shape[0] == 6
