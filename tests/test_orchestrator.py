"""Tests for the sweep orchestrator: jobs, cache, executor, progress.

The determinism guard is the load-bearing test: parallel execution must
produce bit-identical metrics to serial execution for the same master
seeds, and a warm cache must answer a repeated sweep without running a
single simulation.
"""

import os
import pickle

import pytest

from repro.analysis.seeds import run_seed_sweep
from repro.core.config import CoCoAConfig
from repro.experiments.runner import run_scenario
from repro.orchestrator.cache import ResultCache
from repro.orchestrator.executor import (
    ProcessPoolBackend,
    SerialBackend,
    run_sweep,
)
from repro.orchestrator.jobs import (
    SweepJob,
    config_digest,
    grid_jobs,
    seed_jobs,
)
from repro.orchestrator.progress import (
    JobRecord,
    ProgressListener,
    ProgressPrinter,
    SweepReport,
)
from repro.util.geometry import Rect


def tiny_config(**overrides):
    """A scenario small enough that a sweep of it runs in seconds."""
    defaults = dict(
        area=Rect.square(60.0),
        n_robots=8,
        n_anchors=4,
        beacon_period_s=20.0,
        duration_s=45.0,
        calibration_samples=6000,
    )
    defaults.update(overrides)
    return CoCoAConfig(**defaults)


class TestConfigDigest:
    def test_stable_across_instances(self):
        assert config_digest(tiny_config()) == config_digest(tiny_config())

    def test_is_hex_sha256(self):
        digest = config_digest(tiny_config())
        assert len(digest) == 64
        int(digest, 16)

    def test_any_field_change_changes_digest(self):
        base = config_digest(tiny_config())
        assert config_digest(tiny_config(master_seed=2)) != base
        assert config_digest(tiny_config(v_max=1.9)) != base
        assert config_digest(tiny_config(coordination=False)) != base

    def test_nested_dataclass_fields_hash(self):
        from repro.net.phy import PathLossModel

        tweaked = tiny_config(path_loss=PathLossModel(gaussian_sigma_db=3.1))
        assert config_digest(tweaked) != config_digest(tiny_config())


class TestJobBuilders:
    def test_seed_jobs(self):
        jobs = seed_jobs(tiny_config(), seeds=(3, 7))
        assert [j.key for j in jobs] == [3, 7]
        assert [j.config.master_seed for j in jobs] == [3, 7]
        assert jobs[0].name == "seed=3"

    def test_grid_jobs(self):
        jobs = grid_jobs(tiny_config(), "beacon_period_s", (10.0, 15.0))
        assert [j.config.beacon_period_s for j in jobs] == [10.0, 15.0]
        assert jobs[1].name == "beacon_period_s=15.0"

    def test_fingerprint_matches_digest(self):
        job = SweepJob(config=tiny_config(), name="x")
        assert job.fingerprint == config_digest(job.config)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"))
        job = SweepJob(config=tiny_config(), name="one")
        assert cache.get(job.fingerprint) is None
        result = run_scenario(job.config)
        assert cache.put(job.fingerprint, result, job_name="one", wall_s=0.5)
        loaded = cache.get(job.fingerprint)
        assert loaded is not None
        assert loaded.errors.shape == result.errors.shape
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.errors == 0
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_salt_change_invalidates(self, tmp_path):
        root = str(tmp_path / "c")
        job = SweepJob(config=tiny_config(), name="one")
        old = ResultCache(root=root, salt="v1")
        old.put(job.fingerprint, run_scenario(job.config))
        new = ResultCache(root=root, salt="v2")
        assert new.get(job.fingerprint) is None
        assert new.stats.misses == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"))
        job = SweepJob(config=tiny_config(), name="one")
        cache.put(job.fingerprint, run_scenario(job.config))
        with open(cache.path_for(job.fingerprint), "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get(job.fingerprint) is None
        assert cache.stats.errors == 1

    def test_wrong_payload_type_degrades_to_miss(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"))
        fp = "ab" * 32
        os.makedirs(os.path.dirname(cache.path_for(fp)), exist_ok=True)
        with open(cache.path_for(fp), "wb") as handle:
            pickle.dump({"not": "a TeamResult"}, handle)
        assert cache.get(fp) is None
        assert cache.stats.errors == 1

    def test_unwritable_root_never_crashes(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a regular file where the cache dir should go")
        cache = ResultCache(root=str(blocker))
        result = run_scenario(tiny_config())
        assert not cache.put("ab" * 32, result)
        assert cache.stats.errors == 1
        assert cache.stats.stores == 0

    def test_unwritable_cache_still_sweeps(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        cache = ResultCache(root=str(blocker))
        jobs = seed_jobs(tiny_config(), seeds=(1, 2))
        outcome = run_sweep(jobs, cache=cache)
        assert len(outcome.results) == 2
        assert outcome.report.n_executed == 2
        assert cache.stats.errors >= 2

    def test_manifest_records_stores(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"))
        jobs = seed_jobs(tiny_config(), seeds=(1, 2))
        run_sweep(jobs, cache=cache)
        entries = cache.entries()
        assert len(entries) == 2
        assert {e.job for e in entries} == {"seed=1", "seed=2"}
        assert all(e.fingerprint for e in entries)
        assert cache.size_bytes() > 0

    def test_clear_wipes_everything(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"))
        job = SweepJob(config=tiny_config(), name="one")
        cache.put(job.fingerprint, run_scenario(job.config))
        cache.clear()
        assert not os.path.exists(cache.root)
        assert cache.get(job.fingerprint) is None


class RecordingListener(ProgressListener):
    def __init__(self):
        self.started = None
        self.finished = []
        self.report = None

    def sweep_started(self, n_jobs, n_workers):
        self.started = (n_jobs, n_workers)

    def job_finished(self, record, done, total, eta_s):
        self.finished.append((record, done, total, eta_s))

    def sweep_finished(self, report):
        self.report = report


class TestRunSweep:
    def test_results_in_job_order(self):
        jobs = seed_jobs(tiny_config(), seeds=(5, 2, 9))
        outcome = run_sweep(jobs)
        assert [r.config.master_seed for r in outcome.results] == [5, 2, 9]
        assert outcome.by_key()[9].config.master_seed == 9

    def test_by_key_rejects_duplicates(self):
        jobs = [
            SweepJob(config=tiny_config(), name="a", key="same"),
            SweepJob(config=tiny_config(master_seed=2), name="b", key="same"),
        ]
        outcome = run_sweep(jobs)
        with pytest.raises(ValueError):
            outcome.by_key()

    def test_progress_callbacks(self):
        listener = RecordingListener()
        jobs = seed_jobs(tiny_config(), seeds=(1, 2))
        run_sweep(jobs, progress=listener)
        assert listener.started == (2, 1)
        assert [done for _, done, _, _ in listener.finished] == [1, 2]
        assert listener.report.n_jobs == 2
        assert listener.report.n_executed == 2
        assert all(r.wall_s > 0 for r in listener.report.records)

    def test_progress_printer_output(self, capsys):
        import io

        out = io.StringIO()
        jobs = seed_jobs(tiny_config(), seeds=(1, 2))
        run_sweep(jobs, progress=ProgressPrinter(out=out))
        text = out.getvalue()
        assert "sweep: 2 jobs" in text
        assert "[1/2]" in text and "[2/2]" in text
        assert "sweep done:" in text

    def test_report_summary_format(self):
        report = SweepReport(
            records=[
                JobRecord(name="a", wall_s=1.0, cached=False),
                JobRecord(name="b", wall_s=0.0, cached=True),
            ],
            total_wall_s=1.2,
            cache_hits=1,
            cache_misses=1,
            n_workers=2,
        )
        text = report.format_summary()
        assert "2 jobs" in text
        assert "1 executed" in text
        assert "1 cached" in text
        assert "2 workers" in text

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(0)

    def test_explicit_backend_instance(self):
        jobs = seed_jobs(tiny_config(), seeds=(1, 2))
        outcome = run_sweep(jobs, backend=SerialBackend())
        assert outcome.report.n_workers == 1
        assert len(outcome.results) == 2


class TestDeterminismGuard:
    """Parallel output must be bit-identical to serial output."""

    SEEDS = (1, 2, 3, 4, 5, 6, 7, 8)

    def test_serial_vs_parallel_seed_sweep_bit_identical(self):
        serial = run_seed_sweep(tiny_config(), seeds=self.SEEDS, jobs=1)
        parallel = run_seed_sweep(tiny_config(), seeds=self.SEEDS, jobs=2)
        assert serial.error_time_averages_m == parallel.error_time_averages_m
        assert serial.energy_totals_j == parallel.energy_totals_j
        assert serial.error_ci.mean == parallel.error_ci.mean

    def test_acceptance_eight_jobs_four_workers_with_warm_cache(
        self, tmp_path
    ):
        """The issue's acceptance bar: >= 8 seed jobs, --jobs 4, identical
        to serial; second warm-cache invocation simulates nothing."""
        jobs = seed_jobs(tiny_config(), seeds=self.SEEDS)
        serial = run_sweep(jobs)

        cache = ResultCache(root=str(tmp_path / "cache"))
        cold = run_sweep(jobs, n_jobs=4, cache=cache)
        assert cold.report.n_workers == 4
        assert cold.report.n_executed == len(self.SEEDS)
        for a, b in zip(serial.results, cold.results):
            assert a.errors.tolist() == b.errors.tolist()
            assert a.total_energy_j() == b.total_energy_j()
            assert a.beacons_sent == b.beacons_sent

        warm_cache = ResultCache(root=str(tmp_path / "cache"))
        warm = run_sweep(jobs, n_jobs=4, cache=warm_cache)
        assert warm.report.n_executed == 0
        assert warm_cache.stats.hits == len(self.SEEDS)
        assert warm_cache.stats.misses == 0
        for a, b in zip(serial.results, warm.results):
            assert a.errors.tolist() == b.errors.tolist()
            assert a.total_energy_j() == b.total_energy_j()


# -- executor hardening -------------------------------------------------------
#
# The tasks below are injected via ProcessPoolBackend's ``task`` hook; they
# must live at module level so worker processes can unpickle them.  Jobs
# carry a scratch directory in their ``key`` so a task can leave a marker
# for "already failed once" across worker processes.


def _marker_path(job):
    return os.path.join(job.key, "marker-%s" % job.name)


def _echo_task(job):
    return "ok:%s" % job.name, 0.01


def _crash_once_task(job):
    path = _marker_path(job)
    if not os.path.exists(path):
        open(path, "w").close()
        os._exit(17)  # hard worker death -> BrokenProcessPool
    return "ok:%s" % job.name, 0.01


def _raise_once_task(job):
    path = _marker_path(job)
    if not os.path.exists(path):
        open(path, "w").close()
        raise ValueError("transient")
    return "ok:%s" % job.name, 0.01


def _always_raise_task(job):
    raise ValueError("permanent")


def _hang_once_task(job):
    import time as _time

    path = _marker_path(job)
    if not os.path.exists(path):
        open(path, "w").close()
        _time.sleep(60.0)
    return "ok:%s" % job.name, 0.01


class TestExecutorHardening:
    def _pending(self, tmp_path, names=("j0",)):
        return [
            (index, SweepJob(config=tiny_config(), name=name,
                             key=str(tmp_path)))
            for index, name in enumerate(names)
        ]

    def _backend(self, n_workers=1, task=_echo_task, **kwargs):
        kwargs.setdefault("backoff_base_s", 0.001)
        return ProcessPoolBackend(n_workers, task=task, **kwargs)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(2, timeout_s=0.0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(2, max_attempts=0)

    def test_happy_path_single_attempt(self, tmp_path):
        backend = self._backend()
        out = list(backend.execute(self._pending(tmp_path, ("a", "b"))))
        assert sorted(out) == [
            (0, "ok:a", 0.01, 1),
            (1, "ok:b", 0.01, 1),
        ]

    def test_worker_crash_recovers_and_charges_one_attempt(self, tmp_path):
        backend = self._backend(task=_crash_once_task)
        out = list(backend.execute(self._pending(tmp_path)))
        assert out == [(0, "ok:j0", 0.01, 2)]

    def test_transient_exception_retried_with_backoff(self, tmp_path):
        backend = self._backend(task=_raise_once_task)
        out = list(backend.execute(self._pending(tmp_path)))
        assert out == [(0, "ok:j0", 0.01, 2)]

    def test_permanent_failure_aborts_with_job_name(self, tmp_path):
        from repro.orchestrator.executor import SweepExecutionError

        backend = self._backend(task=_always_raise_task, max_attempts=2)
        with pytest.raises(SweepExecutionError, match="j0"):
            list(backend.execute(self._pending(tmp_path)))

    def test_stuck_worker_times_out_and_job_retries(self, tmp_path):
        backend = self._backend(task=_hang_once_task, timeout_s=1.0)
        out = list(backend.execute(self._pending(tmp_path)))
        assert out == [(0, "ok:j0", 0.01, 2)]

    def test_run_sweep_reports_retries(self, tmp_path):
        backend = self._backend(n_workers=2, task=_raise_once_task)
        jobs = [
            SweepJob(config=tiny_config(), name=n, key=str(tmp_path))
            for n in ("a", "b")
        ]
        outcome = run_sweep(jobs, backend=backend)
        assert outcome.results == ["ok:a", "ok:b"]
        assert outcome.report.n_retried == 2
        assert [r.attempts for r in outcome.report.records] == [2, 2]
        assert "retried" in outcome.report.format_summary()
