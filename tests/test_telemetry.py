"""Tests for the telemetry subsystem: registry, spans, snapshots,
exporters, the report renderer, and the determinism regression.

The load-bearing test here is :class:`TestBitIdenticalRegression`: a run
with rich telemetry enabled must produce byte-identical simulation
output to the same run with telemetry disabled, on both the serial and
process-pool backends.  Telemetry that perturbs results is worse than no
telemetry at all.
"""

import io
import json

import pytest

from repro.analysis.seeds import run_seed_sweep
from repro.core.config import CoCoAConfig
from repro.experiments.metrics import summarize_errors
from repro.experiments.runner import run_scenario
from repro.orchestrator.cache import ResultCache
from repro.orchestrator.executor import run_sweep
from repro.orchestrator.jobs import seed_jobs
from repro.sim.trace import TraceLog
from repro.telemetry import (
    COUNT_EDGES,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    SpanTracer,
    Telemetry,
    TelemetrySnapshot,
    global_registry,
    merge_snapshots,
    prometheus_text,
    read_jsonl,
    render_report,
    set_global_registry,
    span_records,
    write_jsonl,
)
from repro.util.geometry import Rect


def tiny_config(**overrides):
    """A scenario small enough for per-test simulation."""
    defaults = dict(
        area=Rect.square(60.0),
        n_robots=8,
        n_anchors=4,
        beacon_period_s=20.0,
        duration_s=45.0,
        calibration_samples=6000,
    )
    defaults.update(overrides)
    return CoCoAConfig(**defaults)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("hits").inc(-1.0)

    def test_gauge_set_and_set_max(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5.0)
        gauge.set_max(3.0)
        assert gauge.value == 5.0
        gauge.set_max(9.0)
        assert gauge.value == 9.0

    def test_histogram_buckets_and_quantiles(self):
        hist = Histogram("x", edges=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 10.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 2, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(16.5)
        assert hist.mean == pytest.approx(3.3)
        assert 0.5 <= hist.quantile(0.5) <= 2.0
        assert hist.quantile(1.0) == 10.0
        assert hist.quantile(0.0) >= 0.5

    def test_histogram_empty_quantile_is_zero(self):
        assert Histogram("x", edges=(1.0,)).quantile(0.9) == 0.0

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("x", edges=())
        with pytest.raises(ValueError):
            Histogram("x", edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", edges=(1.0, 1.0))

    def test_registry_memoizes(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_metrics_flattens_histograms(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7.0)
        hist = registry.histogram("h", COUNT_EDGES)
        hist.observe(3.0)
        metrics = registry.metrics()
        assert metrics["c"] == 2.0
        assert metrics["g"] == 7.0
        assert metrics["h_count"] == 1.0
        assert metrics["h_sum"] == 3.0
        assert "h_p50" in metrics and "h_p90" in metrics
        assert list(metrics) == sorted(metrics)

    def test_null_registry_absorbs_everything(self):
        NULL_REGISTRY.counter("a").inc(5)
        NULL_REGISTRY.gauge("b").set_max(9.0)
        NULL_REGISTRY.histogram("c").observe(1.0)
        assert NULL_REGISTRY.metrics() == {}
        assert not NULL_REGISTRY.enabled
        # The shim shares one instrument: nothing is ever allocated.
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("z")

    def test_global_registry_defaults_to_shim(self):
        assert global_registry() is NULL_REGISTRY
        try:
            registry = MetricsRegistry()
            set_global_registry(registry)
            assert global_registry() is registry
        finally:
            set_global_registry(None)
        assert global_registry() is NULL_REGISTRY


class TestSpanTracer:
    def test_span_lifecycle_and_duration(self):
        tracer = SpanTracer()
        span = tracer.start_span("window", 10.0, node=3, index=1)
        assert not span.closed
        assert span.duration_s == 0.0
        tracer.end_span(span, 13.0)
        assert span.closed
        assert span.duration_s == pytest.approx(3.0)
        assert span.attrs == {"index": 1}

    def test_end_before_start_rejected(self):
        tracer = SpanTracer()
        span = tracer.start_span("w", 10.0)
        with pytest.raises(ValueError):
            tracer.end_span(span, 9.0)

    def test_parent_links_and_children(self):
        tracer = SpanTracer()
        parent = tracer.start_span("beacon_round", 0.0, node=1)
        child = tracer.event(1.0, "beacon_rx", node=2, parent=parent)
        other = tracer.event(2.0, "beacon_rx", node=3)
        assert child.parent_id == parent.span_id
        assert other.parent_id is None
        assert tracer.children_of(parent) == [child]

    def test_point_events_are_closed_spans(self):
        tracer = SpanTracer()
        span = tracer.event(5.0, "tick", node=None, rssi=-70)
        assert span.closed
        assert span.start == span.end == 5.0
        assert span.attrs == {"rssi": -70}

    def test_ring_buffer_drops_oldest(self):
        tracer = SpanTracer(max_records=3)
        for t in range(5):
            tracer.event(float(t), "e", seq=t)
        assert len(tracer) == 3
        assert tracer.dropped_count == 2
        assert [s.attrs["seq"] for s in tracer] == [2, 3, 4]

    def test_invalid_max_records_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(max_records=0)

    def test_clear_keeps_drop_tally(self):
        tracer = SpanTracer(max_records=1)
        tracer.event(0.0, "a")
        tracer.event(1.0, "b")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped_count == 1

    def test_records_filter_and_count(self):
        tracer = SpanTracer()
        tracer.event(0.0, "a")
        tracer.event(1.0, "b")
        tracer.event(2.0, "a")
        assert tracer.count("a") == 2
        assert [s.start for s in tracer.records("a")] == [0.0, 2.0]


class TestTraceLogFacade:
    def test_only_enabled_categories_recorded(self):
        log = TraceLog(categories=("mac",))
        log.emit(1.0, "mac", node=2, kind="send")
        log.emit(2.0, "phy", node=2)
        assert len(log) == 1
        record = log.records()[0]
        assert record.time == 1.0
        assert record.category == "mac"
        assert record.node == 2
        assert record.details == {"kind": "send"}

    def test_detail_keys_may_shadow_parameter_names(self):
        # "node"/"parent" inside details must not collide with the
        # tracer's own record_event parameters.
        log = TraceLog(categories=("route",))
        log.emit(1.0, "route", node=1, parent=7)
        assert log.records()[0].details == {"parent": 7}

    def test_ring_buffer_mode(self):
        log = TraceLog(categories=("e",), max_records=2)
        for t in range(4):
            log.emit(float(t), "e")
        assert log.max_records == 2
        assert len(log) == 2
        assert log.dropped_count == 2
        assert [r.time for r in log] == [2.0, 3.0]

    def test_unbounded_by_default(self):
        log = TraceLog(categories=("e",))
        assert log.max_records is None
        for t in range(100):
            log.emit(float(t), "e")
        assert log.dropped_count == 0
        assert log.count("e") == 100

    def test_spans_visible_through_tracer_property(self):
        log = TraceLog(categories=("sync",))
        log.emit(3.0, "sync", node=4)
        assert [s.name for s in log.tracer] == ["sync"]


class TestSnapshot:
    def test_merge_sums_by_default(self):
        a = TelemetrySnapshot({"net_frames_sent": 2.0})
        a.merge(TelemetrySnapshot({"net_frames_sent": 3.0}))
        assert a.get("net_frames_sent") == 5.0
        assert a.n_runs == 2

    def test_merge_max_and_last_metrics(self):
        a = TelemetrySnapshot(
            {"sim_max_queue_depth": 10.0, "run_n_robots": 8.0}
        )
        a.merge(TelemetrySnapshot(
            {"sim_max_queue_depth": 7.0, "run_n_robots": 16.0}
        ))
        assert a.get("sim_max_queue_depth") == 10.0  # high-water mark
        assert a.get("run_n_robots") == 16.0  # config echo: last wins

    def test_merge_snapshots_is_associative_over_sums(self):
        parts = [TelemetrySnapshot({"x": float(i)}) for i in range(4)]
        left = merge_snapshots(parts[:2])
        left.merge(merge_snapshots(parts[2:]))
        flat = merge_snapshots(parts)
        assert left.metrics == flat.metrics
        assert left.n_runs == flat.n_runs == 4

    def test_record_round_trip(self):
        snapshot = TelemetrySnapshot({"b": 2.0, "a": 1.0}, n_runs=3)
        record = snapshot.as_record()
        assert record == {"n_runs": 3, "metrics": {"a": 1.0, "b": 2.0}}
        back = TelemetrySnapshot.from_mapping(
            record["metrics"], n_runs=record["n_runs"]
        )
        assert back.metrics == snapshot.metrics
        assert back.n_runs == 3


class TestExporters:
    def test_jsonl_round_trip_skips_corrupt_lines(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(path, [{"a": 1}, {"b": 2.5}])
        with open(path, "a") as handle:
            handle.write("{not json\n\n")
        write_jsonl(path, [{"c": 3}], mode="a")
        assert read_jsonl(path) == [{"a": 1}, {"b": 2.5}, {"c": 3}]

    def test_prometheus_text_from_registry(self):
        registry = MetricsRegistry()
        registry.counter("frames_sent").inc(4)
        hist = registry.histogram("beacons", edges=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(5.0)
        text = prometheus_text(registry)
        assert "# TYPE repro_frames_sent counter" in text
        assert "repro_frames_sent 4.0" in text
        assert "# TYPE repro_beacons histogram" in text
        assert 'repro_beacons_bucket{le="1.0"} 1' in text
        assert 'repro_beacons_bucket{le="+Inf"} 2' in text
        assert "repro_beacons_count 2" in text
        # Flattened scalars must not double-render next to the buckets.
        assert "# TYPE repro_beacons_count" not in text

    def test_prometheus_text_from_snapshot(self):
        snapshot = TelemetrySnapshot({"run_n_robots": 8.0, "fixes": 3.0})
        text = prometheus_text(snapshot)
        assert "# TYPE repro_run_n_robots gauge" in text
        assert "# TYPE repro_fixes counter" in text

    def test_span_records_are_json_serializable(self):
        tracer = SpanTracer()
        parent = tracer.start_span("round", 1.0, node=1)
        tracer.end_span(parent, 2.0)
        tracer.event(1.5, "rx", node=2, parent=parent)
        records = span_records(tracer)
        assert len(records) == 2
        assert all(r["record"] == "span" for r in records)
        assert records[1]["parent_id"] == records[0]["span_id"]
        json.dumps(records)


class TestReportRenderer:
    def test_sections_render_from_empty_snapshot(self):
        text = render_report(TelemetrySnapshot({}))
        for section in ("network", "estimator", "radio", "energy",
                        "multicast", "simulation"):
            assert section in text
        assert "orchestrator" not in text
        assert "tracing" not in text

    def test_sweep_and_tracing_sections(self):
        snapshot = TelemetrySnapshot({
            "trace_spans_recorded": 12.0,
            "trace_spans_dropped": 2.0,
            "orchestrator_job_cpu_s": 1.5,
        })
        sweep = {
            "jobs": 4, "cache_hits": 3, "cache_misses": 1, "retried": 0,
            "wall_s": 2.0, "n_workers": 2,
            "job_wall_p50_s": 0.5, "job_wall_p90_s": 0.9,
        }
        text = render_report(snapshot, sweep=sweep)
        assert "hit rate 75.0%" in text
        assert "job wall p50 0.50 s" in text
        assert "spans recorded 12, dropped 2" in text
        assert "job cpu total 1.50 s" in text

    def test_drop_causes_listed(self):
        text = render_report(TelemetrySnapshot({"net_drops_crc": 7.0}))
        assert "crc 7" in text
        for cause in ("below-sensitivity", "collided", "asleep",
                      "half-duplex", "jammed", "brownout"):
            assert cause in text


class TestRunSnapshots:
    """End-to-end: every run carries a base snapshot; rich mode adds to it."""

    def test_base_snapshot_always_present(self):
        result = run_scenario(tiny_config())
        snapshot = result.telemetry
        assert snapshot is not None
        assert snapshot.n_runs == 1
        assert snapshot.get("run_n_robots") == 8.0
        assert snapshot.get("sim_events_processed") > 0
        assert snapshot.get("net_frames_sent") > 0
        assert snapshot.get("energy_total_j") > 0
        assert snapshot.get("coordinator_windows_run") > 0
        # Rich-only keys absent without a Telemetry handle.
        assert "trace_spans_recorded" not in snapshot.metrics

    def test_rich_snapshot_adds_registry_and_spans(self):
        telemetry = Telemetry.enabled()
        result = run_scenario(tiny_config(), telemetry=telemetry)
        snapshot = result.telemetry
        assert snapshot.get("trace_spans_recorded") > 0
        assert snapshot.get("trace_spans_dropped") == 0.0
        assert snapshot.get("estimator_beacons_per_window_count") > 0
        rounds = telemetry.tracer.records("beacon_round")
        assert rounds
        assert all(s.closed for s in rounds[:-1])
        # Receive events hang off their window span.
        rx = telemetry.tracer.records("beacon_rx")
        assert rx
        parent_ids = {s.span_id for s in rounds}
        assert all(s.parent_id in parent_ids for s in rx)


class TestBitIdenticalRegression:
    """Rich telemetry must never change simulation output."""

    SEEDS = (1, 2)

    def _summaries(self, results):
        return [
            summarize_errors(r.errors, skip_first_s=10.0) for r in results
        ]

    def test_single_run_bit_identical(self):
        plain = run_scenario(tiny_config())
        rich = run_scenario(tiny_config(), telemetry=Telemetry.enabled())
        assert plain.errors.tobytes() == rich.errors.tobytes()
        assert plain.times.tolist() == rich.times.tolist()
        assert plain.total_energy_j() == rich.total_energy_j()
        assert self._summaries([plain]) == self._summaries([rich])

    def test_serial_sweep_bit_identical(self):
        off = run_sweep(seed_jobs(tiny_config(), self.SEEDS))
        on = run_sweep(
            seed_jobs(tiny_config(), self.SEEDS, telemetry=True)
        )
        for a, b in zip(off.results, on.results):
            assert a.errors.tobytes() == b.errors.tobytes()
            assert a.beacons_sent == b.beacons_sent
        assert self._summaries(off.results) == self._summaries(on.results)

    def test_process_pool_sweep_bit_identical(self, tmp_path):
        off = run_sweep(seed_jobs(tiny_config(), self.SEEDS), n_jobs=2)
        on = run_sweep(
            seed_jobs(tiny_config(), self.SEEDS, telemetry=True), n_jobs=2
        )
        for a, b in zip(off.results, on.results):
            assert a.errors.tobytes() == b.errors.tobytes()
            assert a.total_energy_j() == b.total_energy_j()
        assert self._summaries(off.results) == self._summaries(on.results)

    def test_telemetry_flag_does_not_change_fingerprint(self):
        plain, rich = (
            seed_jobs(tiny_config(), (1,), telemetry=flag)[0]
            for flag in (False, True)
        )
        assert plain.fingerprint == rich.fingerprint

    def test_seed_sweep_metrics_unchanged_by_telemetry(self, tmp_path):
        off = run_seed_sweep(tiny_config(), seeds=self.SEEDS)
        on = run_seed_sweep(
            tiny_config(), seeds=self.SEEDS,
            telemetry_path=str(tmp_path / "t.jsonl"),
        )
        assert off.error_time_averages_m == on.error_time_averages_m
        assert off.energy_totals_j == on.energy_totals_j


class TestSweepTelemetryStream:
    def test_jsonl_has_one_job_record_per_job_plus_sweep(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        jobs = seed_jobs(tiny_config(), (1, 2), telemetry=True)
        run_sweep(jobs, telemetry_path=path)
        records = read_jsonl(path)
        job_records = [r for r in records if r.get("record") == "job"]
        sweep_records = [r for r in records if r.get("record") == "sweep"]
        assert len(job_records) == 2
        assert len(sweep_records) == 1
        for record in job_records:
            assert record["metrics"]["run_n_robots"] == 8.0
            assert record["metrics"]["trace_spans_recorded"] > 0
            assert not record["cached"]
        assert sweep_records[0]["jobs"] == 2

    def test_sweep_log_written_to_cache(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"))
        run_sweep(seed_jobs(tiny_config(), (1, 2)), cache=cache)
        records = cache.sweep_records()
        assert len(records) == 1
        assert records[0]["cache_misses"] == 2
        run_sweep(seed_jobs(tiny_config(), (1, 2)), cache=cache)
        records = cache.sweep_records()
        assert len(records) == 2
        assert records[1]["cache_hits"] == 2


class TestReportCommand:
    def _run_cli(self, argv):
        out = io.StringIO()
        from repro.cli import main

        code = main(argv, out=out)
        return code, out.getvalue()

    def test_report_from_cache(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"))
        run_sweep(seed_jobs(tiny_config(), (1, 2)), cache=cache)
        code, output = self._run_cli(
            ["report", "--cache-dir", str(tmp_path / "c")]
        )
        assert code == 0
        assert "2 runs aggregated" in output
        assert "drops by cause" in output
        assert "sleep fraction" in output
        assert "cache hits 0, misses 2" in output

    def test_report_from_jsonl_and_prometheus(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        run_sweep(
            seed_jobs(tiny_config(), (1, 2), telemetry=True),
            telemetry_path=path,
        )
        code, output = self._run_cli(["report", "--from", path])
        assert code == 0
        assert "2 runs aggregated" in output
        assert "spans recorded" in output
        code, prom = self._run_cli(["report", "--from", path,
                                    "--prometheus"])
        assert code == 0
        assert "# TYPE repro_net_frames_sent counter" in prom

    def test_report_empty_cache_fails_cleanly(self, tmp_path):
        code, output = self._run_cli(
            ["report", "--cache-dir", str(tmp_path / "nothing")]
        )
        assert code == 1
        assert "no telemetry snapshots" in output

    def test_report_missing_jsonl_fails_cleanly(self, tmp_path):
        code, output = self._run_cli(
            ["report", "--from", str(tmp_path / "missing.jsonl")]
        )
        assert code == 2
        assert "cannot read" in output
