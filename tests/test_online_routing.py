"""Tests for online geographic routing (HELLO, neighbor tables, greedy)."""

import numpy as np
import pytest

from repro.core.config import CoCoAConfig
from repro.ext.online_routing import (
    GeoPayload,
    GeoRouter,
    NeighborTable,
    RoutingTeam,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.util.geometry import Vec2


class TestNeighborTable:
    def test_update_and_query(self):
        sim = Simulator()
        table = NeighborTable(sim, max_age_s=10.0)
        table.update(1, Vec2(5, 5))
        assert table.fresh_entries() == {1: Vec2(5, 5)}
        assert len(table) == 1

    def test_entries_expire(self):
        sim = Simulator()
        table = NeighborTable(sim, max_age_s=10.0)
        table.update(1, Vec2(5, 5))
        sim.run(until=11.0)
        assert table.fresh_entries() == {}

    def test_refresh_extends_life(self):
        sim = Simulator()
        table = NeighborTable(sim, max_age_s=10.0)
        table.update(1, Vec2(5, 5))
        sim.run(until=8.0)
        table.update(1, Vec2(6, 6))
        sim.run(until=15.0)
        assert table.fresh_entries() == {1: Vec2(6, 6)}

    def test_invalid_age_rejected(self):
        with pytest.raises(ValueError):
            NeighborTable(Simulator(), max_age_s=0.0)


def routing_config(**overrides):
    defaults = dict(
        n_robots=25,
        n_anchors=12,
        beacon_period_s=30.0,
        duration_s=245.0,
        master_seed=7,
        calibration_samples=30_000,
    )
    defaults.update(overrides)
    return CoCoAConfig(**defaults)


@pytest.fixture(scope="module")
def routed_run(pdf_table):
    """One RoutingTeam run with window-aligned random traffic."""
    team = RoutingTeam(routing_config(), pdf_table=pdf_table)
    rng = RandomStreams(50).get("traffic")
    attempts = []

    def traffic():
        if team.sim.now < 65.0:
            return  # let HELLO tables populate first
        ids = [n.node_id for n in team.nodes]
        for _ in range(4):
            src, dst = rng.choice(ids, size=2, replace=False)
            dest_pos = team.nodes[int(dst)].estimated_position(team.sim.now)
            team.routers[int(src)].send(int(dst), dest_pos)
            attempts.append((int(src), int(dst)))

    team.on_window(traffic, delay_s=1.0)
    result = team.run()
    return team, result, attempts


class TestRoutingTeam:
    def test_hello_populates_neighbor_tables(self, routed_run):
        team, _, _ = routed_run
        sizes = [len(t) for t in team.neighbor_tables.values()]
        # Over a 200 m arena with ~110 m range, most robots hear many.
        assert np.mean(sizes) > 8

    def test_most_messages_delivered(self, routed_run):
        team, _, attempts = routed_run
        stats = team.routing_stats()
        assert stats.originated == len(attempts)
        assert stats.delivered > 0.6 * stats.originated

    def test_drop_accounting_consistent(self, routed_run):
        team, _, _ = routed_run
        stats = team.routing_stats()
        accounted = (
            stats.delivered
            + stats.dropped_no_neighbor
            + stats.dropped_local_minimum
            + stats.dropped_ttl
        )
        # The remainder is genuine frame loss on the air.
        assert accounted <= stats.originated + stats.forwarded

    def test_multi_hop_paths_exist(self, routed_run):
        team, _, _ = routed_run
        hops = [p.hop_count for _, p in team.delivered_messages]
        assert hops
        assert max(hops) >= 2  # some pairs needed relaying

    def test_messages_delivered_to_correct_node(self, routed_run):
        team, _, _ = routed_run
        for receiver, payload in team.delivered_messages:
            assert receiver == payload.dest_id

    def test_localization_unaffected_by_routing(self, pdf_table):
        from repro.core.team import CoCoATeam

        plain = CoCoATeam(routing_config(), pdf_table=pdf_table).run()
        routed = RoutingTeam(routing_config(), pdf_table=pdf_table).run()
        assert routed.time_average_error() == pytest.approx(
            plain.time_average_error(), rel=0.25
        )


class TestGeoRouterUnits:
    def build_router(self, pdf_table=None):
        from repro.energy.model import EnergyModel
        from repro.mobility.base import StationaryMobility
        from repro.net.channel import BroadcastChannel
        from repro.net.interface import NetworkInterface
        from repro.net.phy import PathLossModel

        sim = Simulator()
        streams = RandomStreams(3)
        channel = BroadcastChannel(sim, PathLossModel(), streams.get("phy"))
        interface = NetworkInterface(
            sim,
            0,
            StationaryMobility(Vec2(0, 0)),
            channel,
            EnergyModel.wavelan_2mbps(),
            streams.spawn("mac", 0),
        )
        table = NeighborTable(sim, max_age_s=100.0)
        router = GeoRouter(
            sim, interface, table, lambda: Vec2(0, 0), max_hops=4
        )
        return sim, table, router

    def test_send_without_neighbors_fails(self):
        sim, table, router = self.build_router()
        assert not router.send(9, Vec2(100, 0))
        assert router.stats.dropped_no_neighbor == 1

    def test_local_minimum_detected(self):
        sim, table, router = self.build_router()
        # Only neighbor is farther from the destination than we are.
        table.update(5, Vec2(-50, 0))
        assert not router.send(9, Vec2(100, 0))
        assert router.stats.dropped_local_minimum == 1

    def test_progress_neighbor_accepted(self):
        sim, table, router = self.build_router()
        table.update(5, Vec2(50, 0))
        assert router.send(9, Vec2(100, 0))
        assert router.stats.originated == 1

    def test_reliable_hop_preferred_over_long_shot(self):
        sim, table, router = self.build_router()
        table.update(5, Vec2(60, 0))     # reliable progress
        table.update(6, Vec2(95, 0))     # more progress, flaky range
        payload = GeoPayload(
            dest_id=9,
            dest_position=Vec2(100, 0),
            next_hop=-1,
            hop_count=0,
            body=None,
            body_bytes=4,
            msg_id=1,
        )
        assert router._pick_next_hop(table.fresh_entries(), payload) == 5

    def test_far_destination_routed_through_relay(self):
        sim, table, router = self.build_router()
        table.update(9, Vec2(100, 0))    # the destination, far away
        table.update(5, Vec2(55, 0))     # a reliable relay
        payload = GeoPayload(
            dest_id=9,
            dest_position=Vec2(100, 0),
            next_hop=-1,
            hop_count=0,
            body=None,
            body_bytes=4,
            msg_id=1,
        )
        assert router._pick_next_hop(table.fresh_entries(), payload) == 5

    def test_near_destination_direct(self):
        sim, table, router = self.build_router()
        table.update(9, Vec2(40, 0))
        table.update(5, Vec2(30, 0))
        payload = GeoPayload(
            dest_id=9,
            dest_position=Vec2(40, 0),
            next_hop=-1,
            hop_count=0,
            body=None,
            body_bytes=4,
            msg_id=1,
        )
        assert router._pick_next_hop(table.fresh_entries(), payload) == 9

    def test_invalid_parameters(self):
        sim, table, router = self.build_router()
        from repro.ext.online_routing import GeoRouter as GR

        with pytest.raises(ValueError):
            GR(sim, router._interface, table, lambda: Vec2(0, 0), max_hops=0)
