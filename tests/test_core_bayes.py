"""Unit tests for the grid Bayesian filter (Equations 1-3)."""

import numpy as np
import pytest

from repro.core.bayes import GridBayesFilter
from repro.net.phy import PathLossModel
from repro.sim.rng import RandomStreams
from repro.util.geometry import Rect, Vec2


@pytest.fixture()
def area():
    return Rect.square(200.0)


class TestGridGeometry:
    def test_grid_shape(self, area):
        filt = GridBayesFilter(area, 2.0)
        assert filt.shape == (100, 100)

    def test_posterior_normalized_at_start(self, area):
        filt = GridBayesFilter(area, 2.0)
        assert filt.posterior.sum() == pytest.approx(1.0)

    def test_uniform_prior_estimate_is_center(self, area):
        filt = GridBayesFilter(area, 2.0)
        estimate = filt.estimate()
        assert estimate.x == pytest.approx(100.0)
        assert estimate.y == pytest.approx(100.0)

    def test_posterior_read_only(self, area):
        filt = GridBayesFilter(area, 2.0)
        with pytest.raises(ValueError):
            filt.posterior[0, 0] = 1.0

    def test_invalid_resolution_rejected(self, area):
        with pytest.raises(ValueError):
            GridBayesFilter(area, 0.0)
        with pytest.raises(ValueError):
            GridBayesFilter(area, 500.0)

    def test_non_square_area(self):
        filt = GridBayesFilter(Rect(0, 0, 100, 50), 2.0)
        assert filt.shape == (25, 50)
        est = filt.estimate()
        assert est.x == pytest.approx(50.0)
        assert est.y == pytest.approx(25.0)


class TestBeaconUpdates:
    def test_single_beacon_creates_ring(self, area, pdf_table):
        filt = GridBayesFilter(area, 2.0)
        beacon = Vec2(100.0, 100.0)
        # RSSI whose table distance is ~20 m.
        rssi = -60.0
        expected_d = pdf_table.expected_distance(rssi)
        filt.apply_beacon(beacon, rssi, pdf_table)
        # The ring is symmetric around the beacon, so the estimate stays at
        # the beacon; most posterior mass sits on the annulus at the
        # table's expected distance.
        estimate = filt.estimate()
        assert estimate.distance_to(beacon) < 5.0
        post = filt.posterior
        dist = np.hypot(
            filt._cell_x - beacon.x, filt._cell_y - beacon.y
        )
        on_ring = np.abs(dist - expected_d) < 6.0
        assert float(post[on_ring].sum()) > 0.6

    def test_beacons_applied_counter(self, area, pdf_table):
        filt = GridBayesFilter(area, 2.0)
        filt.apply_beacon(Vec2(50, 50), -60.0, pdf_table)
        filt.apply_beacon(Vec2(150, 50), -60.0, pdf_table)
        assert filt.beacons_applied == 2

    def test_reset_restores_uniform(self, area, pdf_table):
        filt = GridBayesFilter(area, 2.0)
        filt.apply_beacon(Vec2(50, 50), -60.0, pdf_table)
        filt.reset_uniform()
        assert filt.beacons_applied == 0
        assert float(filt.posterior.std()) == pytest.approx(0.0, abs=1e-12)

    def test_posterior_stays_normalized(self, area, pdf_table):
        filt = GridBayesFilter(area, 2.0)
        rng = RandomStreams(3).get("x")
        for _ in range(20):
            beacon = Vec2(
                float(rng.uniform(0, 200)), float(rng.uniform(0, 200))
            )
            filt.apply_beacon(beacon, float(rng.uniform(-90, -40)), pdf_table)
            assert filt.posterior.sum() == pytest.approx(1.0)
            assert np.all(filt.posterior >= 0)

    def test_triangulation_from_three_anchors(self, area, pdf_table):
        """Three rings around distinct anchors localize the robot — the
        paper's minimum-three-beacons rule."""
        model = PathLossModel()
        true = Vec2(80.0, 120.0)
        filt = GridBayesFilter(area, 2.0)
        anchors = [Vec2(60, 100), Vec2(110, 130), Vec2(75, 150)]
        for anchor in anchors:
            rssi = float(model.mean_rssi(anchor.distance_to(true)))
            filt.apply_beacon(anchor, rssi, pdf_table)
        assert filt.estimate().distance_to(true) < 8.0

    def test_more_beacons_tighten_posterior(self, area, pdf_table):
        model = PathLossModel()
        rng = RandomStreams(4).get("x")
        true = Vec2(100.0, 100.0)
        filt = GridBayesFilter(area, 2.0)
        spreads = []
        for i in range(12):
            anchor = Vec2(
                float(rng.uniform(60, 140)), float(rng.uniform(60, 140))
            )
            rssi = float(
                model.sample_rssi(max(anchor.distance_to(true), 1.0), rng)
            )
            filt.apply_beacon(anchor, rssi, pdf_table)
            spreads.append(filt.position_std_m())
        assert spreads[-1] < spreads[0]

    def test_annihilation_recovers_from_contradiction(self, area, pdf_table):
        """Grossly inconsistent beacons must not produce NaNs or crash."""
        filt = GridBayesFilter(area, 2.0)
        # Claim the robot is exactly 5 m from two anchors 200 m apart —
        # impossible; repeated updates drive the posterior toward zero.
        for _ in range(40):
            filt.apply_beacon(Vec2(0, 0), -45.0, pdf_table)
            filt.apply_beacon(Vec2(200, 200), -45.0, pdf_table)
        assert np.isfinite(filt.posterior.sum())
        assert filt.posterior.sum() == pytest.approx(1.0)

    def test_estimate_stays_inside_area(self, area, pdf_table):
        filt = GridBayesFilter(area, 2.0)
        rng = RandomStreams(5).get("x")
        for _ in range(30):
            filt.apply_beacon(
                Vec2(float(rng.uniform(0, 200)), float(rng.uniform(0, 200))),
                float(rng.uniform(-92, -40)),
                pdf_table,
            )
            assert area.contains(filt.estimate())


class TestEstimators:
    def test_mode_near_mean_for_unimodal(self, area, pdf_table):
        model = PathLossModel()
        true = Vec2(100.0, 100.0)
        filt = GridBayesFilter(area, 2.0)
        for anchor in (Vec2(80, 90), Vec2(120, 95), Vec2(100, 125)):
            rssi = float(model.mean_rssi(anchor.distance_to(true)))
            filt.apply_beacon(anchor, rssi, pdf_table)
        assert filt.mode().distance_to(filt.estimate()) < 10.0

    def test_covariance_positive_semidefinite(self, area, pdf_table):
        filt = GridBayesFilter(area, 2.0)
        filt.apply_beacon(Vec2(50, 50), -70.0, pdf_table)
        cov = filt.covariance()
        eigenvalues = np.linalg.eigvalsh(cov)
        assert np.all(eigenvalues >= -1e-9)
        assert cov[0, 1] == pytest.approx(cov[1, 0])

    def test_entropy_decreases_with_evidence(self, area, pdf_table):
        filt = GridBayesFilter(area, 2.0)
        before = filt.entropy_bits()
        filt.apply_beacon(Vec2(100, 100), -55.0, pdf_table)
        assert filt.entropy_bits() < before

    def test_uniform_entropy_is_log_cells(self, area):
        filt = GridBayesFilter(area, 2.0)
        assert filt.entropy_bits() == pytest.approx(
            np.log2(100 * 100), rel=1e-6
        )
