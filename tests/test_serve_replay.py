"""The service-path determinism gate: replayed fixes == batch fixes.

For three master seeds, a real batch scenario is recorded through the
estimator ingestion tap and replayed through the service; every fix the
service produces must match the batch fix **byte for byte**
(``float.hex`` on both coordinates), both for in-order delivery and for
randomly shuffled delivery within each beacon window.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.config import CoCoAConfig, LocalizationMode
from repro.serve import (
    InProcessClient,
    ReplayLog,
    ServeConfig,
    ServiceCore,
    diff_fixes,
    record_replay_log,
    replay_log,
)
from repro.util.geometry import Rect

GATE_SEEDS = (1, 2, 3)


def _scenario(seed: int) -> CoCoAConfig:
    return CoCoAConfig(
        area=Rect.square(80.0),
        n_robots=10,
        n_anchors=5,
        beacon_period_s=20.0,
        duration_s=60.0,
        master_seed=seed,
        calibration_samples=4000,
        localization_mode=LocalizationMode.RF_ONLY,
    )


@pytest.fixture(scope="module")
def recorded_logs():
    """One recorded batch run per gate seed (the expensive part, shared)."""
    logs = {}
    for seed in GATE_SEEDS:
        log, result = record_replay_log(_scenario(seed))
        assert result.fixes > 0, "gate scenario must produce fixes"
        logs[seed] = log
    return logs


def _replay(log, tenant, shuffle_rng=None, **serve_overrides):
    async def scenario():
        core = ServiceCore(ServeConfig(n_shards=2, **serve_overrides))
        client = InProcessClient(core)
        try:
            return await replay_log(client, log, tenant,
                                    shuffle_rng=shuffle_rng)
        finally:
            await core.stop()

    return asyncio.run(scenario())


#: Tracing shapes the gate must be blind to: off, record-everything,
#: and tail-sampling with a 0 ms threshold (every request takes the
#: tail-keep path).  The in-order gate below runs the serving default
#: (``sampled``).
TRACE_SHAPES = {
    "off": {"trace_mode": "off"},
    "always": {"trace_mode": "always"},
    "tail": {"trace_mode": "sampled", "trace_slow_ms": 0.0,
             "trace_sample_every": 10**6},
}


@pytest.mark.parametrize("seed", GATE_SEEDS)
def test_service_fixes_byte_identical_in_order(recorded_logs, seed):
    log = recorded_logs[seed]
    assert log.recorded_fixes(), "recording captured no fixes"
    replayed = _replay(log, "gate-%d" % seed)
    assert diff_fixes(log, replayed) == []


@pytest.mark.parametrize("seed", GATE_SEEDS)
def test_service_fixes_byte_identical_out_of_order(recorded_logs, seed):
    log = recorded_logs[seed]
    shuffled = _replay(
        log, "ooo-%d" % seed,
        shuffle_rng=np.random.default_rng(1000 + seed),
    )
    assert diff_fixes(log, shuffled) == []


@pytest.mark.parametrize("shape", sorted(TRACE_SHAPES))
@pytest.mark.parametrize("seed", GATE_SEEDS)
def test_service_fixes_byte_identical_under_tracing(
    recorded_logs, seed, shape
):
    """Wall-clock tracing must be invisible to the science bytes:
    the gate passes identically with tracing off, recording every
    request, or tail-sampling all of them."""
    log = recorded_logs[seed]
    replayed = _replay(log, "trace-%s-%d" % (shape, seed),
                       **TRACE_SHAPES[shape])
    assert diff_fixes(log, replayed) == []


def test_replay_log_jsonl_round_trip(recorded_logs, tmp_path):
    log = recorded_logs[GATE_SEEDS[0]]
    path = tmp_path / "replay.jsonl"
    log.dump_jsonl(path)
    restored = ReplayLog.load_jsonl(path)
    assert restored.calibration_seed == log.calibration_seed
    assert restored.lut == log.lut
    assert restored.events == log.events
    # A log that went through disk still passes the gate.
    replayed = _replay(restored, "disk")
    assert diff_fixes(restored, replayed) == []


def test_recording_does_not_change_batch_results():
    """The ingest tap is pure observation: a tapped run's TeamResult
    matches an untapped run of the same scenario exactly."""
    from repro.core.team import CoCoATeam

    config = _scenario(GATE_SEEDS[0])
    _log, tapped = record_replay_log(config)
    plain = CoCoATeam(_scenario(GATE_SEEDS[0])).run()
    assert tapped.fixes == plain.fixes
    np.testing.assert_array_equal(tapped.errors, plain.errors)
    np.testing.assert_array_equal(tapped.times, plain.times)


def test_diff_fixes_reports_divergence(recorded_logs):
    log = recorded_logs[GATE_SEEDS[0]]
    replayed = _replay(log, "tampered")
    fixed = [r for r in replayed if r["fixed"]]
    fixed[0]["x_hex"] = "0x1.0p+0"
    problems = diff_fixes(log, replayed)
    assert len(problems) == 1
    assert "x_hex differs" in problems[0]
