"""Tests for the ASY async-safety family and the runtime sanitizer.

Mirrors test_lint.py's structure: each rule gets a good/bad snippet
corpus linted under virtual paths, so package scoping (serve vs obs vs
sim) is exercised without touching disk.  The second half covers the
import-alias resolution the ASY call classification depends on, and
the runtime sanitizer (SAN001/SAN002) that complements the static
rules.
"""

from __future__ import annotations

import ast
import asyncio
import gc
import io
import json
import textwrap
import time

import pytest

from repro.cli import main
from repro.lint import (
    FINDINGS_SCHEMA,
    Finding,
    LintContext,
    LintReport,
    findings_payload,
    format_human,
    lint_text,
)
from repro.lint import asyncrules
from repro.lint.sanitize import (
    ENV_OUT,
    ENV_THRESHOLD_MS,
    PENDING_TASK_CODE,
    SLOW_CALLBACK_CODE,
    loop_sanitizer,
    threshold_from_env,
)

SERVE_PATH = "src/repro/serve/snippet.py"
OBS_PATH = "src/repro/obs/snippet.py"
SIM_PATH = "src/repro/core/snippet.py"
ORCH_PATH = "src/repro/orchestrator/snippet.py"
TEST_PATH = "tests/snippet.py"


def codes_at(text, path, select=None):
    result = lint_text(textwrap.dedent(text), path, select=select)
    return [(f.code, f.line) for f in result.findings]


def codes(text, path, select=None):
    return [c for c, _ in codes_at(text, path, select=select)]


class TestAsy001BlockingInCoroutine:
    def test_time_sleep_in_async_def_fires(self):
        found = codes_at(
            """\
            import time

            async def worker():
                time.sleep(1.0)
            """,
            SERVE_PATH,
        )
        assert found == [("ASY001", 4)]

    def test_open_and_subprocess_fire(self):
        snippet = """\
            import subprocess

            async def dump(path):
                with open(path) as handle:
                    handle.read()
                subprocess.run(["true"])
            """
        assert codes(snippet, SERVE_PATH) == ["ASY001", "ASY001"]

    def test_known_internal_disk_writer_fires(self):
        snippet = """\
            from repro.obs.export import write_trace_jsonl

            async def drain(tracer):
                write_trace_jsonl("out.jsonl", tracer.records())
            """
        assert codes(snippet, SERVE_PATH) == ["ASY001"]

    def test_sync_context_is_silent(self):
        snippet = """\
            import time

            def retry_pause():
                time.sleep(0.1)
            """
        assert codes(snippet, ORCH_PATH) == []

    def test_to_thread_offload_is_legal(self):
        snippet = """\
            import asyncio

            def dump(path, rows):
                with open(path, "w") as handle:
                    handle.write(repr(rows))

            async def drain(rows):
                await asyncio.to_thread(dump, "out.jsonl", rows)
            """
        assert codes(snippet, SERVE_PATH) == []

    def test_one_hop_through_local_sync_helper_fires(self):
        found = codes_at(
            """\
            def dump(path, rows):
                with open(path, "w") as handle:
                    handle.write(repr(rows))

            async def drain(rows):
                dump("out.jsonl", rows)
            """,
            SERVE_PATH,
        )
        assert found == [("ASY001", 6)]

    def test_allowlist_mechanism_exempts_an_origin(self, monkeypatch):
        snippet = """\
            import time

            async def worker():
                time.sleep(0.0)
            """
        assert codes(snippet, SERVE_PATH) == ["ASY001"]
        monkeypatch.setattr(
            asyncrules, "ASY001_ALLOWLIST", frozenset({"time.sleep"})
        )
        assert codes(snippet, SERVE_PATH) == []

    def test_noqa_with_justification_suppresses(self):
        result = lint_text(textwrap.dedent(
            """\
            import time

            async def worker():
                time.sleep(0)  # repro: noqa[ASY001] deliberate stall probe
            """
        ), SERVE_PATH)
        assert result.findings == []
        assert result.noqa_suppressed == 1


class TestAsy002DroppedAwaitable:
    def test_dropped_create_task_fires(self):
        snippet = """\
            import asyncio

            async def spawn(coro):
                asyncio.create_task(coro)
            """
        assert codes(snippet, SERVE_PATH) == ["ASY002"]

    def test_dropped_loop_create_task_fires(self):
        snippet = """\
            async def spawn(loop, coro):
                loop.create_task(coro)
            """
        assert codes(snippet, SERVE_PATH) == ["ASY002"]

    def test_retained_task_is_silent(self):
        snippet = """\
            import asyncio

            async def spawn(coro):
                task = asyncio.create_task(coro)
                return task
            """
        assert codes(snippet, SERVE_PATH) == []

    def test_bare_gather_fires_awaited_gather_does_not(self):
        snippet = """\
            import asyncio

            async def fan_out(a, b):
                asyncio.gather(a, b)
                await asyncio.gather(a, b)
            """
        assert codes_at(snippet, SERVE_PATH) == [("ASY002", 4)]

    def test_unawaited_same_file_coroutine_fires(self):
        snippet = """\
            async def work():
                return 1

            async def main():
                work()
                await work()
            """
        assert codes_at(snippet, SERVE_PATH) == [("ASY002", 5)]

    def test_unawaited_self_coroutine_method_fires(self):
        snippet = """\
            class Server:
                async def drain(self):
                    return 0

                async def stop(self):
                    self.drain()
            """
        assert codes_at(snippet, SERVE_PATH) == [("ASY002", 6)]

    def test_unknown_bare_call_is_silent(self):
        snippet = """\
            async def main(client):
                client.flush()
            """
        assert codes(snippet, SERVE_PATH) == []


class TestAsy003AwaitUnderSyncLock:
    SELECT = frozenset({"ASY003"})

    def test_await_under_self_lock_fires(self):
        snippet = """\
            async def update(self):
                with self._lock:
                    await self.flush()
            """
        assert codes_at(snippet, SERVE_PATH, select=self.SELECT) \
            == [("ASY003", 3)]

    def test_await_under_fresh_threading_lock_fires(self):
        snippet = """\
            import threading

            async def update(shared):
                with threading.Lock():
                    await shared.flush()
            """
        assert codes(snippet, SERVE_PATH, select=self.SELECT) == ["ASY003"]

    def test_async_with_asyncio_lock_is_silent(self):
        snippet = """\
            async def update(self):
                async with self._lock:
                    await self.flush()
            """
        assert codes(snippet, SERVE_PATH, select=self.SELECT) == []

    def test_sync_with_without_await_is_silent(self):
        snippet = """\
            async def snapshot(self):
                with self._lock:
                    return dict(self._state)
            """
        assert codes(snippet, SERVE_PATH, select=self.SELECT) == []

    def test_non_lock_context_manager_is_silent(self):
        snippet = """\
            async def fetch(self, session):
                with session.span("fetch"):
                    await session.pull()
            """
        assert codes(snippet, SERVE_PATH, select=self.SELECT) == []

    def test_await_in_nested_function_is_not_the_locks_await(self):
        snippet = """\
            async def update(self):
                with self._lock:
                    async def later():
                        await self.flush()
                    self._later = later
            """
        assert codes(snippet, SERVE_PATH, select=self.SELECT) == []


class TestAsy004SharedMutableState:
    def test_module_global_dict_store_fires(self):
        snippet = """\
            _cache = {}

            def remember(key, value):
                _cache[key] = value
            """
        assert codes_at(snippet, SERVE_PATH) == [("ASY004", 4)]

    def test_module_global_list_append_fires(self):
        snippet = """\
            _journal = []

            async def record(entry):
                _journal.append(entry)
            """
        assert codes(snippet, SERVE_PATH) == ["ASY004"]

    def test_global_rebind_fires(self):
        snippet = """\
            _requests_seen = 0

            def bump():
                global _requests_seen
                _requests_seen += 1
            """
        assert codes(snippet, OBS_PATH) == ["ASY004"]

    def test_read_only_module_constant_is_silent(self):
        snippet = """\
            _defaults = {"ttl": 300}

            def ttl_for(tenant):
                return _defaults["ttl"]
            """
        assert codes(snippet, SERVE_PATH) == []

    def test_out_of_scope_package_is_silent(self):
        snippet = """\
            _cache = {}

            def remember(key, value):
                _cache[key] = value
            """
        assert codes(snippet, SIM_PATH) == []


class TestAsy005ServeWallClock:
    def test_monotonic_call_in_serve_fires(self):
        snippet = """\
            import time

            def idle_for(self):
                return time.monotonic() - self.last_seen
            """
        assert codes(snippet, SERVE_PATH) == ["ASY005"]

    def test_injectable_clock_default_reference_is_legal(self):
        snippet = """\
            import time

            def __init__(self, clock=None):
                self._clock = clock if clock is not None else time.monotonic
            """
        assert codes(snippet, SERVE_PATH) == []

    def test_obs_owns_real_time_measurement(self):
        snippet = """\
            import time

            def span_start(self):
                return time.perf_counter()
            """
        assert codes(snippet, OBS_PATH) == []

    def test_orchestrator_timers_stay_legal(self):
        snippet = """\
            import time

            def elapsed(start):
                return time.perf_counter() - start
            """
        assert codes(snippet, ORCH_PATH) == []


class TestAsy006LoopAmbientApi:
    def test_get_event_loop_fires_everywhere(self):
        snippet = """\
            import asyncio

            def runner():
                return asyncio.get_event_loop()
            """
        for path in (SERVE_PATH, ORCH_PATH, TEST_PATH):
            assert codes(snippet, path) == ["ASY006"]

    def test_aliased_get_event_loop_fires(self):
        snippet = """\
            from asyncio import get_event_loop as gel

            def runner():
                return gel()
            """
        assert codes(snippet, TEST_PATH) == ["ASY006"]

    def test_get_running_loop_is_the_blessed_api(self):
        snippet = """\
            import asyncio

            async def here():
                return asyncio.get_running_loop()
            """
        assert codes(snippet, SERVE_PATH) == []


# -- import-alias resolution (the classification substrate) ------------------


def _resolve(source, expr, path=SERVE_PATH):
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    ctx = LintContext(path, source, tree)
    return ctx.resolve_name(ast.parse(expr, mode="eval").body)


class TestImportAliasResolution:
    def test_module_alias_chain(self):
        assert _resolve("import numpy as np\n", "np.random.seed") \
            == "numpy.random.seed"

    def test_from_import_with_asname(self):
        assert _resolve("from time import sleep as pause\n", "pause") \
            == "time.sleep"

    def test_from_import_asname_attribute_chain(self):
        assert _resolve("from os import path as p\n", "p.join") \
            == "os.path.join"

    def test_dotted_module_alias(self):
        assert _resolve("import os.path as osp\n", "osp.join") \
            == "os.path.join"

    def test_dotted_import_binds_top_level_name(self):
        assert _resolve("import asyncio.events\n",
                        "asyncio.events.get_event_loop") \
            == "asyncio.events.get_event_loop"

    def test_relative_import_never_aliases_stdlib(self):
        # ``from .compat import sleep`` must NOT make ``sleep`` look
        # like ``time.sleep``: a relative import is project code.
        assert _resolve("from .compat import sleep\n", "sleep") == "sleep"
        assert _resolve("from . import helpers\n", "helpers.run") \
            == "helpers.run"

    def test_unimported_name_resolves_to_itself(self):
        assert _resolve("x = 1\n", "open") == "open"

    def test_call_base_is_unresolvable(self):
        assert _resolve("x = 1\n", "factory().attr") is None

    def test_asy001_fires_through_module_alias(self):
        snippet = """\
            import time as t

            async def worker():
                t.sleep(1)
            """
        assert codes(snippet, SERVE_PATH) == ["ASY001"]

    def test_asy001_fires_through_from_import_asname(self):
        snippet = """\
            from time import sleep as pause

            async def worker():
                pause(1)
            """
        assert codes(snippet, SERVE_PATH) == ["ASY001"]

    def test_relative_sleep_is_not_a_false_positive(self):
        snippet = """\
            from .virtual_time import sleep

            async def worker():
                sleep(1)
            """
        assert codes(snippet, SERVE_PATH) == []


# -- shared finding schema ----------------------------------------------------


class TestFindingsSchema:
    def test_payload_shape_and_family_counts(self):
        findings = [
            Finding("a.py", 1, 0, "ASY001", "m1"),
            Finding("a.py", 2, 0, "ASY002", "m2"),
            Finding("b.py", 3, 0, "REP001", "m3"),
        ]
        payload = findings_payload(findings, tool="lint")
        assert payload["schema"] == FINDINGS_SCHEMA
        assert payload["tool"] == "lint"
        assert payload["clean"] is False
        assert payload["counts_by_code"] == {
            "ASY001": 1, "ASY002": 1, "REP001": 1,
        }
        assert payload["counts_by_family"] == {"ASY": 2, "REP": 1}
        assert [f["code"] for f in payload["findings"]] \
            == ["ASY001", "ASY002", "REP001"]

    def test_lint_json_carries_the_shared_schema(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import asyncio\n\n"
            "async def f(coro):\n"
            "    asyncio.create_task(coro)\n"
        )
        out = io.StringIO()
        assert main(["lint", str(bad), "--json"], out=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["schema"] == FINDINGS_SCHEMA
        assert payload["tool"] == "lint"
        assert payload["counts_by_family"] == {"ASY": 1}

    def test_human_report_names_families(self):
        report = LintReport(findings=[
            Finding("a.py", 1, 0, "ASY001", "m1"),
            Finding("b.py", 1, 0, "REP004", "m2"),
        ], files_scanned=2)
        text = format_human(report)
        assert "findings by family: ASY 1, REP 1" in text

    def test_async_flag_selects_the_family(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        out = io.StringIO()
        # Only a REP violation present: the async-only view is clean.
        assert main(["lint", str(bad), "--async"], out=out) == 0
        assert main(["lint", str(bad)], out=out) == 1

    def test_async_flag_conflicts_with_select(self, tmp_path):
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n")
        out = io.StringIO()
        assert main(
            ["lint", str(good), "--async", "--select", "REP001"], out=out
        ) == 2


# -- runtime sanitizer --------------------------------------------------------


class TestLoopSanitizer:
    def test_catches_blocked_loop(self):
        with loop_sanitizer(slow_callback_s=0.05) as armed:
            async def blocker():
                # repro: noqa[ASY001] deliberate stall: sanitizer must see it
                time.sleep(0.2)

            asyncio.run(blocker())
        assert [f.code for f in armed.findings] == [SLOW_CALLBACK_CODE]
        assert "blocked" in armed.findings[0].message

    def test_clean_coroutine_produces_no_findings(self):
        with loop_sanitizer(slow_callback_s=0.05) as armed:
            async def polite():
                await asyncio.sleep(0)

            asyncio.run(polite())
        assert armed.findings == []

    def test_catches_task_destroyed_while_pending(self):
        with loop_sanitizer() as armed:
            loop = asyncio.new_event_loop()
            try:
                task = loop.create_task(asyncio.sleep(60))
                loop.run_until_complete(asyncio.sleep(0))
            finally:
                loop.close()
            del task
            gc.collect()
        assert PENDING_TASK_CODE in [f.code for f in armed.findings]

    def test_threshold_env_parsing(self, monkeypatch):
        monkeypatch.delenv(ENV_THRESHOLD_MS, raising=False)
        assert threshold_from_env() == pytest.approx(0.25)
        monkeypatch.setenv(ENV_THRESHOLD_MS, "100")
        assert threshold_from_env() == pytest.approx(0.1)
        monkeypatch.setenv(ENV_THRESHOLD_MS, "junk")
        assert threshold_from_env() == pytest.approx(0.25)

    def test_findings_stream_to_the_out_file(self, tmp_path, monkeypatch):
        stream = tmp_path / "findings.jsonl"
        monkeypatch.setenv(ENV_OUT, str(stream))
        with loop_sanitizer(slow_callback_s=0.05):
            async def blocker():
                # repro: noqa[ASY001] deliberate stall: sanitizer must see it
                time.sleep(0.2)

            asyncio.run(blocker())
        lines = stream.read_text().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["code"] == SLOW_CALLBACK_CODE

    def test_policy_is_restored_on_exit(self):
        before = asyncio.get_event_loop_policy()
        with loop_sanitizer():
            assert asyncio.get_event_loop_policy() is not before
        assert asyncio.get_event_loop_policy() is before
