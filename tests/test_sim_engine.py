"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import Simulator, SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_fifo_order(self):
        sim = Simulator()
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_callback_args_passed(self):
        sim = Simulator()
        got = []
        sim.schedule(0.0, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]

    def test_events_scheduled_from_callbacks(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth:
                sim.schedule(1.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0

    def test_later_events_survive_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run(until=10.0)
        assert fired == ["b"]

    def test_run_until_exact_event_time_includes_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "x")
        sim.run(until=2.0)
        assert fired == ["x"]

    def test_run_until_past_rejected(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run(until=3.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_run_empty_queue_advances_clock_to_until(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(0.0, reenter)
        sim.run()
        assert len(errors) == 1


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_count == 1

    def test_events_processed_counts_only_fired(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        cancelled = sim.schedule(2.0, lambda: None)
        cancelled.cancel()
        sim.run()
        assert sim.events_processed == 1


class TestStepAndClear:
    def test_step_processes_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step()
        assert fired == ["a"]

    def test_step_on_empty_queue_returns_false(self):
        assert not Simulator().step()

    def test_step_skips_cancelled(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        event.cancel()
        assert sim.step()
        assert fired == ["b"]

    def test_clear_drops_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.clear()
        sim.run()
        assert fired == []
