"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import Simulator, SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_fifo_order(self):
        sim = Simulator()
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_callback_args_passed(self):
        sim = Simulator()
        got = []
        sim.schedule(0.0, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]

    def test_events_scheduled_from_callbacks(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth:
                sim.schedule(1.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0

    def test_later_events_survive_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run(until=10.0)
        assert fired == ["b"]

    def test_run_until_exact_event_time_includes_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "x")
        sim.run(until=2.0)
        assert fired == ["x"]

    def test_run_until_past_rejected(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run(until=3.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_run_empty_queue_advances_clock_to_until(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(0.0, reenter)
        sim.run()
        assert len(errors) == 1


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_count == 1

    def test_events_processed_counts_only_fired(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        cancelled = sim.schedule(2.0, lambda: None)
        cancelled.cancel()
        sim.run()
        assert sim.events_processed == 1


class TestStepAndClear:
    def test_step_processes_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step()
        assert fired == ["a"]

    def test_step_on_empty_queue_returns_false(self):
        assert not Simulator().step()

    def test_step_skips_cancelled(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        event.cancel()
        assert sim.step()
        assert fired == ["b"]

    def test_clear_drops_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.clear()
        sim.run()
        assert fired == []


class TestScheduleTimeGuards:
    """Non-finite timestamps must be rejected, not silently enqueued.

    ``time < now`` is False for NaN, so a plain in-the-past check waves
    NaN through — and a NaN timestamp poisons heap ordering for every
    event scheduled after it.
    """

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_schedule_at_non_finite_rejected(self, bad):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_at(bad, lambda: None)
        assert sim.pending_count == 0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_schedule_non_finite_delay_rejected(self, bad):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(bad, lambda: None)
        assert sim.pending_count == 0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_wheel_backend_rejects_non_finite_too(self, bad):
        sim = Simulator(wheel_slot_s=1.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(bad, lambda: None)
        assert sim.pending_count == 0


class TestPendingCountLiveCounter:
    """pending_count is a live O(1) counter, exact under cancel/fire/clear."""

    def test_schedule_increments_and_fire_decrements(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_count == 2
        sim.step()
        assert sim.pending_count == 1
        sim.run()
        assert sim.pending_count == 0

    def test_cancel_decrements_immediately(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_count == 1

    def test_double_cancel_decrements_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_count == 0

    def test_clear_resets_counter_and_marks_handles(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.clear()
        assert sim.pending_count == 0
        assert event.cancelled
        # A late cancel() of a cleared handle must not drive it negative.
        event.cancel()
        assert sim.pending_count == 0

    def test_cancel_after_fire_does_not_corrupt_counter(self):
        """A late cancel() of an already-fired handle must be a no-op."""
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        event.cancel()
        assert sim.pending_count == 0
        sim.schedule(3.0, lambda: None)
        assert sim.pending_count == 1

    def test_counter_matches_on_wheel_backend(self):
        sim = Simulator(wheel_slot_s=1.0)
        events = [sim.schedule(float(i), lambda: None) for i in range(5)]
        # One far beyond the wheel horizon (lands in the fallback heap).
        far = sim.schedule(10_000.0, lambda: None)
        assert sim.pending_count == 6
        events[3].cancel()
        far.cancel()
        assert sim.pending_count == 4
        sim.run()
        assert sim.pending_count == 0


class TestStepAndClearCounters:
    def test_step_across_cancelled_runs(self):
        """step() must discard arbitrarily long cancelled runs lazily."""
        sim = Simulator()
        fired = []
        cancelled = [sim.schedule(1.0 + i, lambda: None) for i in range(4)]
        sim.schedule(10.0, fired.append, "live")
        for event in cancelled:
            event.cancel()
        assert sim.step()
        assert fired == ["live"]
        assert sim.now == 10.0
        assert sim.events_cancelled == 4
        assert sim.events_processed == 1
        assert not sim.step()

    def test_clear_does_not_count_as_lazy_cancellations(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.clear()
        sim.run()
        # events_cancelled only counts lazy pop-time discards.
        assert sim.events_cancelled == 0
        assert sim.events_processed == 0

    def test_clear_preserves_processed_count(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(1.0, lambda: None)
        sim.clear()
        assert sim.events_processed == 1

    def test_clear_on_wheel_drops_buckets_and_far_heap(self):
        sim = Simulator(wheel_slot_s=1.0)
        near = sim.schedule(0.5, lambda: None)
        later = sim.schedule(50.0, lambda: None)
        far = sim.schedule(10_000.0, lambda: None)
        sim.clear()
        assert sim.pending_count == 0
        assert near.cancelled and later.cancelled and far.cancelled
        sim.run()
        assert sim.events_processed == 0


class TestWheelHeapEquivalence:
    """The time wheel must fire the identical (time, seq) sequence the
    heap fires, under randomized mixes of periodic timers, aperiodic
    one-shots (including far-future ones beyond the wheel horizon),
    same-timestamp ties, mid-callback scheduling, and cancellations."""

    @staticmethod
    def _scenario(seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        oneshots = [
            (float(rng.uniform(0.0, 400.0)), "one-%d" % i)
            for i in range(int(rng.integers(5, 25)))
        ]
        # A clump of exact ties exercises FIFO ordering inside one slot.
        tie_time = float(rng.uniform(0.0, 50.0))
        oneshots += [(tie_time, "tie-%d" % i) for i in range(3)]
        periodics = [
            (
                float(rng.uniform(0.0, 10.0)),       # start delay
                float(rng.uniform(0.05, 7.0)),       # period
                int(rng.integers(3, 40)),            # fires
                "per-%d" % i,
            )
            for i in range(int(rng.integers(2, 6)))
        ]
        # chains: when `src` fires, schedule a follow-up `delta` later
        # (tests inserts into the active slot and into future buckets).
        chains = {
            "one-%d" % int(rng.integers(0, 5)): float(rng.uniform(0.0, 30.0))
            for _ in range(3)
        }
        # cancels: when `src` fires, cancel the handle of `victim`.
        cancels = {
            "per-0": "one-0",
            "one-1": "per-1",
        }
        return oneshots, periodics, chains, cancels

    @classmethod
    def _run(cls, seed, wheel_slot_s):
        oneshots, periodics, chains, cancels = cls._scenario(seed)
        sim = Simulator(wheel_slot_s=wheel_slot_s)
        log = []
        handles = {}

        def fire(tag):
            log.append((sim.now, tag))
            delta = chains.get(tag)
            if delta is not None:
                sub = "%s+sub" % tag
                handles[sub] = sim.schedule(delta, fire, sub)
            victim = cancels.get(tag)
            if victim is not None:
                handle = handles.get(victim)
                if handle is not None:
                    handle.cancel()

        def periodic(tag, period, remaining):
            log.append((sim.now, tag))
            if remaining > 1:
                handles[tag] = sim.schedule(
                    period, periodic, tag, period, remaining - 1
                )

        for time, tag in oneshots:
            handles[tag] = sim.schedule_at(time, fire, tag)
        # One event far beyond the wheel horizon (fallback-heap path).
        handles["far"] = sim.schedule_at(9_999.0, fire, "far")
        for delay, period, fires, tag in periodics:
            handles[tag] = sim.schedule(delay, periodic, tag, period, fires)
        sim.run()
        return log, sim.events_processed, sim.pending_count

    @pytest.mark.parametrize("seed", range(8))
    def test_firing_sequence_identical(self, seed):
        heap_log, heap_n, heap_pending = self._run(seed, None)
        for slot in (0.25, 1.0, 7.3):
            wheel_log, wheel_n, wheel_pending = self._run(seed, slot)
            assert wheel_log == heap_log
            assert wheel_n == heap_n
            assert wheel_pending == heap_pending == 0
