"""Tests for the multi-seed analysis package."""

import numpy as np
import pytest

from repro.analysis.seeds import compare_scenarios, run_seed_sweep
from repro.analysis.stats import (
    ConfidenceInterval,
    mean_confidence_interval,
    welch_t_test,
)
from repro.core.config import CoCoAConfig, LocalizationMode
from repro.experiments.runner import SharedCalibration


class TestConfidenceInterval:
    def test_basic_interval(self):
        ci = mean_confidence_interval([10.0, 12.0, 11.0, 9.0, 13.0])
        assert ci.mean == pytest.approx(11.0)
        assert ci.low < 11.0 < ci.high
        assert ci.contains(11.0)
        assert ci.n == 5

    def test_tighter_with_more_samples(self):
        rng = np.random.default_rng(1)
        few = mean_confidence_interval(rng.normal(10, 2, size=5))
        many = mean_confidence_interval(rng.normal(10, 2, size=100))
        assert many.half_width < few.half_width

    def test_zero_variance(self):
        ci = mean_confidence_interval([5.0, 5.0, 5.0])
        assert ci.low == ci.high == ci.mean == 5.0

    def test_higher_confidence_is_wider(self):
        data = [1.0, 2.0, 3.0, 4.0]
        narrow = mean_confidence_interval(data, confidence=0.80)
        wide = mean_confidence_interval(data, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=1.0)

    def test_str_format(self):
        text = str(mean_confidence_interval([10.0, 12.0]))
        assert "+/-" in text and "n=2" in text


class TestWelch:
    def test_distinguishes_different_means(self):
        rng = np.random.default_rng(2)
        a = rng.normal(10.0, 1.0, size=20)
        b = rng.normal(15.0, 1.0, size=20)
        t_stat, p_value = welch_t_test(a, b)
        assert p_value < 0.001
        assert t_stat < 0

    def test_same_distribution_large_p(self):
        rng = np.random.default_rng(3)
        a = rng.normal(10.0, 1.0, size=20)
        b = rng.normal(10.0, 1.0, size=20)
        _, p_value = welch_t_test(a, b)
        assert p_value > 0.01

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [2.0, 3.0])


def sweep_config(**overrides):
    defaults = dict(
        n_robots=14,
        n_anchors=7,
        beacon_period_s=30.0,
        duration_s=95.0,
        calibration_samples=30_000,
    )
    defaults.update(overrides)
    return CoCoAConfig(**defaults)


class TestSeedSweep:
    @pytest.fixture(scope="class")
    def cal(self):
        return SharedCalibration()

    def test_sweep_aggregates(self, cal):
        result = run_seed_sweep(
            sweep_config(), seeds=(1, 2, 3), calibration=cal
        )
        assert len(result.error_time_averages_m) == 3
        assert len(result.energy_totals_j) == 3
        assert result.error_ci.n == 3
        assert result.best_seed_error_m <= result.error_ci.mean
        assert result.worst_seed_error_m >= result.error_ci.mean
        assert result.relative_spread >= 0.0

    def test_seeds_produce_different_worlds(self, cal):
        result = run_seed_sweep(
            sweep_config(), seeds=(1, 2, 3), calibration=cal
        )
        assert len(set(result.error_time_averages_m)) == 3

    def test_requires_two_seeds(self, cal):
        with pytest.raises(ValueError):
            run_seed_sweep(sweep_config(), seeds=(1,), calibration=cal)

    def test_compare_scenarios(self, cal):
        cocoa = run_seed_sweep(
            sweep_config(), seeds=(1, 2, 3), calibration=cal
        )
        rf = run_seed_sweep(
            sweep_config(localization_mode=LocalizationMode.RF_ONLY),
            seeds=(1, 2, 3),
            calibration=cal,
        )
        comparison = compare_scenarios(cocoa, rf)
        # CoCoA is more accurate than RF-only on average.
        assert comparison["mean_difference_m"] < 0
        assert 0.0 <= comparison["p_value"] <= 1.0
