"""Tests for the fault-injection layer and graceful-degradation defenses.

The load-bearing guarantee is bit-identity: a disabled fault plan (and a
zero-scaled one) must leave every simulation draw untouched, so baseline
results never move when the faults package is present.  On top of that,
the defense mechanics are exercised one by one: CRC drops corrupted
beacons before the estimator sees them, the gate and quarantine reject
inconsistent anchors, and the watchdog restores a poisoned posterior.
"""

import numpy as np
import pytest

from repro.core.config import CoCoAConfig, LocalizationMode
from repro.core.estimator import PositionEstimator
from repro.core.team import CoCoATeam
from repro.experiments.resilience import (
    DEFENDED_DEFAULTS,
    example_fault_plan,
)
from repro.faults.models import (
    BrownoutGenerator,
    GilbertElliottChannel,
    PayloadCorrupter,
    flip_float_bit,
)
from repro.faults.spec import (
    BrownoutSpec,
    BurstInterferenceSpec,
    DefenseConfig,
    FaultPlan,
    PayloadCorruptionSpec,
    RssiBiasSpec,
)
from repro.net.packet import Packet
from repro.util.geometry import Rect, Vec2


def small_config(**overrides):
    defaults = dict(
        n_robots=16,
        n_anchors=6,
        beacon_period_s=30.0,
        duration_s=155.0,
        master_seed=7,
        calibration_samples=30_000,
    )
    defaults.update(overrides)
    return CoCoAConfig(**defaults)


class TestSpecValidation:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            BurstInterferenceSpec(bad_loss_prob=1.5)
        with pytest.raises(ValueError):
            BurstInterferenceSpec(mean_good_s=0.0)
        with pytest.raises(ValueError):
            RssiBiasSpec(bias_std_db=-1.0)
        with pytest.raises(ValueError):
            PayloadCorruptionSpec(corrupt_prob=-0.1)
        with pytest.raises(ValueError):
            BrownoutSpec(rate_per_hour=-1.0)
        with pytest.raises(ValueError):
            BrownoutSpec(rate_per_hour=1.0, mean_duration_s=0.0)
        with pytest.raises(ValueError):
            DefenseConfig(anchor_expiry_s=-5.0)

    def test_default_plan_is_noop(self):
        assert FaultPlan().is_noop()
        assert DefenseConfig().is_noop()

    def test_any_enabled_fault_breaks_noop(self):
        assert not FaultPlan(
            burst=BurstInterferenceSpec(bad_loss_prob=0.1)
        ).is_noop()
        assert not FaultPlan(
            rssi_bias=RssiBiasSpec(bias_std_db=1.0)
        ).is_noop()
        assert not FaultPlan(
            corruption=PayloadCorruptionSpec(corrupt_prob=0.1)
        ).is_noop()
        assert not FaultPlan(
            brownout=BrownoutSpec(rate_per_hour=1.0)
        ).is_noop()

    def test_zero_magnitude_specs_stay_noop(self):
        """Specs with rates but zero magnitudes can never fire."""
        plan = FaultPlan(
            burst=BurstInterferenceSpec(
                mean_good_s=10.0, mean_bad_s=5.0,
                bad_loss_prob=0.0, bad_noise_db=0.0,
            ),
            rssi_bias=RssiBiasSpec(fraction_affected=1.0),
            brownout=BrownoutSpec(rate_per_hour=0.0),
        )
        assert plan.is_noop()

    def test_scaling_is_linear_and_saturates(self):
        plan = FaultPlan(
            burst=BurstInterferenceSpec(
                bad_loss_prob=0.4, bad_noise_db=6.0
            ),
            rssi_bias=RssiBiasSpec(bias_std_db=2.0, drift_db_per_min=1.0),
            corruption=PayloadCorruptionSpec(corrupt_prob=0.6),
            brownout=BrownoutSpec(rate_per_hour=10.0),
        )
        half = plan.scaled(0.5)
        assert half.burst.bad_loss_prob == pytest.approx(0.2)
        assert half.rssi_bias.bias_std_db == pytest.approx(1.0)
        assert half.corruption.corrupt_prob == pytest.approx(0.3)
        assert half.brownout.rate_per_hour == pytest.approx(5.0)
        double = plan.scaled(3.0)
        assert double.burst.bad_loss_prob == 1.0
        assert double.corruption.corrupt_prob == 1.0
        assert plan.scaled(0.0).is_noop()
        with pytest.raises(ValueError):
            plan.scaled(-1.0)

    def test_node_ids_normalized_and_targeting(self):
        plan = FaultPlan(node_ids=(5, 1, 5, 3))
        assert plan.node_ids == (1, 3, 5)
        assert plan.targets(3) and not plan.targets(2)
        assert FaultPlan().targets(99)
        with pytest.raises(ValueError):
            FaultPlan(node_ids=(-1,))

    def test_example_plan_intensity_zero_is_noop(self):
        assert example_fault_plan(0.0).is_noop()
        assert example_fault_plan(-1.0).is_noop()
        assert not example_fault_plan(0.5).is_noop()


class TestFaultModels:
    def test_gilbert_elliott_deterministic(self):
        spec = BurstInterferenceSpec(
            mean_good_s=5.0, mean_bad_s=2.0,
            bad_loss_prob=0.5, bad_noise_db=3.0,
        )
        times = [0.1 * k for k in range(400)]
        a = GilbertElliottChannel(spec, np.random.default_rng(9))
        b = GilbertElliottChannel(spec, np.random.default_rng(9))
        assert [a.offer(t) for t in times] == [b.offer(t) for t in times]
        assert a.bad_time_entered > 0

    def test_gilbert_elliott_verdicts(self):
        spec = BurstInterferenceSpec(
            mean_good_s=5.0, mean_bad_s=5.0,
            bad_loss_prob=0.5, bad_noise_db=3.0,
        )
        channel = GilbertElliottChannel(spec, np.random.default_rng(3))
        verdicts = {channel.offer(0.5 * k) for k in range(1000)}
        # All three outcomes occur: clean, jammed, elevated noise floor.
        assert verdicts == {0.0, None, 3.0}

    def test_brownout_windows_toggle(self):
        spec = BrownoutSpec(rate_per_hour=120.0, mean_duration_s=20.0)
        generator = BrownoutGenerator(spec, np.random.default_rng(4))
        states = [generator.is_deaf(float(t)) for t in range(3600)]
        assert any(states) and not all(states)
        assert generator.windows_entered >= 1

    def test_brownout_unaffected_node_never_deaf(self):
        spec = BrownoutSpec(
            rate_per_hour=120.0, mean_duration_s=20.0,
            fraction_affected=0.0,
        )
        generator = BrownoutGenerator(spec, np.random.default_rng(4))
        assert not any(generator.is_deaf(float(t)) for t in range(3600))

    def test_flip_float_bit_is_involutive(self):
        for value in (1.0, -3.75, 123.456):
            for bit in (51, 52):
                flipped = flip_float_bit(value, bit)
                assert flipped != value
                assert flip_float_bit(flipped, bit) == value

    def test_corrupter_displacement_is_large_but_finite(self):
        from repro.core.beaconing import BeaconPayload

        corrupter = PayloadCorrupter(1.0, np.random.default_rng(5))
        original = BeaconPayload(anchor_id=1, x=120.0, y=80.0)
        for _ in range(50):
            damaged = corrupter.maybe_corrupt(original)
            assert damaged is not None
            moved = [
                (getattr(damaged, f), getattr(original, f))
                for f in ("x", "y")
                if getattr(damaged, f) != getattr(original, f)
            ]
            assert len(moved) == 1
            new, old = moved[0]
            assert np.isfinite(new)
            # One flipped high-mantissa/low-exponent bit moves the
            # coordinate by 25-100% of its magnitude.
            assert 0.2 <= abs(new - old) / abs(old) <= 1.0

    def test_corrupter_passes_through(self):
        rng = np.random.default_rng(6)
        assert PayloadCorrupter(0.0, rng).maybe_corrupt(object()) is None
        # Probability 1 but nothing to damage: opaque payloads survive.
        assert PayloadCorrupter(1.0, rng).maybe_corrupt("raw") is None


class TestPacketCrc:
    def test_fresh_packet_checks_out(self):
        from repro.core.beaconing import BeaconPayload

        packet = Packet(
            src=1, kind="beacon",
            payload=BeaconPayload(anchor_id=1, x=10.0, y=20.0),
            payload_bytes=20,
        )
        assert packet.crc_ok

    def test_damaged_copy_fails_crc(self):
        from repro.core.beaconing import BeaconPayload

        packet = Packet(
            src=1, kind="beacon",
            payload=BeaconPayload(anchor_id=1, x=10.0, y=20.0),
            payload_bytes=20,
        )
        damaged = packet.damaged_copy(
            BeaconPayload(anchor_id=1, x=10.0, y=21.0)
        )
        assert not damaged.crc_ok
        assert damaged.payload_crc == packet.payload_crc
        assert damaged.uid == packet.uid


class TestZeroIntensityBitIdentity:
    """Enabled-but-zero faults must not move a single RNG draw."""

    def test_noop_plan_builds_no_injector(self, pdf_table):
        team = CoCoATeam(small_config(), pdf_table=pdf_table)
        assert team.faults is None

    def test_zero_magnitude_plan_bit_identical_to_baseline(self, pdf_table):
        baseline = CoCoATeam(small_config(), pdf_table=pdf_table).run()
        zeroed = CoCoATeam(
            small_config(
                faults=FaultPlan(
                    burst=BurstInterferenceSpec(
                        mean_good_s=10.0, mean_bad_s=5.0
                    ),
                    brownout=BrownoutSpec(rate_per_hour=0.0),
                )
            ),
            pdf_table=pdf_table,
        ).run()
        assert baseline.errors.tolist() == zeroed.errors.tolist()
        assert baseline.total_energy_j() == zeroed.total_energy_j()
        assert baseline.beacons_sent == zeroed.beacons_sent

    def test_faulted_run_differs_from_baseline(self, pdf_table):
        baseline = CoCoATeam(small_config(), pdf_table=pdf_table).run()
        faulted = CoCoATeam(
            small_config(faults=example_fault_plan(1.0)),
            pdf_table=pdf_table,
        ).run()
        assert baseline.errors.tolist() != faulted.errors.tolist()


class TestCrcDefense:
    PLAN = FaultPlan(corruption=PayloadCorruptionSpec(corrupt_prob=0.9))

    def test_corrupted_beacons_never_reach_estimator(self, pdf_table):
        """With CRC on, damaged frames die at the link layer."""
        result = CoCoATeam(
            small_config(
                faults=self.PLAN,
                defenses=DefenseConfig(crc_check=True),
            ),
            pdf_table=pdf_table,
        ).run()
        assert result.channel_stats.frames_crc_dropped > 0
        assert result.channel_stats.frames_corrupted == 0

    def test_without_crc_corrupted_beacons_delivered(self, pdf_table):
        result = CoCoATeam(
            small_config(faults=self.PLAN), pdf_table=pdf_table
        ).run()
        assert result.channel_stats.frames_corrupted > 0
        assert result.channel_stats.frames_crc_dropped == 0

    def test_crc_defense_reduces_error_under_corruption(self, pdf_table):
        # Moderate corruption with enough anchors that dropping damaged
        # beacons never starves a window: the regime where the CRC
        # defense is a clear win (at very high corruption rates dropping
        # 90% of beacons starves windows and degrades more gracefully
        # *without* the checksum — see EXPERIMENTS.md).
        plan = FaultPlan(
            corruption=PayloadCorruptionSpec(corrupt_prob=0.4)
        )
        undefended = CoCoATeam(
            small_config(n_anchors=10, faults=plan), pdf_table=pdf_table
        ).run()
        defended = CoCoATeam(
            small_config(
                n_anchors=10,
                faults=plan,
                defenses=DefenseConfig(crc_check=True),
            ),
            pdf_table=pdf_table,
        ).run()
        assert (
            defended.time_average_error()
            < undefended.time_average_error()
        )


class TestEstimatorDefenses:
    AREA = Rect.square(200.0)

    def make(self, pdf_table, **kwargs):
        return PositionEstimator(
            LocalizationMode.RF_ONLY, self.AREA,
            pdf_table=pdf_table, min_beacons_for_fix=3, **kwargs
        )

    def _run_clean_window(self, est, table, t=0.0):
        """Three consistent beacons around the area center -> a fix."""
        center = self.AREA.center
        rssi = -65.0
        ring = table.bin_for(rssi).mean_m
        est.on_window_open()
        for k, angle in enumerate((0.0, 2.1, 4.2)):
            anchor = center + Vec2(
                ring * np.cos(angle), ring * np.sin(angle)
            )
            est.on_beacon(anchor, rssi, anchor_id=k, t=t)
        est.on_window_close()

    def test_gate_rejects_inconsistent_beacon(self, pdf_table):
        est = self.make(
            pdf_table, beacon_gate_sigma=1.0, beacon_gate_slack_m=0.0
        )
        self._run_clean_window(est, pdf_table)
        assert est.fixes == 1 and est.beacons_gated == 0
        # An anchor claiming to be hundreds of meters away while the
        # RSSI implies a short range is geometrically impossible.
        rssi = -65.0
        impossible = est.estimate + Vec2(500.0, 0.0)
        est.on_window_open()
        est.on_beacon(impossible, rssi, anchor_id=9, t=1.0)
        assert est.beacons_gated == 1
        assert est.filter.beacons_applied == 0

    def test_gate_disarmed_until_first_fix(self, pdf_table):
        est = self.make(
            pdf_table, beacon_gate_sigma=1.0, beacon_gate_slack_m=0.0
        )
        est.on_window_open()
        est.on_beacon(self.AREA.center + Vec2(500.0, 0.0), -65.0)
        # No fix yet: the gate must not judge beacons against the
        # uninformed initial estimate.
        assert est.beacons_gated == 0

    def test_quarantined_anchor_is_ignored_then_readmitted(self, pdf_table):
        est = self.make(pdf_table, anchor_expiry_s=60.0)
        est._raise_suspicion(5, t=0.0, amount=5.0)
        est.on_window_open()
        est.on_beacon(self.AREA.center, -65.0, anchor_id=5, t=1.0)
        assert est.beacons_quarantined == 1
        assert est.filter.beacons_applied == 0
        # Suspicion decays: a few time constants later the anchor is
        # trusted again.
        est.on_beacon(self.AREA.center, -65.0, anchor_id=5, t=400.0)
        assert est.beacons_quarantined == 1
        assert est.filter.beacons_applied == 1

    def test_nonfinite_beacon_always_dropped(self, pdf_table):
        est = self.make(pdf_table)
        est.on_window_open()
        est.on_beacon(Vec2(float("nan"), 10.0), -65.0)
        est.on_beacon(Vec2(10.0, 10.0), float("inf"))
        assert est.filter.beacons_applied == 0
        assert est.beacons_heard == 0

    def test_watchdog_resets_poisoned_posterior(self, pdf_table):
        est = self.make(pdf_table, watchdog=True)
        before = est.estimate
        est.on_window_open()
        est.filter._posterior.fill(float("nan"))
        est.on_window_close()
        assert est.watchdog_resets == 1
        assert est.fixes == 0
        assert est.estimate == before
        posterior = est.filter.posterior
        assert np.isfinite(posterior).all()
        assert posterior.sum() == pytest.approx(1.0)

    def test_watchdog_off_by_default(self, pdf_table):
        est = self.make(pdf_table)
        est.on_window_open()
        est.filter._posterior.fill(float("nan"))
        est.on_window_close()
        assert est.watchdog_resets == 0


class TestDegradationInvariants:
    """NaN from dead robots plus faults never leaks into aggregates."""

    def test_resilient_team_with_faults_stays_finite(self, pdf_table):
        from repro.ext.failures import FailureSchedule, ResilientTeam

        team = ResilientTeam(
            small_config(
                faults=example_fault_plan(1.0),
                defenses=DEFENDED_DEFAULTS,
            ),
            FailureSchedule.of((50.0, 10), (80.0, 12)),
            failover=True,
            pdf_table=pdf_table,
        )
        result = team.run()
        assert team.dead == {10, 12}
        assert np.isfinite(result.time_average_error())
        assert np.isfinite(result.mean_error_series()).all()

    def test_defended_profile_counters_move(self, pdf_table):
        result = CoCoATeam(
            small_config(
                faults=example_fault_plan(1.0),
                defenses=DEFENDED_DEFAULTS,
            ),
            pdf_table=pdf_table,
        ).run()
        assert result.channel_stats.frames_crc_dropped > 0
        assert np.isfinite(result.time_average_error())
