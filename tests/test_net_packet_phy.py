"""Unit tests for packet framing and the physical-layer model."""

import numpy as np
import pytest

from repro.net.packet import IP_HEADER_BYTES, UDP_HEADER_BYTES, Packet
from repro.net.phy import PathLossModel, ReceiverModel
from repro.sim.rng import RandomStreams


class TestPacket:
    def test_size_includes_both_headers(self):
        packet = Packet(src=1, kind="beacon", payload=None, payload_bytes=16)
        # The paper: IP and UDP headers, 20 bytes each, plus x/y payload.
        assert IP_HEADER_BYTES == 20
        assert UDP_HEADER_BYTES == 20
        assert packet.size_bytes == 56

    def test_uids_unique(self):
        a = Packet(src=1, kind="x", payload=None, payload_bytes=0)
        b = Packet(src=1, kind="x", payload=None, payload_bytes=0)
        assert a.uid != b.uid

    def test_origin_uid_defaults_to_uid(self):
        p = Packet(src=1, kind="x", payload=None, payload_bytes=0)
        assert p.origin_uid == p.uid

    def test_forwarded_copy_keeps_origin(self):
        p = Packet(src=1, kind="x", payload="body", payload_bytes=4, ttl=3)
        f = p.forwarded_by(2)
        assert f.src == 2
        assert f.origin_uid == p.uid
        assert f.uid != p.uid
        assert f.ttl == 2
        assert f.payload == "body"

    def test_forward_with_exhausted_ttl_rejected(self):
        p = Packet(src=1, kind="x", payload=None, payload_bytes=0, ttl=0)
        with pytest.raises(ValueError):
            p.forwarded_by(2)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=1, kind="x", payload=None, payload_bytes=-1)
        with pytest.raises(ValueError):
            Packet(src=1, kind="x", payload=None, payload_bytes=0, ttl=-1)


class TestPathLossModel:
    def test_mean_rssi_decreases_with_distance(self):
        model = PathLossModel()
        assert model.mean_rssi(10.0) > model.mean_rssi(50.0)
        assert model.mean_rssi(50.0) > model.mean_rssi(150.0)

    def test_paper_calibration_point(self):
        """-80 dBm corresponds to about 40 m (§2.2 verification)."""
        model = PathLossModel()
        assert model.mean_rssi(40.0) == pytest.approx(-80.0, abs=0.5)

    def test_distances_below_one_meter_clamped(self):
        model = PathLossModel()
        assert model.mean_rssi(0.01) == model.mean_rssi(1.0)

    def test_inverse_roundtrip(self):
        model = PathLossModel()
        for d in (2.0, 10.0, 40.0, 120.0):
            rssi = model.mean_rssi(d)
            assert model.distance_for_mean_rssi(rssi) == pytest.approx(d)

    def test_mean_rssi_vectorized(self):
        model = PathLossModel()
        d = np.array([1.0, 10.0, 100.0])
        result = model.mean_rssi(d)
        assert result.shape == (3,)
        assert result[0] == pytest.approx(model.rssi_at_1m_dbm)

    def test_sample_rssi_scalar_and_array(self):
        model = PathLossModel()
        rng = RandomStreams(1).get("phy")
        scalar = model.sample_rssi(10.0, rng)
        assert isinstance(scalar, float)
        arr = model.sample_rssi(np.full(100, 10.0), rng)
        assert arr.shape == (100,)

    def test_near_regime_noise_is_gaussian_scale(self):
        model = PathLossModel()
        rng = RandomStreams(1).get("phy")
        samples = model.sample_rssi(np.full(20000, 20.0), rng)
        residual = samples - model.mean_rssi(20.0)
        assert abs(float(np.mean(residual))) < 0.1
        assert float(np.std(residual)) == pytest.approx(
            model.gaussian_sigma_db, rel=0.05
        )

    def test_far_regime_has_negative_skew(self):
        """Deep fades beyond 40 m skew RSSI downward — the non-Gaussian
        regime of Figure 1(b)."""
        model = PathLossModel()
        rng = RandomStreams(1).get("phy")
        samples = model.sample_rssi(np.full(40000, 80.0), rng)
        residual = samples - model.mean_rssi(80.0)
        skew = float(
            np.mean((residual - residual.mean()) ** 3) / np.std(residual) ** 3
        )
        assert skew < -0.15

    def test_far_noise_wider_than_near(self):
        model = PathLossModel()
        rng = RandomStreams(2).get("phy")
        near = model.sample_rssi(np.full(20000, 20.0), rng)
        far = model.sample_rssi(np.full(20000, 80.0), rng)
        assert float(np.std(far)) > float(np.std(near))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PathLossModel(path_loss_exponent=0.0)
        with pytest.raises(ValueError):
            PathLossModel(far_fade_prob=1.5)
        with pytest.raises(ValueError):
            PathLossModel(gaussian_sigma_db=-1.0)


class TestReceiverModel:
    def test_decode_threshold(self):
        receiver = ReceiverModel()
        assert receiver.can_decode(receiver.sensitivity_dbm)
        assert not receiver.can_decode(receiver.sensitivity_dbm - 0.1)

    def test_carrier_sense_below_sensitivity(self):
        receiver = ReceiverModel()
        assert receiver.carrier_sense_dbm <= receiver.sensitivity_dbm
        assert receiver.senses_busy(receiver.carrier_sense_dbm)
        assert not receiver.senses_busy(receiver.carrier_sense_dbm - 0.1)

    def test_inconsistent_thresholds_rejected(self):
        with pytest.raises(ValueError):
            ReceiverModel(sensitivity_dbm=-95.0, carrier_sense_dbm=-90.0)

    def test_negative_capture_rejected(self):
        with pytest.raises(ValueError):
            ReceiverModel(capture_threshold_db=-1.0)

    def test_default_range_exceeds_100m(self):
        """With the default channel the usable range comfortably covers
        multi-hop operation over the 200 m arena."""
        model = PathLossModel()
        receiver = ReceiverModel()
        assert receiver.can_decode(model.mean_rssi(100.0))
        assert not receiver.can_decode(model.mean_rssi(160.0))
