"""Tests for the CSV export helpers."""

import csv

import numpy as np
import pytest

from repro.experiments.export import (
    export_cdf,
    export_error_series,
    export_summary_table,
    write_csv,
)


def read_csv(path):
    with open(path) as handle:
        return list(csv.reader(handle))


class TestWriteCsv:
    def test_writes_header_and_rows(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        rows = read_csv(path)
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2"]
        assert len(rows) == 3

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "out.csv")
        write_csv(path, ["x"], [[1]])
        assert read_csv(path)[0] == ["x"]

    def test_row_width_validated(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(str(tmp_path / "bad.csv"), ["a", "b"], [[1]])


class TestErrorSeries:
    def test_round_trip(self, tmp_path):
        times = np.arange(5.0)
        series = {
            "cocoa": {"times": times, "mean_error": times * 0.5},
            "rf": {"times": times, "mean_error": times * 2.0},
        }
        path = export_error_series(str(tmp_path / "fig7.csv"), series)
        rows = read_csv(path)
        assert rows[0] == ["time_s", "error_m_cocoa", "error_m_rf"]
        assert float(rows[2][1]) == pytest.approx(0.5)
        assert float(rows[2][2]) == pytest.approx(2.0)

    def test_mismatched_time_base_rejected(self, tmp_path):
        series = {
            "a": {"times": np.arange(5.0), "mean_error": np.zeros(5)},
            "b": {"times": np.arange(4.0), "mean_error": np.zeros(4)},
        }
        with pytest.raises(ValueError):
            export_error_series(str(tmp_path / "bad.csv"), series)

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_error_series(str(tmp_path / "bad.csv"), {})


class TestCdfExport:
    def test_pads_unequal_lengths(self, tmp_path):
        cdfs = {
            "early": {
                "cdf_x": np.array([1.0, 2.0, 3.0]),
                "cdf_y": np.array([0.3, 0.6, 1.0]),
            },
            "late": {
                "cdf_x": np.array([5.0]),
                "cdf_y": np.array([1.0]),
            },
        }
        path = export_cdf(str(tmp_path / "fig8.csv"), cdfs)
        rows = read_csv(path)
        assert len(rows) == 4  # header + 3 data rows
        assert rows[0][0] == "early_error_m"
        assert rows[3][2] == "nan"


class TestSummaryTable:
    def test_sweep_table(self, tmp_path):
        data = {
            10.0: {"err": 5.1, "ratio": 2.3},
            100.0: {"err": 10.6, "ratio": 8.1},
        }
        path = export_summary_table(
            str(tmp_path / "fig9.csv"), data, key_name="T_s"
        )
        rows = read_csv(path)
        assert rows[0] == ["T_s", "err", "ratio"]
        assert rows[1][0] == "10.0"

    def test_inconsistent_metrics_rejected(self, tmp_path):
        data = {1: {"a": 1.0}, 2: {"b": 2.0}}
        with pytest.raises(ValueError):
            export_summary_table(str(tmp_path / "bad.csv"), data)

    def test_integration_with_real_run(self, tmp_path, pdf_table):
        from repro.core.config import CoCoAConfig
        from repro.core.team import CoCoATeam

        config = CoCoAConfig(
            n_robots=10,
            n_anchors=5,
            beacon_period_s=20.0,
            duration_s=45.0,
            master_seed=4,
        )
        result = CoCoATeam(config, pdf_table=pdf_table).run()
        path = export_error_series(
            str(tmp_path / "run.csv"),
            {
                "cocoa": {
                    "times": result.times,
                    "mean_error": result.mean_error_series(),
                }
            },
        )
        rows = read_csv(path)
        assert len(rows) == len(result.times) + 1
