"""Tests for the §6 extensions: promotion, power control, geo-routing."""

import networkx as nx
import pytest

from repro.core.config import CoCoAConfig
from repro.core.team import CoCoATeam
from repro.ext.georouting import greedy_route, run_georouting_study
from repro.ext.power_control import run_power_sweep
from repro.ext.promotion import PromotionConfig, PromotionTeam
from repro.util.geometry import Vec2


def small_config(**overrides):
    defaults = dict(
        n_robots=20,
        n_anchors=6,
        beacon_period_s=30.0,
        duration_s=95.0,
        master_seed=7,
        calibration_samples=40_000,
    )
    defaults.update(overrides)
    return CoCoAConfig(**defaults)


class TestPromotionConfig:
    def test_defaults_valid(self):
        config = PromotionConfig()
        assert config.max_fix_std_m > 0
        assert config.k >= 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            PromotionConfig(max_fix_std_m=0.0)
        with pytest.raises(ValueError):
            PromotionConfig(k=0)


class TestPromotionTeam:
    def test_promoted_unknowns_beacon(self, pdf_table):
        team = PromotionTeam(
            small_config(), PromotionConfig(max_fix_std_m=30.0),
            pdf_table=pdf_table,
        )
        team.run()
        assert team.promotions > 0
        assert team.promoted_beacons_sent > 0

    def test_tight_gate_promotes_less(self, pdf_table):
        loose_team = PromotionTeam(
            small_config(), PromotionConfig(max_fix_std_m=50.0),
            pdf_table=pdf_table,
        )
        loose_team.run()
        tight_team = PromotionTeam(
            small_config(), PromotionConfig(max_fix_std_m=2.0),
            pdf_table=pdf_table,
        )
        tight_team.run()
        assert tight_team.promotions <= loose_team.promotions

    def test_unpromoted_matches_baseline_structure(self, pdf_table):
        """With an impossible gate the team behaves like plain CoCoA."""
        team = PromotionTeam(
            small_config(), PromotionConfig(max_fix_std_m=1e-6),
            pdf_table=pdf_table,
        )
        result = team.run()
        assert team.promoted_beacons_sent == 0
        baseline = CoCoATeam(small_config(), pdf_table=pdf_table).run()
        assert result.beacons_sent == baseline.beacons_sent


class TestPowerControl:
    def test_sweep_monotone_range(self, pdf_table):
        points = run_power_sweep(
            power_deltas_db=(-6.0, 6.0),
            base_config=small_config(n_anchors=10),
            duration_s=95.0,
        )
        low, high = points
        assert high.range_m > low.range_m
        assert high.power_delta_db == 6.0

    def test_energy_reflects_tx_scaling(self, pdf_table):
        points = run_power_sweep(
            power_deltas_db=(0.0, 6.0),
            base_config=small_config(n_anchors=10),
            duration_s=95.0,
        )
        # Higher power must not make the team cheaper.
        assert points[1].total_energy_j >= points[0].total_energy_j * 0.95


class TestGreedyRoute:
    def grid_graph(self):
        positions = {
            i + 4 * j: Vec2(40.0 * i, 40.0 * j)
            for i in range(4)
            for j in range(3)
        }
        graph = nx.Graph()
        graph.add_nodes_from(positions)
        for a in positions:
            for b in positions:
                if a < b and positions[a].distance_to(positions[b]) <= 45.0:
                    graph.add_edge(a, b)
        return graph, positions

    def test_routes_across_grid(self):
        graph, positions = self.grid_graph()
        path = greedy_route(graph, positions, 0, 11)
        assert path is not None
        assert path[0] == 0 and path[-1] == 11
        # Every hop is a real edge.
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)

    def test_source_equals_destination(self):
        graph, positions = self.grid_graph()
        assert greedy_route(graph, positions, 3, 3) == [3]

    def test_unknown_node_fails(self):
        graph, positions = self.grid_graph()
        assert greedy_route(graph, positions, 0, 99) is None

    def test_local_minimum_fails(self):
        # A 'void': destination reachable only by moving away from it.
        positions = {
            0: Vec2(0, 0),
            1: Vec2(0, 50),
            2: Vec2(50, 70),
            3: Vec2(10, 0),  # close to 0 in space, not connected toward it
        }
        graph = nx.Graph([(0, 1), (1, 2), (2, 3)])
        # From 0 toward 3: neighbor 1 is farther from 3 than 0 is.
        assert greedy_route(graph, positions, 0, 3) is None

    def test_bad_coordinates_can_break_routing(self):
        graph, positions = self.grid_graph()
        scrambled = dict(positions)
        # Corrupt an intermediate node's advertised position badly.
        scrambled[5] = Vec2(500.0, 500.0)
        ok = greedy_route(graph, positions, 0, 11)
        assert ok is not None

    def test_study_end_to_end(self):
        result = run_georouting_study(
            small_config(n_robots=25, n_anchors=12, duration_s=95.0),
            snapshot_times=(45.0, 80.0),
            pairs_per_snapshot=20,
        )
        assert result.attempts > 0
        assert 0.0 <= result.delivery_rate_estimated <= 1.0
        assert result.delivery_rate_true > 0.5

    def test_snapshot_beyond_duration_rejected(self):
        with pytest.raises(ValueError):
            run_georouting_study(
                small_config(duration_s=95.0), snapshot_times=(200.0,)
            )
