"""Chaos-harness tests: seeded schedules, and the crash-recovery gate.

The expensive end of this file is the actual gate: for three master
seeds, a recorded batch scenario is replayed through a **live TCP
server** while the schedule kills the shard worker, severs the
connection and evicts the session mid-stream — and every fix the
recovering service serves must still match the batch fix byte for byte.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.config import CoCoAConfig, LocalizationMode
from repro.serve import (
    ChaosEvent,
    ChaosReport,
    ChaosSchedule,
    ServeConfig,
    record_replay_log,
    run_chaos,
)
from repro.serve.chaos import FAULT_KINDS, SteppedClock
from repro.util.geometry import Rect

CHAOS_SEEDS = (1, 2, 3)


def _scenario(seed: int) -> CoCoAConfig:
    return CoCoAConfig(
        area=Rect.square(80.0),
        n_robots=6,
        n_anchors=5,
        beacon_period_s=20.0,
        duration_s=60.0,
        master_seed=seed,
        calibration_samples=2000,
        localization_mode=LocalizationMode.RF_ONLY,
    )


@pytest.fixture(scope="module")
def chaos_logs():
    """One recorded batch run per chaos seed (shared across the gate)."""
    logs = {}
    for seed in CHAOS_SEEDS:
        log, result = record_replay_log(_scenario(seed))
        assert result.fixes > 0, "chaos scenario must produce fixes"
        logs[seed] = log
    return logs


# -- schedules ----------------------------------------------------------------


def test_schedule_generation_is_seed_deterministic():
    first = ChaosSchedule.generate(seed=7, n_requests=100,
                                   kills=2, severs=3, evicts=2, delays=1)
    second = ChaosSchedule.generate(seed=7, n_requests=100,
                                    kills=2, severs=3, evicts=2, delays=1)
    assert first.events == second.events
    assert len(first.events) == 8
    other = ChaosSchedule.generate(seed=8, n_requests=100,
                                   kills=2, severs=3, evicts=2, delays=1)
    assert first.events != other.events


def test_schedule_positions_and_kinds_are_well_formed():
    schedule = ChaosSchedule.generate(seed=3, n_requests=50,
                                      kills=1, severs=2, evicts=1, delays=1)
    positions = [event.at_request for event in schedule.events]
    assert positions == sorted(positions)
    assert len(set(positions)) == len(positions)  # without replacement
    assert all(position >= 2 for position in positions)
    kinds = sorted(event.kind for event in schedule.events)
    assert kinds == ["delay", "evict", "kill_shard", "sever", "sever"]
    assert set(kinds) <= set(FAULT_KINDS)


def test_schedule_rejects_more_faults_than_slots():
    with pytest.raises(ValueError):
        ChaosSchedule.generate(seed=1, n_requests=3,
                               kills=2, severs=2, evicts=2, delays=2)
    empty = ChaosSchedule.generate(seed=1, n_requests=10,
                                   kills=0, severs=0, evicts=0, delays=0)
    assert empty.events == []


def test_schedule_for_log_covers_the_full_stream(chaos_logs):
    log = chaos_logs[1]
    schedule = ChaosSchedule.for_log(log, seed=1)
    assert schedule.events, "default schedule must carry faults"
    # The hello is request 1 and every log event is one request.
    assert max(e.at_request for e in schedule.events) <= len(log.events) + 1


def test_stepped_clock_advances_only_on_demand():
    clock = SteppedClock()
    assert clock() == 0.0
    clock.advance(2.5)
    clock.advance(0.5)
    assert clock() == 3.0


def test_chaos_event_is_frozen():
    event = ChaosEvent(at_request=5, kind="sever")
    with pytest.raises(Exception):
        event.kind = "delay"  # type: ignore[misc]


# -- the gate -----------------------------------------------------------------


def test_run_chaos_requires_durability_features(chaos_logs):
    log = chaos_logs[1]
    schedule = ChaosSchedule.for_log(log, seed=1)
    for broken in (
        ServeConfig(checkpointing=False),
        ServeConfig(supervise=False),
    ):
        with pytest.raises(ValueError):
            asyncio.run(run_chaos(log, schedule, config=broken))


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_recovered_fixes_match_batch_bytes(chaos_logs, seed, tmp_path):
    log = chaos_logs[seed]
    schedule = ChaosSchedule.for_log(log, seed=seed)
    log_path = tmp_path / ("chaos-%d.jsonl" % seed)
    report = asyncio.run(run_chaos(
        log, schedule, tenant="chaos-%d" % seed,
        chaos_log_path=str(log_path),
    ))
    assert isinstance(report, ChaosReport)
    assert report.problems == [], report.summary()
    assert report.faults_injected == report.faults_total == len(
        schedule.events
    )
    assert report.ok, report.summary()
    assert "PASS" in report.summary()
    assert report.closes_total == sum(
        1 for event in log.events if event["kind"] == "close"
    )
    # The chaos log is a readable JSONL artifact: header, journal, report.
    lines = [json.loads(line)
             for line in log_path.read_text().splitlines()]
    assert lines[0]["kind"] == "header" and lines[0]["seed"] == seed
    assert len(lines[0]["faults"]) == len(schedule.events)
    assert lines[-1]["kind"] == "report" and lines[-1]["ok"] is True
    assert any(line["kind"] == "fault" for line in lines)


def test_chaos_survives_a_heavier_schedule(chaos_logs):
    """More faults than the default: two kills, three severs, two evicts."""
    log = chaos_logs[2]
    schedule = ChaosSchedule.for_log(log, seed=42, kills=2, severs=3,
                                     evicts=2, delays=2)
    report = asyncio.run(run_chaos(log, schedule, tenant="chaos-heavy"))
    assert report.ok, report.summary()
    assert report.faults_injected == 9
    # The schedule really exercised recovery, not a quiet run.
    assert report.service["serve_checkpoints_saved"] > 0


# -- trace forensics ----------------------------------------------------------


class _FakeLog:
    """Just enough of a ReplayLog for the divergence comparison."""

    def __init__(self, events):
        self.events = events


def _close(robot, window, fixed=True, x="0x1.8p+4", y="0x1.2p+5"):
    event = {"kind": "close", "robot": robot, "window": window,
             "fixed": fixed}
    if fixed:
        event["x_hex"], event["y_hex"] = x, y
    return event


def test_first_divergent_trace_pinpoints_the_bad_fix():
    from repro.serve.chaos import _first_divergent_trace

    log = _FakeLog([_close(0, 0), _close(1, 0)])
    replayed = [
        {"robot": 0, "window": 0, "fixed": True, "x_hex": "0x1.8p+4",
         "y_hex": "0x1.2p+5", "trace": "chaos1-7"},
        {"robot": 1, "window": 0, "fixed": True, "x_hex": "0xd.eadp+0",
         "y_hex": "0x1.2p+5", "trace": "chaos1-9"},
    ]
    assert _first_divergent_trace(log, replayed) == "chaos1-9"
    # Byte-identical replay: nothing to report.
    replayed[1]["x_hex"] = "0x1.8p+4"
    assert _first_divergent_trace(log, replayed) is None
    # A missing fix diverges too (fixed flag flips).
    replayed[0]["fixed"] = False
    assert _first_divergent_trace(log, replayed) == "chaos1-7"


def test_chaos_run_records_traces_and_journal_ids(chaos_logs, tmp_path):
    """A passing chaos run still records every request's spans (tracing
    is forced to ``always``), stamps its journal with rid + trace, and
    dumps trace JSONL when asked."""
    log = chaos_logs[1]
    schedule = ChaosSchedule.for_log(log, seed=1)
    log_path = tmp_path / "chaos.jsonl"
    trace_path = tmp_path / "chaos_traces.jsonl"
    report = asyncio.run(run_chaos(
        log, schedule, tenant="chaos-traced",
        chaos_log_path=str(log_path),
        trace_log_path=str(trace_path),
    ))
    assert report.ok, report.summary()
    assert report.divergent_trace is None
    assert report.divergent_spans == []
    # Journal fault/retry entries carry the ids needed to pivot into
    # the trace recording.
    lines = [json.loads(line)
             for line in log_path.read_text().splitlines()]
    stamped = [line for line in lines
               if line["kind"] in ("window_retry", "hello")]
    assert stamped, "chaos run must journal hellos/retries"
    assert all("trace" in line and "rid" in line for line in stamped)
    spans = [json.loads(line)
             for line in trace_path.read_text().splitlines()]
    assert spans, "always-on tracing must record spans"
    assert {span["name"] for span in spans} >= {"request", "queue",
                                                "shard_service"}
    assert all(span["trace"].startswith("chaos1-") for span in spans)
