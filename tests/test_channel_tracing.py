"""Tests for channel-level tracing and RobotNode queries."""

import pytest

from repro.core.config import CoCoAConfig
from repro.core.team import CoCoATeam
from repro.energy.model import EnergyModel
from repro.mobility.base import StationaryMobility
from repro.net.channel import BroadcastChannel
from repro.net.interface import NetworkInterface
from repro.net.packet import Packet
from repro.net.phy import PathLossModel
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceLog
from repro.util.geometry import Vec2


def traced_network(categories):
    sim = Simulator()
    streams = RandomStreams(2)
    trace = TraceLog(categories)
    channel = BroadcastChannel(
        sim, PathLossModel(), streams.get("phy"), trace=trace
    )
    interfaces = [
        NetworkInterface(
            sim,
            i,
            StationaryMobility(pos),
            channel,
            EnergyModel.wavelan_2mbps(),
            streams.spawn("mac", i),
        )
        for i, pos in enumerate([Vec2(0, 0), Vec2(15, 0), Vec2(30, 0)])
    ]
    return sim, channel, interfaces, trace


class TestChannelTracing:
    def test_tx_and_rx_traced(self):
        sim, channel, interfaces, trace = traced_network(
            ["channel.tx", "channel.rx"]
        )
        interfaces[0].send_broadcast(
            Packet(src=0, kind="test", payload=None, payload_bytes=16)
        )
        sim.run(until=1.0)
        assert trace.count("channel.tx") == 1
        assert trace.count("channel.rx") == 2
        rx = trace.records("channel.rx")[0]
        assert rx.details["kind"] == "test"
        assert "rssi" in rx.details

    def test_collision_traced(self):
        sim, channel, interfaces, trace = traced_network(
            ["channel.collision"]
        )
        # Two equal-power frames overlap at the middle receiver.
        channel.transmit(
            0, Packet(src=0, kind="x", payload=None, payload_bytes=500)
        )
        channel.transmit(
            2, Packet(src=2, kind="x", payload=None, payload_bytes=500)
        )
        sim.run(until=1.0)
        assert trace.count("channel.collision") >= 1

    def test_disabled_categories_stay_silent(self):
        sim, channel, interfaces, trace = traced_network([])
        interfaces[0].send_broadcast(
            Packet(src=0, kind="test", payload=None, payload_bytes=16)
        )
        sim.run(until=1.0)
        assert len(trace) == 0


class TestRobotNodeQueries:
    @pytest.fixture(scope="class")
    def team(self, pdf_table):
        config = CoCoAConfig(
            n_robots=8,
            n_anchors=4,
            beacon_period_s=20.0,
            duration_s=45.0,
            master_seed=3,
        )
        team = CoCoATeam(config, pdf_table=pdf_table)
        team.run()
        return team

    def test_anchor_reports_device_position(self, team):
        anchor = team.nodes[1]
        t = team.sim.now
        assert anchor.is_anchor
        assert anchor.estimated_position(t) == anchor.true_position(t)
        assert anchor.localization_error(t) == pytest.approx(0.0)

    def test_unknown_reports_estimator_position(self, team):
        unknown = team.nodes[5]
        t = team.sim.now
        assert not unknown.is_anchor
        assert unknown.estimated_position(t) == unknown.estimator.estimate

    def test_localization_error_is_distance(self, team):
        unknown = team.nodes[6]
        t = team.sim.now
        expected = unknown.true_position(t).distance_to(
            unknown.estimated_position(t)
        )
        assert unknown.localization_error(t) == pytest.approx(expected)

    def test_node_role_invariants(self, team):
        from repro.core.node import RobotNode, RobotRole

        with pytest.raises(ValueError):
            RobotNode(
                node_id=99,
                role=RobotRole.ANCHOR,
                mobility=team.nodes[0].mobility,
                interface=team.nodes[0].interface,
            )
