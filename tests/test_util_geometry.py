"""Unit tests for repro.util.geometry."""

import math

import pytest

from repro.util.geometry import (
    Rect,
    Vec2,
    clamp,
    distance,
    heading_between,
    normalize_angle,
    wrap_angle_deg,
)


class TestVec2:
    def test_addition(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)

    def test_subtraction(self):
        assert Vec2(5, 7) - Vec2(2, 3) == Vec2(3, 4)

    def test_scalar_multiplication_both_sides(self):
        assert Vec2(1, 2) * 3 == Vec2(3, 6)
        assert 3 * Vec2(1, 2) == Vec2(3, 6)

    def test_division(self):
        assert Vec2(4, 6) / 2 == Vec2(2, 3)

    def test_negation(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_iteration_unpacks_coordinates(self):
        x, y = Vec2(3.5, -1.5)
        assert (x, y) == (3.5, -1.5)

    def test_dot_product(self):
        assert Vec2(1, 2).dot(Vec2(3, 4)) == 11

    def test_norm(self):
        assert Vec2(3, 4).norm() == pytest.approx(5.0)

    def test_distance_to(self):
        assert Vec2(0, 0).distance_to(Vec2(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Vec2(1.5, -2.0), Vec2(-3.0, 7.25)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_heading_to_east(self):
        assert Vec2(0, 0).heading_to(Vec2(1, 0)) == pytest.approx(0.0)

    def test_heading_to_north(self):
        assert Vec2(0, 0).heading_to(Vec2(0, 5)) == pytest.approx(
            math.pi / 2
        )

    def test_unit_has_norm_one(self):
        u = Vec2(3, 4).unit()
        assert u.norm() == pytest.approx(1.0)
        assert u.x == pytest.approx(0.6)

    def test_unit_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec2.zero().unit()

    def test_rotated_quarter_turn(self):
        r = Vec2(1, 0).rotated(math.pi / 2)
        assert r.x == pytest.approx(0.0, abs=1e-12)
        assert r.y == pytest.approx(1.0)

    def test_rotation_preserves_norm(self):
        v = Vec2(3.3, -4.4)
        assert v.rotated(1.234).norm() == pytest.approx(v.norm())

    def test_from_polar(self):
        v = Vec2.from_polar(2.0, math.pi)
        assert v.x == pytest.approx(-2.0)
        assert v.y == pytest.approx(0.0, abs=1e-12)

    def test_as_tuple(self):
        assert Vec2(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_hashable(self):
        assert len({Vec2(1, 2), Vec2(1, 2), Vec2(2, 1)}) == 2


class TestRect:
    def test_dimensions(self):
        r = Rect(10, 20, 110, 70)
        assert r.width == 100
        assert r.height == 50
        assert r.area == 5000

    def test_center(self):
        assert Rect(0, 0, 10, 20).center == Vec2(5, 10)

    def test_diagonal(self):
        assert Rect(0, 0, 30, 40).diagonal == pytest.approx(50.0)

    def test_contains_interior_and_boundary(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains(Vec2(5, 5))
        assert r.contains(Vec2(0, 0))
        assert r.contains(Vec2(10, 10))

    def test_contains_outside(self):
        r = Rect(0, 0, 10, 10)
        assert not r.contains(Vec2(10.01, 5))
        assert not r.contains(Vec2(5, -0.01))

    def test_contains_with_tolerance(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains(Vec2(10.5, 5), tolerance=1.0)

    def test_clamp_point(self):
        r = Rect(0, 0, 10, 10)
        assert r.clamp_point(Vec2(-5, 15)) == Vec2(0, 10)
        assert r.clamp_point(Vec2(3, 4)) == Vec2(3, 4)

    def test_square_factory(self):
        s = Rect.square(200.0)
        assert s.area == pytest.approx(40000.0)  # the paper's area

    def test_degenerate_rect_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 10)
        with pytest.raises(ValueError):
            Rect(0, 5, 10, 5)

    def test_square_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Rect.square(0.0)


class TestAngleHelpers:
    def test_normalize_angle_identity_in_range(self):
        assert normalize_angle(1.0) == pytest.approx(1.0)

    def test_normalize_angle_wraps_positive(self):
        assert normalize_angle(math.pi + 0.5) == pytest.approx(
            -math.pi + 0.5
        )

    def test_normalize_angle_wraps_many_turns(self):
        assert normalize_angle(7 * math.pi) == pytest.approx(math.pi)

    def test_normalize_angle_boundary_is_pi(self):
        assert normalize_angle(math.pi) == pytest.approx(math.pi)
        assert normalize_angle(-math.pi) == pytest.approx(math.pi)

    def test_wrap_angle_deg(self):
        assert wrap_angle_deg(190.0) == pytest.approx(-170.0)
        assert wrap_angle_deg(-190.0) == pytest.approx(170.0)

    def test_clamp(self):
        assert clamp(5, 0, 10) == 5
        assert clamp(-1, 0, 10) == 0
        assert clamp(11, 0, 10) == 10

    def test_clamp_reversed_bounds_raise(self):
        with pytest.raises(ValueError):
            clamp(5, 10, 0)

    def test_module_level_helpers(self):
        assert distance(Vec2(0, 0), Vec2(0, 2)) == pytest.approx(2.0)
        assert heading_between(Vec2(0, 0), Vec2(-1, 0)) == pytest.approx(
            math.pi
        )
