"""Hot-path kernel regression suite.

Two load-bearing gates live here:

- **Byte equality** — with the LUT kernel off, every kernel combination
  must produce results byte-equal to the scalar reference paths: per-team
  runs, serial seed sweeps and process-pool seed sweeps alike.
- **Figure tolerance** — with the LUT kernel on, per-figure metrics must
  stay within 0.1 % relative of the exact evaluation.

Around them sit unit tests for the kernel plumbing itself: config
resolution, the batched RSSI sampler's draw-for-draw stream equivalence,
the carrier-sense distance band, LUT state handling, the shared
constraint-field cache, and the pose memo.
"""

import json

import numpy as np
import pytest

from repro.analysis.seeds import run_seed_sweep
from repro.core.bayes import GridBayesFilter
from repro.core.config import CoCoAConfig
from repro.core.constraint_cache import ConstraintFieldCache
from repro.core.team import CoCoATeam
from repro.energy.meter import EnergyMeter
from repro.energy.model import EnergyModel
from repro.experiments.runner import SharedCalibration
from repro.kernels import (
    KERNELS_BITEXACT,
    KERNELS_OFF,
    KERNELS_ON,
    KERNELS_ENV_VAR,
    KernelConfig,
    default_kernels,
    resolve_kernels,
    set_default_kernels,
    use_kernels,
)
from repro.mobility.base import StationaryMobility
from repro.mobility.waypoint import WaypointMobility
from repro.net.channel import BroadcastChannel
from repro.net.packet import Packet
from repro.net.phy import PathLossModel, ReceiverModel
from repro.net.radio import Radio
from repro.sim.engine import Simulator
from repro.telemetry.collect import collect_team_snapshot
from repro.util.geometry import Rect, Vec2


def tiny_config(**overrides):
    """A scenario small enough that a handful of runs takes seconds."""
    defaults = dict(
        area=Rect.square(60.0),
        n_robots=8,
        n_anchors=4,
        beacon_period_s=20.0,
        duration_s=45.0,
        calibration_samples=6000,
    )
    defaults.update(overrides)
    return CoCoAConfig(**defaults)


def science_payload(result):
    """Everything a figure can read from a run, in byte-comparable form."""
    return (
        result.errors.tobytes(),
        result.measured_ids,
        result.fixes,
        sorted(result.per_node_energy_j.items()),
        repr(result.channel_stats),
        repr(result.multicast_stats),
        result.total_energy_j(),
    )


@pytest.fixture(scope="module")
def calibration():
    return SharedCalibration()


def run_tiny(seed, kernels, calibration):
    config = tiny_config(master_seed=seed)
    team = CoCoATeam(
        config, pdf_table=calibration.table_for(config), kernels=kernels
    )
    return team, team.run()


@pytest.fixture(autouse=True)
def _clean_kernel_default():
    set_default_kernels(None)
    yield
    set_default_kernels(None)


class TestKernelResolution:
    def test_default_is_everything_on(self, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV_VAR, raising=False)
        assert default_kernels() == KERNELS_ON

    def test_env_off(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "off")
        assert default_kernels() == KERNELS_OFF

    def test_env_bitexact_disables_only_the_lut(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, " BitExact ")
        kernels = default_kernels()
        assert kernels == KERNELS_BITEXACT
        assert not kernels.lut_pdf
        assert kernels.batched_delivery
        assert kernels.constraint_cache
        assert kernels.pose_memo

    def test_env_unknown_value_means_on(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "sideways")
        assert default_kernels() == KERNELS_ON

    def test_process_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "off")
        with use_kernels(KERNELS_ON):
            assert default_kernels() == KERNELS_ON
        assert default_kernels() == KERNELS_OFF

    def test_use_kernels_restores_previous_override(self):
        set_default_kernels(KERNELS_OFF)
        with use_kernels(KERNELS_ON):
            assert default_kernels() == KERNELS_ON
        assert default_kernels() == KERNELS_OFF

    def test_resolve_prefers_explicit(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "off")
        assert resolve_kernels(KERNELS_ON) == KERNELS_ON
        assert resolve_kernels(None) == KERNELS_OFF

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelConfig(lut_entries=1)
        with pytest.raises(ValueError):
            KernelConfig(cache_capacity=0)

    def test_any_enabled(self):
        assert not KERNELS_OFF.any_enabled
        assert KERNELS_ON.any_enabled
        for flag in (
            "batched_delivery",
            "lut_pdf",
            "constraint_cache",
            "pose_memo",
        ):
            overrides = dict(
                batched_delivery=False,
                lut_pdf=False,
                constraint_cache=False,
                pose_memo=False,
            )
            overrides[flag] = True
            assert KernelConfig(**overrides).any_enabled


class TestRngStreamEquivalence:
    """The identities the batched sampler's draw order is built on."""

    def test_scalar_normal_matches_size_one_draw(self):
        a = np.random.default_rng(7)
        b = np.random.default_rng(7)
        for _ in range(50):
            assert a.normal(0.0, 1.0) == b.normal(0.0, 1.0, size=1)[0]
        assert a.random() == b.random()

    def test_scalar_random_matches_size_one_draw(self):
        a = np.random.default_rng(7)
        b = np.random.default_rng(7)
        for _ in range(50):
            assert a.random() == b.random(size=1)[0]
        assert a.normal(0.0, 1.0) == b.normal(0.0, 1.0)


class TestScalarFastPaths:
    """phy's scalar branches must match the array ufuncs bit for bit."""

    def test_mean_rssi_scalar_matches_array(self):
        phy = PathLossModel()
        distances = np.linspace(0.2, 180.0, 173)
        array = phy.mean_rssi(distances)
        for d, expected in zip(distances.tolist(), array.tolist()):
            assert phy.mean_rssi(d) == expected

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sample_rssi_scalar_matches_array_path(self, seed):
        phy = PathLossModel()
        shape_rng = np.random.default_rng(100 + seed)
        distances = shape_rng.uniform(1.0, 160.0, size=64).tolist()
        scalar_rng = np.random.default_rng(seed)
        array_rng = np.random.default_rng(seed)
        for d in distances:
            scalar = phy.sample_rssi(d, scalar_rng)
            array = phy.sample_rssi(np.asarray([d]), array_rng)[0]
            assert scalar == array
        # Same draws consumed: the streams stay in lockstep afterwards.
        assert scalar_rng.random() == array_rng.random()


class TestBatchedRssiSampling:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_bitwise_equal_to_sequential_scalar(self, seed):
        phy = PathLossModel()
        shape_rng = np.random.default_rng(200 + seed)
        # Mixed regimes: clusters near the transmitter, a far majority,
        # and exact boundary values.
        distances = np.concatenate(
            [
                shape_rng.uniform(1.0, 35.0, size=9),
                shape_rng.uniform(41.0, 160.0, size=30),
                np.asarray([phy.far_threshold_m, 1.0, 160.0]),
            ]
        )
        shape_rng.shuffle(distances)
        scalar_rng = np.random.default_rng(seed)
        batch_rng = np.random.default_rng(seed)
        scalar = np.asarray(
            [phy.sample_rssi(float(d), scalar_rng) for d in distances]
        )
        batch = phy.sample_rssi_batch(distances, batch_rng)
        assert scalar.tobytes() == batch.tobytes()
        assert scalar_rng.random() == batch_rng.random()

    def test_all_near_collapses_to_one_draw(self):
        phy = PathLossModel()
        distances = np.linspace(1.0, 39.0, 17)
        scalar_rng = np.random.default_rng(11)
        batch_rng = np.random.default_rng(11)
        scalar = np.asarray(
            [phy.sample_rssi(float(d), scalar_rng) for d in distances]
        )
        batch = phy.sample_rssi_batch(distances, batch_rng)
        assert scalar.tobytes() == batch.tobytes()
        assert scalar_rng.random() == batch_rng.random()

    def test_no_fade_model_still_matches(self):
        phy = PathLossModel(far_fade_prob=0.0)
        distances = np.asarray([5.0, 80.0, 120.0, 20.0])
        scalar_rng = np.random.default_rng(3)
        batch_rng = np.random.default_rng(3)
        scalar = np.asarray(
            [phy.sample_rssi(float(d), scalar_rng) for d in distances]
        )
        batch = phy.sample_rssi_batch(distances, batch_rng)
        assert scalar.tobytes() == batch.tobytes()

    def test_empty_input_draws_nothing(self):
        phy = PathLossModel()
        rng = np.random.default_rng(4)
        reference = np.random.default_rng(4)
        assert phy.sample_rssi_batch(np.empty(0), rng).size == 0
        assert rng.random() == reference.random()


class TestCarrierSenseBand:
    """medium_busy's distance guard band vs. the exact threshold test."""

    def make_channel(self, listener_distance):
        sim = Simulator()
        phy = PathLossModel()
        channel = BroadcastChannel(
            sim, phy, np.random.default_rng(9), batched=True
        )
        receiver = ReceiverModel()
        for node_id, position in (
            (0, Vec2(0.0, 0.0)),
            (1, Vec2(listener_distance, 0.0)),
        ):
            radio = Radio(sim, EnergyMeter(EnergyModel.wavelan_2mbps()))
            channel.register(
                node_id,
                StationaryMobility(position),
                radio,
                receiver,
                lambda pkt: None,
            )
        return channel, phy, receiver

    @pytest.mark.parametrize("offset", [-2.0, -1e-4, 0.0, 1e-4, 2.0])
    def test_band_matches_exact_computation(self, offset):
        phy = PathLossModel()
        receiver = ReceiverModel()
        cs_dist = phy.distance_for_mean_rssi(receiver.carrier_sense_dbm)
        distance = cs_dist + offset
        channel, phy, receiver = self.make_channel(distance)
        channel.transmit(
            0, Packet(src=0, kind="test", payload="x", payload_bytes=100)
        )
        expected = receiver.senses_busy(phy.mean_rssi(distance))
        assert channel.medium_busy(1) == expected

    def test_own_transmission_is_not_busy(self):
        channel, _, _ = self.make_channel(5.0)
        channel.transmit(
            0, Packet(src=0, kind="test", payload="x", payload_bytes=100)
        )
        assert not channel.medium_busy(0)
        assert channel.medium_busy(1)


class TestPdfTableLut:
    @pytest.fixture(autouse=True)
    def _restore_lut(self, pdf_table):
        yield
        pdf_table.set_lut(False)

    def test_disabled_by_default(self, pdf_table):
        assert not pdf_table.lut_enabled

    def test_entries_validated(self, pdf_table):
        with pytest.raises(ValueError):
            pdf_table.set_lut(True, entries=1)

    def test_lut_density_within_tolerance(self, pdf_table):
        lo, hi = pdf_table.rssi_range
        distances = np.linspace(0.0, 1.5 * pdf_table.support_max_m, 4001)
        for rssi in np.linspace(lo, hi, 7):
            key = pdf_table.bin_key_for(float(rssi))
            pdf_table.set_lut(False)
            exact = pdf_table.pdf_for_key(key, distances).copy()
            pdf_table.set_lut(True, 16384)
            lut = pdf_table.pdf_for_key(key, distances)
            # The 0.1 % contract is on figure metrics (pinned by the
            # sweep-tolerance gate in TestBitIdenticalGate); field-level
            # error is merely bounded: the nearest-node quantization
            # leaves ~1 % L1 on the narrowest Gaussian bin (sigma
            # 0.28 m) and larger pointwise error only in steep tails
            # whose mass the posterior normalization washes out.
            l1 = float(
                np.abs(lut / lut.sum() - exact / exact.sum()).sum()
            )
            assert l1 < 0.02
            assert float(np.max(np.abs(lut - exact) / exact)) < 0.25

    def test_pickle_drops_luts_but_keeps_the_switch(self, pdf_table):
        import pickle

        lo, hi = pdf_table.rssi_range
        distances = np.linspace(0.0, 50.0, 100)
        pdf_table.set_lut(True, 4096)
        key = pdf_table.bin_key_for((lo + hi) / 2.0)
        expected = pdf_table.pdf_for_key(key, distances).copy()
        clone = pickle.loads(pickle.dumps(pdf_table))
        assert clone.lut_enabled
        assert not clone._luts  # derived data is rebuilt, not shipped
        assert clone.pdf_for_key(key, distances).tobytes() == (
            expected.tobytes()
        )

    def test_changing_entries_rebuilds(self, pdf_table):
        lo, _ = pdf_table.rssi_range
        distances = np.linspace(0.0, 50.0, 100)
        pdf_table.set_lut(True, 1024)
        key = pdf_table.bin_key_for(float(lo))
        coarse = pdf_table.pdf_for_key(key, distances).copy()
        pdf_table.set_lut(True, 16384)
        fine = pdf_table.pdf_for_key(key, distances)
        pdf_table.set_lut(False)
        exact = pdf_table.pdf_for_key(key, distances)
        assert np.max(np.abs(fine - exact)) <= np.max(
            np.abs(coarse - exact)
        )


class TestConstraintFieldCache:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ConstraintFieldCache(capacity=0)

    def test_grid_signature_mismatch_rejected(self):
        cache = ConstraintFieldCache()
        a = GridBayesFilter(Rect.square(60.0), 2.0)
        b = GridBayesFilter(Rect.square(80.0), 2.0)
        a.attach_constraint_cache(cache)
        with pytest.raises(ValueError):
            b.attach_constraint_cache(cache)

    def test_distance_store_hit_and_exact_token_guard(self):
        cache = ConstraintFieldCache()
        field = np.ones(4)
        cache.store_distance(1.0, 2.0, field)
        hit = cache.distance_field(1.0, 2.0)
        assert hit is field
        assert not hit.flags.writeable
        # Same 1 µm bucket, different exact coordinates: must miss.
        assert cache.distance_field(1.0 + 1e-8, 2.0) is None
        assert cache.distance_hits == 1
        assert cache.distance_misses == 1

    def test_constraint_key_includes_anchor_and_bin(self):
        cache = ConstraintFieldCache()
        field = np.ones(4)
        cache.store_constraint(7, 1.0, 2.0, -60, field)
        assert cache.constraint_field(7, 1.0, 2.0, -60) is field
        assert cache.constraint_field(8, 1.0, 2.0, -60) is None
        assert cache.constraint_field(7, 1.0, 2.0, -61) is None

    def test_lru_eviction(self):
        cache = ConstraintFieldCache(capacity=2)
        for i in range(3):
            cache.store_distance(float(i), 0.0, np.ones(2))
        assert cache.evictions == 1
        assert len(cache) == 2
        assert cache.distance_field(0.0, 0.0) is None  # the oldest

    def test_counters_keyed_as_telemetry_exports(self):
        assert sorted(ConstraintFieldCache().counters()) == [
            "kernel_cache_constraint_hits",
            "kernel_cache_constraint_misses",
            "kernel_cache_distance_hits",
            "kernel_cache_distance_misses",
            "kernel_cache_evictions",
            "kernel_cache_index_hits",
            "kernel_cache_index_misses",
        ]

    def test_cached_apply_beacon_bitwise_equal(self, pdf_table):
        area = Rect.square(60.0)
        plain = GridBayesFilter(area, 2.0)
        cached = GridBayesFilter(area, 2.0)
        cached.attach_constraint_cache(ConstraintFieldCache())
        lo, hi = pdf_table.rssi_range
        beacons = [
            (1, Vec2(10.0, 12.0), (lo + hi) / 2.0),
            (2, Vec2(40.0, 7.0), lo + 3.0),
            (1, Vec2(10.0, 12.0), (lo + hi) / 2.0),  # the cache hit
        ]
        for _ in range(2):  # second round replays warmed fields
            for anchor_id, beacon, rssi in beacons:
                plain.apply_beacon(
                    beacon, rssi, pdf_table, anchor_id=anchor_id
                )
                cached.apply_beacon(
                    beacon, rssi, pdf_table, anchor_id=anchor_id
                )
        assert plain.posterior.tobytes() == cached.posterior.tobytes()


class TestPoseMemo:
    def test_memoized_pose_is_bitwise_identical(self):
        area = Rect.square(60.0)
        plain = WaypointMobility(
            area, np.random.default_rng(5), v_max=2.0
        )
        memo = WaypointMobility(
            area, np.random.default_rng(5), v_max=2.0, memoize=True
        )
        times = np.random.default_rng(6).uniform(0.0, 120.0, size=200)
        for t in np.sort(times).tolist():
            # Repeat queries at the same instant: the memo's hit path.
            for _ in range(2):
                a = plain.position(t)
                b = memo.position(t)
                assert (a.x, a.y) == (b.x, b.y)


class TestTeamKernelWiring:
    def test_kernels_off_leaves_scalar_paths(self, calibration):
        team, _ = run_tiny(1, KERNELS_OFF, calibration)
        assert not team.channel.batched
        assert team.constraint_cache is None
        assert not team.pdf_table.lut_enabled

    def test_kernels_on_wires_everything(self, calibration):
        team, result = run_tiny(1, KERNELS_ON, calibration)
        assert team.channel.batched
        assert team.constraint_cache is not None
        counters = team.constraint_cache.counters()
        assert counters["kernel_cache_constraint_hits"] > 0
        assert counters["kernel_cache_distance_hits"] > 0
        snapshot = collect_team_snapshot(team, result)
        metrics = snapshot.metrics
        assert (
            metrics["kernel_cache_constraint_hits"]
            == counters["kernel_cache_constraint_hits"]
        )

    def test_kernels_off_snapshot_has_no_cache_metrics(self, calibration):
        team, result = run_tiny(1, KERNELS_OFF, calibration)
        snapshot = collect_team_snapshot(team, result)
        assert not any(
            key.startswith("kernel_cache") for key in snapshot.metrics
        )


class TestEngineKernelToggles:
    """Each engine-core kernel is individually toggleable and, alone or
    combined, byte-equal to the all-off scalar reference."""

    SEEDS = (1, 2)

    @pytest.mark.parametrize(
        "flag", ["time_wheel", "coalesced_delivery", "soa_state"]
    )
    def test_single_kernel_byte_equal(self, calibration, flag):
        from dataclasses import replace

        for seed in self.SEEDS:
            _, reference = run_tiny(seed, KERNELS_OFF, calibration)
            team, single = run_tiny(
                seed, replace(KERNELS_OFF, **{flag: True}), calibration
            )
            assert science_payload(single) == science_payload(reference)
            if flag == "time_wheel":
                assert team.sim.wheel_enabled

    def test_engine_kernels_together_byte_equal(self, calibration):
        from dataclasses import replace

        combo = replace(
            KERNELS_OFF,
            time_wheel=True,
            coalesced_delivery=True,
            soa_state=True,
        )
        for seed in self.SEEDS:
            _, reference = run_tiny(seed, KERNELS_OFF, calibration)
            _, engine = run_tiny(seed, combo, calibration)
            assert science_payload(engine) == science_payload(reference)


class TestWorldStateSoA:
    def test_positions_bitwise_match_scalar_legs(self):
        """The SoA interpolation reproduces Leg.position_at bit for bit."""
        from repro.sim.world import WorldState

        area = Rect.square(80.0)
        n = 6
        world = WorldState(n)
        mirrored = [
            WaypointMobility(area, np.random.default_rng(100 + i))
            for i in range(n)
        ]
        reference = [
            WaypointMobility(area, np.random.default_rng(100 + i))
            for i in range(n)
        ]
        for row, mobility in enumerate(mirrored):
            mobility.bind_world(world, row)
        rng = np.random.default_rng(7)
        t = 0.0
        for _ in range(200):
            t += float(rng.uniform(0.0, 3.0))
            xs, ys = world.positions_at(t)
            for row, ref in enumerate(reference):
                want = ref.current_leg(t).position_at(t)
                assert xs[row] == want.x
                assert ys[row] == want.y


class TestBitIdenticalGate:
    """The PR's acceptance gates."""

    SEEDS = (1, 2, 3)

    def test_bitexact_kernels_byte_equal_to_reference(self, calibration):
        for seed in self.SEEDS:
            _, reference = run_tiny(seed, KERNELS_OFF, calibration)
            _, kernels = run_tiny(seed, KERNELS_BITEXACT, calibration)
            assert science_payload(kernels) == science_payload(reference)

    def test_sweep_byte_equal_serial_and_pool(self, calibration, monkeypatch):
        config = tiny_config()
        with use_kernels(KERNELS_OFF):
            reference = run_seed_sweep(
                config, seeds=self.SEEDS, calibration=calibration
            )
        with use_kernels(KERNELS_BITEXACT):
            serial = run_seed_sweep(
                config, seeds=self.SEEDS, calibration=calibration
            )
        # Pool workers resolve kernels from the inherited environment.
        monkeypatch.setenv(KERNELS_ENV_VAR, "bitexact")
        pool = run_seed_sweep(config, seeds=self.SEEDS, jobs=2)
        for sweep in (serial, pool):
            assert (
                sweep.error_time_averages_m
                == reference.error_time_averages_m
            )
            assert sweep.energy_totals_j == reference.energy_totals_j

    def test_lut_kernel_within_figure_tolerance(self, calibration):
        config = tiny_config()
        with use_kernels(KERNELS_BITEXACT):
            exact = run_seed_sweep(
                config, seeds=self.SEEDS, calibration=calibration
            )
        with use_kernels(KERNELS_ON):
            lut = run_seed_sweep(
                config, seeds=self.SEEDS, calibration=calibration
            )
        assert lut.energy_totals_j == exact.energy_totals_j
        relative = abs(lut.error_ci.mean - exact.error_ci.mean) / (
            exact.error_ci.mean
        )
        assert relative < 1e-3


class TestBenchSmoke:
    def test_report_shape(self, tmp_path, monkeypatch):
        from repro.experiments import bench

        monkeypatch.setattr(
            bench,
            "pinned_config",
            lambda seed=1, duration_s=None: tiny_config(master_seed=seed),
        )
        out = tmp_path / "BENCH_hotpath.json"
        report = bench.run_hotpath_bench(
            quick=True, repeats=1, out_path=str(out)
        )
        on_disk = json.loads(out.read_text())
        assert on_disk == json.loads(json.dumps(report))
        assert report["bench"] == "hotpath"
        assert len(report["scenario"]["fingerprint"]) == 64
        for variant in ("kernels_off", "kernels_on"):
            stats = report["end_to_end"][variant]
            assert stats["wall_p50_s"] > 0.0
            assert stats["events_per_s"] > 0.0
        assert set(report["components"]) == {
            "rssi_sampling",
            "pdf_eval",
            "constraint_field",
            "event_loop",
            "delivery",
        }
        assert report["hotpath_speedup"] > 0.0
        assert report["kernel_speedup"] == report["end_to_end"]["speedup"]

    def test_repeats_validated(self):
        from repro.experiments.bench import run_hotpath_bench

        with pytest.raises(ValueError):
            run_hotpath_bench(repeats=0, out_path=None)

    def test_cli_min_speedup_gate(self, tmp_path, monkeypatch, capsys):
        from repro import cli
        from repro.experiments import bench

        canned = {
            "bench": "hotpath",
            "seed": 1,
            "quick": True,
            "scenario": {
                "fingerprint": "f" * 64,
                "preset": "fig7 cocoa v_max=2.0",
                "n_robots": 8,
                "n_anchors": 4,
                "beacon_period_s": 20.0,
                "duration_s": 45.0,
            },
            "repeats": 1,
            "end_to_end": {
                "kernels_off": {
                    "wall_p50_s": 2.0,
                    "wall_p90_s": 2.1,
                    "events_per_s": 100.0,
                },
                "kernels_on": {
                    "wall_p50_s": 1.0,
                    "wall_p90_s": 1.1,
                    "events_per_s": 200.0,
                },
                "speedup": 2.0,
            },
            "components": {
                "rssi_sampling": {"speedup": 1.3},
                "pdf_eval": {"speedup": 3.0},
                "constraint_field": {"speedup": 5.0},
            },
            "kernel_speedup": 2.0,
            "hotpath_speedup": 2.7,
        }
        monkeypatch.setattr(
            bench, "run_hotpath_bench", lambda **kwargs: canned
        )
        out = str(tmp_path / "bench.json")
        assert cli.main(["bench", "--quick", "--out", out]) == 0
        assert (
            cli.main(
                ["bench", "--quick", "--out", out, "--min-speedup", "1.5"]
            )
            == 0
        )
        code = cli.main(
            ["bench", "--quick", "--out", out, "--min-speedup", "3.0"]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
