"""Unit tests for the CSMA/CA broadcast MAC and the network interface."""

import pytest

from repro.energy.model import EnergyModel
from repro.mobility.base import StationaryMobility
from repro.net.channel import BroadcastChannel
from repro.net.interface import NetworkInterface
from repro.net.mac import MacConfig
from repro.net.packet import Packet
from repro.net.phy import PathLossModel
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.util.geometry import Vec2


def build(positions, seed=1, mac_config=MacConfig()):
    sim = Simulator()
    streams = RandomStreams(seed)
    channel = BroadcastChannel(sim, PathLossModel(), streams.get("phy"))
    interfaces = []
    for i, pos in enumerate(positions):
        interfaces.append(
            NetworkInterface(
                sim,
                i,
                StationaryMobility(pos),
                channel,
                EnergyModel.wavelan_2mbps(),
                streams.spawn("mac", i),
                mac_config=mac_config,
            )
        )
    return sim, channel, interfaces


def packet(src=0):
    return Packet(src=src, kind="test", payload=None, payload_bytes=16)


class TestMacConfig:
    def test_defaults_valid(self):
        config = MacConfig()
        assert config.difs_s > 0
        assert config.cw_slots >= 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            MacConfig(difs_s=-1.0)
        with pytest.raises(ValueError):
            MacConfig(cw_slots=0)
        with pytest.raises(ValueError):
            MacConfig(max_defers=0)


class TestCsmaMac:
    def test_frame_transmitted_after_backoff(self):
        sim, channel, interfaces = build([Vec2(0, 0), Vec2(10, 0)])
        interfaces[0].send_broadcast(packet())
        sim.run(until=0.1)
        assert interfaces[0].mac.frames_sent == 1
        assert channel.stats.frames_delivered == 1

    def test_backoff_delays_transmission(self):
        sim, channel, interfaces = build([Vec2(0, 0), Vec2(10, 0)])
        interfaces[0].send_broadcast(packet())
        # Nothing flies before DIFS.
        sim.run(until=40e-6)
        assert channel.stats.frames_sent == 0
        sim.run(until=0.1)
        assert channel.stats.frames_sent == 1

    def test_queue_drains_in_order(self):
        sim, channel, interfaces = build([Vec2(0, 0), Vec2(10, 0)])
        received = []
        interfaces[1].on_receive(
            "test", lambda rp: received.append(rp.packet.uid)
        )
        packets = [packet() for _ in range(5)]
        for p in packets:
            interfaces[0].send_broadcast(p)
        sim.run(until=1.0)
        assert received == [p.uid for p in packets]

    def test_frames_queued_while_asleep_dropped(self):
        sim, channel, interfaces = build([Vec2(0, 0), Vec2(10, 0)])
        interfaces[0].sleep()
        interfaces[0].send_broadcast(packet())
        sim.run(until=0.1)
        assert interfaces[0].mac.frames_dropped == 1
        assert channel.stats.frames_sent == 0

    def test_sleep_flushes_queue(self):
        sim, channel, interfaces = build([Vec2(0, 0), Vec2(10, 0)])
        for _ in range(3):
            interfaces[0].send_broadcast(packet())
        interfaces[0].sleep()
        sim.run(until=1.0)
        assert channel.stats.frames_sent == 0
        assert interfaces[0].mac.queue_length == 0

    def test_carrier_sense_defers_to_ongoing_transmission(self):
        sim, channel, interfaces = build([Vec2(0, 0), Vec2(10, 0), Vec2(20, 0)])
        received = []
        interfaces[2].on_receive(
            "test", lambda rp: received.append(rp.packet.src)
        )
        # Node 0 starts a long frame directly on the channel; node 1's MAC
        # must defer until it ends rather than collide.
        channel.transmit(0, Packet(src=0, kind="x", payload=None, payload_bytes=1500))
        interfaces[1].send_broadcast(packet(src=1))
        sim.run(until=1.0)
        assert interfaces[1].mac.frames_sent == 1
        assert received == [1]
        assert channel.stats.frames_collided == 0

    def test_two_contending_nodes_usually_avoid_collision(self):
        collisions = 0
        for seed in range(10):
            sim, channel, interfaces = build(
                [Vec2(0, 0), Vec2(10, 0), Vec2(5, 10)], seed=seed
            )
            interfaces[0].send_broadcast(packet(src=0))
            interfaces[1].send_broadcast(packet(src=1))
            sim.run(until=0.5)
            collisions += channel.stats.frames_collided
        # Random backoff should separate most attempts.
        assert collisions <= 4

    def test_max_defers_drops_frame(self):
        config = MacConfig(max_defers=2)
        sim, channel, interfaces = build(
            [Vec2(0, 0), Vec2(10, 0)], mac_config=config
        )
        # Keep the channel busy forever with back-to-back long frames.

        def jam():
            frame = Packet(src=0, kind="x", payload=None, payload_bytes=1500)
            channel.transmit(0, frame)
            sim.schedule(channel.airtime_s(frame.size_bytes), jam)

        jam()
        interfaces[1].send_broadcast(packet(src=1))
        sim.run(until=1.0)
        assert interfaces[1].mac.frames_dropped == 1

    def test_flush_cancels_pending(self):
        sim, channel, interfaces = build([Vec2(0, 0), Vec2(10, 0)])
        interfaces[0].send_broadcast(packet())
        interfaces[0].mac.flush()
        sim.run(until=1.0)
        assert channel.stats.frames_sent == 0


class TestNetworkInterface:
    def test_handlers_dispatch_by_kind(self):
        sim, channel, interfaces = build([Vec2(0, 0), Vec2(10, 0)])
        beacons, syncs = [], []
        interfaces[1].on_receive("beacon", lambda rp: beacons.append(rp))
        interfaces[1].on_receive("sync", lambda rp: syncs.append(rp))
        interfaces[0].send_broadcast(
            Packet(src=0, kind="beacon", payload=None, payload_bytes=16)
        )
        sim.run(until=0.5)
        assert len(beacons) == 1
        assert syncs == []

    def test_multiple_handlers_same_kind(self):
        sim, channel, interfaces = build([Vec2(0, 0), Vec2(10, 0)])
        a, b = [], []
        interfaces[1].on_receive("test", lambda rp: a.append(rp))
        interfaces[1].on_receive("test", lambda rp: b.append(rp))
        interfaces[0].send_broadcast(packet())
        sim.run(until=0.5)
        assert len(a) == 1 and len(b) == 1

    def test_initially_asleep_option(self):
        sim = Simulator()
        streams = RandomStreams(1)
        channel = BroadcastChannel(sim, PathLossModel(), streams.get("phy"))
        interface = NetworkInterface(
            sim,
            0,
            StationaryMobility(Vec2(0, 0)),
            channel,
            EnergyModel.wavelan_2mbps(),
            streams.spawn("mac", 0),
            initially_awake=False,
        )
        assert not interface.is_awake

    def test_finalize_bills_tail_energy(self):
        sim, channel, interfaces = build([Vec2(0, 0)])
        sim.run(until=10.0)
        interfaces[0].finalize()
        assert interfaces[0].meter.total_j == pytest.approx(9.0)
