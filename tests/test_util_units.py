"""Unit tests for repro.util.units and repro.util.validation."""

import math

import pytest

from repro.util.units import (
    DBM_MIN,
    db_to_ratio,
    dbm_to_mw,
    joules,
    mw_to_dbm,
    ratio_to_db,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
)


class TestPowerConversions:
    def test_zero_dbm_is_one_mw(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_mw(30.0) == pytest.approx(1000.0)

    def test_negative_dbm(self):
        assert dbm_to_mw(-30.0) == pytest.approx(1e-3)

    def test_roundtrip(self):
        for dbm in (-95.0, -52.0, 0.0, 15.0):
            assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm)

    def test_mw_to_dbm_of_zero_is_floor(self):
        assert mw_to_dbm(0.0) == DBM_MIN
        assert mw_to_dbm(-1.0) == DBM_MIN

    def test_db_ratio_roundtrip(self):
        assert db_to_ratio(3.0) == pytest.approx(10 ** 0.3)
        assert ratio_to_db(db_to_ratio(7.5)) == pytest.approx(7.5)

    def test_ratio_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ratio_to_db(0.0)

    def test_joules(self):
        # 900 mW for 1800 s = 1620 J: the paper's idle baseline per node.
        assert joules(900.0, 1800.0) == pytest.approx(1620.0)

    def test_joules_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            joules(100.0, -1.0)


class TestValidation:
    def test_check_positive_accepts_and_returns(self):
        assert check_positive("x", 3) == 3

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    def test_check_finite(self):
        assert check_finite("x", 1.5) == 1.5
        with pytest.raises(ValueError):
            check_finite("x", math.inf)
        with pytest.raises(ValueError):
            check_finite("x", math.nan)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)
