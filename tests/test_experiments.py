"""Tests for the experiment harness: metrics, presets and figure runners.

Figure runners are exercised at miniature scale — enough to validate the
data shapes and the qualitative relationships without long runtimes (the
full-scale regeneration lives in benchmarks/).
"""

import numpy as np
import pytest

from repro.core.config import LocalizationMode
from repro.experiments.figures import (
    run_fig1,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig10,
    run_mrmm_ablation,
)
from repro.experiments.metrics import (
    cdf_points,
    fraction_below,
    summarize_errors,
)
from repro.experiments.presets import (
    fig4_config,
    fig6_config,
    fig7_config,
    fig9_config,
    fig10_config,
    headline_config,
)
from repro.experiments.runner import SharedCalibration, run_scenario


class TestMetrics:
    def test_summary_fields(self):
        errors = np.array([[1.0, 2.0, 3.0], [3.0, 4.0, 5.0]])
        summary = summarize_errors(errors)
        assert summary.time_average_m == pytest.approx(3.0)
        assert summary.final_m == pytest.approx(4.0)
        assert summary.max_m == pytest.approx(4.0)
        assert summary.median_m == pytest.approx(3.0)

    def test_skip_initial_transient(self):
        errors = np.array([[100.0, 1.0, 1.0]])
        summary = summarize_errors(errors, skip_first_s=1.0)
        assert summary.time_average_m == pytest.approx(1.0)

    def test_skip_everything_rejected(self):
        with pytest.raises(ValueError):
            summarize_errors(np.ones((2, 3)), skip_first_s=10.0)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            summarize_errors(np.ones(5))

    def test_cdf_points(self):
        xs, ys = cdf_points(np.array([3.0, 1.0, 2.0, 4.0]))
        assert list(xs) == [1.0, 2.0, 3.0, 4.0]
        assert ys[-1] == pytest.approx(1.0)
        assert ys[0] == pytest.approx(0.25)

    def test_cdf_empty(self):
        xs, ys = cdf_points(np.array([]))
        assert xs.size == 0 and ys.size == 0

    def test_fraction_below(self):
        samples = np.array([1.0, 5.0, 9.0, 20.0])
        assert fraction_below(samples, 10.0) == pytest.approx(0.75)
        assert fraction_below(np.array([]), 10.0) == 0.0


class TestPresets:
    def test_headline_matches_paper(self):
        config = headline_config()
        assert config.n_robots == 50
        assert config.n_anchors == 25
        assert config.beacon_period_s == 100.0

    def test_fig4_is_odometry_only(self):
        config = fig4_config(v_max=0.5)
        assert config.localization_mode is LocalizationMode.ODOMETRY_ONLY
        assert config.n_anchors == 0
        assert not config.coordination
        assert config.v_max == 0.5

    def test_fig6_is_rf_only(self):
        config = fig6_config(50.0)
        assert config.localization_mode is LocalizationMode.RF_ONLY
        assert config.beacon_period_s == 50.0

    def test_fig7_modes(self):
        for mode in LocalizationMode:
            config = fig7_config(mode, v_max=2.0)
            assert config.localization_mode is mode

    def test_fig9_toggles_coordination(self):
        assert fig9_config(50.0, coordination=True).coordination
        assert not fig9_config(50.0, coordination=False).coordination

    def test_fig10_sets_anchor_count(self):
        assert fig10_config(15).n_anchors == 15


class TestSharedCalibration:
    def test_same_hardware_same_table(self):
        cal = SharedCalibration()
        config = headline_config(duration_s=60.0)
        assert cal.table_for(config) is cal.table_for(config)

    def test_odometry_only_needs_no_table(self):
        cal = SharedCalibration()
        assert cal.table_for(fig4_config(2.0)) is None

    def test_lru_bound_evicts_oldest(self):
        cal = SharedCalibration(max_entries=2)
        small = dict(duration_s=60.0, calibration_samples=5_000)
        for seed in (1, 2, 3):
            cal.table_for(headline_config(master_seed=seed, **small))
        assert len(cal) == 2
        assert cal.evictions == 1
        # Seed 1 was evicted; touching it rebuilds rather than crashing.
        assert cal.table_for(headline_config(master_seed=1, **small))

    def test_lru_touch_refreshes_recency(self):
        cal = SharedCalibration(max_entries=2)
        small = dict(duration_s=60.0, calibration_samples=5_000)
        t1 = cal.table_for(headline_config(master_seed=1, **small))
        cal.table_for(headline_config(master_seed=2, **small))
        cal.table_for(headline_config(master_seed=1, **small))  # refresh 1
        cal.table_for(headline_config(master_seed=3, **small))  # evicts 2
        assert cal.table_for(headline_config(master_seed=1, **small)) is t1

    def test_clear_drops_tables(self):
        cal = SharedCalibration()
        config = headline_config(duration_s=60.0, calibration_samples=5_000)
        table = cal.table_for(config)
        cal.clear()
        assert len(cal) == 0
        assert cal.table_for(config) is not table

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            SharedCalibration(max_entries=0)

    def test_default_calibration_is_shared(self):
        from repro.experiments.runner import default_calibration

        assert default_calibration() is default_calibration()

    def test_run_scenario_smoke(self):
        config = fig4_config(2.0, duration_s=30.0, master_seed=1)
        result = run_scenario(config)
        assert result.errors.shape == (50, 30)


MINI = dict(duration_s=70.0, master_seed=3)


@pytest.fixture(scope="module")
def mini_calibration():
    return SharedCalibration()


class TestFigureRunners:
    def test_fig1_structure(self):
        result = run_fig1(n_samples=30_000)
        assert set(result["bins"]) == {-52, -86}
        near = result["bins"][-52]
        assert near["is_gaussian"]
        assert len(near["pdf_x_m"]) == len(near["pdf_y"])

    def test_fig4_structure(self):
        result = run_fig4(v_maxes=(2.0,), duration_s=120.0)
        assert 2.0 in result
        assert len(result[2.0]["mean_error"]) == 120

    def test_fig5_paths_aligned(self):
        result = run_fig5()
        assert len(result["true_path"]) == len(result["estimated_path"])
        assert result["errors"][0] == 0.0
        assert result["final_error_m"] >= 0.0

    def test_fig5_noiseless_error_is_discretization_only(self):
        from repro.mobility.odometry import OdometryNoise

        # With a perfect odometer the only residual is the 1 Hz sampling
        # of turns that fall mid-interval: well under a metre over 365 m.
        result = run_fig5(noise=OdometryNoise.noiseless())
        assert result["final_error_m"] < 1.0
        assert result["errors"].max() < 1.0

    def test_fig6_structure(self, mini_calibration):
        result = run_fig6(
            beacon_periods_s=(30.0,),
            duration_s=70.0,
            calibration=mini_calibration,
        )
        assert 30.0 in result
        assert result[30.0]["summary"].time_average_m > 0

    def test_fig7_contains_three_modes(self, mini_calibration):
        result = run_fig7(
            v_maxes=(2.0,), duration_s=70.0, calibration=mini_calibration
        )
        assert set(result[2.0]) == {"odometry_only", "rf_only", "cocoa"}

    def test_fig8_three_instants(self, mini_calibration):
        result = run_fig8(
            duration_s=260.0,
            calibration=mini_calibration,
            window_index=2,
        )
        assert set(result) == {
            "end_of_beacon_period",
            "end_of_transmit_window",
            "middle_of_beacon_period",
        }
        for data in result.values():
            assert data["errors"].shape == (25,)
            assert 0.0 <= data["time_s"] <= 260.0

    def test_fig10_structure(self, mini_calibration):
        result = run_fig10(
            anchor_counts=(10,),
            duration_s=70.0,
            calibration=mini_calibration,
        )
        assert result[10]["summary"].time_average_m > 0

    def test_mrmm_ablation_structure(self, mini_calibration):
        result = run_mrmm_ablation(
            duration_s=70.0, calibration=mini_calibration
        )
        assert set(result) == {"odmrp", "mrmm"}
        for data in result.values():
            assert data["syncs_received"] >= 0
            assert data["total_energy_j"] > 0
