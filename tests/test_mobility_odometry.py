"""Unit tests for odometry sensing and dead reckoning."""

import math

import numpy as np
import pytest

from repro.mobility.base import ScriptedMobility, StationaryMobility
from repro.mobility.dead_reckoning import DeadReckoning
from repro.mobility.odometry import OdometryNoise, OdometrySensor
from repro.mobility.waypoint import WaypointMobility
from repro.sim.rng import RandomStreams
from repro.util.geometry import Rect, Vec2


@pytest.fixture()
def rng():
    return RandomStreams(3).get("odometry")


class TestOdometryNoise:
    def test_defaults_match_paper(self):
        noise = OdometryNoise()
        assert noise.displacement_std_per_s == pytest.approx(0.1)
        assert noise.angular_std_rad == pytest.approx(math.radians(10.0))

    def test_noiseless_factory(self):
        noise = OdometryNoise.noiseless()
        assert noise.displacement_std_per_s == 0.0
        assert noise.angular_std_rad == 0.0
        assert noise.heading_drift_std_rad_per_sqrt_s == 0.0

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            OdometryNoise(displacement_std_per_s=-0.1)
        with pytest.raises(ValueError):
            OdometryNoise(angular_std_rad=-0.1)
        with pytest.raises(ValueError):
            OdometryNoise(heading_drift_std_rad_per_sqrt_s=-0.1)
        with pytest.raises(ValueError):
            OdometryNoise(turn_threshold_rad=-0.1)


class TestOdometrySensor:
    def test_noiseless_straight_line(self, rng):
        mob = ScriptedMobility([Vec2(0, 0), Vec2(100, 0)], speed=2.0)
        sensor = OdometrySensor(mob, rng, noise=OdometryNoise.noiseless())
        reading = sensor.read(5.0)
        assert reading.distance == pytest.approx(10.0)
        assert reading.heading_change == pytest.approx(0.0)
        assert reading.dt == pytest.approx(5.0)

    def test_noiseless_turn_measured_exactly(self, rng):
        mob = ScriptedMobility(
            [Vec2(0, 0), Vec2(10, 0), Vec2(10, 10)], speed=1.0
        )
        sensor = OdometrySensor(mob, rng, noise=OdometryNoise.noiseless())
        sensor.read(9.5)
        reading = sensor.read(10.5)  # crosses the 90-degree turn
        assert reading.heading_change == pytest.approx(math.pi / 2)

    def test_stationary_robot_reads_zero(self, rng):
        sensor = OdometrySensor(
            StationaryMobility(Vec2(1, 1)), rng, noise=OdometryNoise()
        )
        reading = sensor.read(1.0)
        assert reading.distance == 0.0
        assert reading.heading_change == 0.0

    def test_reads_must_advance_time(self, rng):
        sensor = OdometrySensor(StationaryMobility(Vec2(0, 0)), rng)
        sensor.read(1.0)
        with pytest.raises(ValueError):
            sensor.read(1.0)
        with pytest.raises(ValueError):
            sensor.read(0.5)

    def test_displacement_noise_scale(self):
        """Measured distances over 1 s should deviate with σ ≈ 0.1 m."""
        mob = ScriptedMobility([Vec2(0, 0), Vec2(5000, 0)], speed=1.0)
        noise = OdometryNoise(
            displacement_std_per_s=0.1,
            angular_std_rad=0.0,
            heading_drift_std_rad_per_sqrt_s=0.0,
        )
        sensor = OdometrySensor(
            mob, RandomStreams(1).get("x"), noise=noise
        )
        deviations = [
            sensor.read(float(t)).distance - 1.0 for t in range(1, 2001)
        ]
        assert abs(float(np.mean(deviations))) < 0.02
        assert float(np.std(deviations)) == pytest.approx(0.1, rel=0.15)

    def test_straight_motion_without_drift_keeps_heading(self):
        mob = ScriptedMobility([Vec2(0, 0), Vec2(1000, 0)], speed=1.0)
        noise = OdometryNoise(
            displacement_std_per_s=0.1,
            angular_std_rad=math.radians(10.0),
            heading_drift_std_rad_per_sqrt_s=0.0,
        )
        sensor = OdometrySensor(mob, RandomStreams(1).get("x"), noise=noise)
        for t in range(1, 100):
            assert sensor.read(float(t)).heading_change == 0.0

    def test_heading_drift_accumulates_with_motion(self):
        mob = ScriptedMobility([Vec2(0, 0), Vec2(5000, 0)], speed=1.0)
        noise = OdometryNoise(
            displacement_std_per_s=0.0,
            angular_std_rad=0.0,
            heading_drift_std_rad_per_sqrt_s=math.radians(1.5),
        )
        sensor = OdometrySensor(mob, RandomStreams(1).get("x"), noise=noise)
        changes = [sensor.read(float(t)).heading_change for t in range(1, 1001)]
        assert float(np.std(changes)) == pytest.approx(
            math.radians(1.5), rel=0.15
        )


class TestDeadReckoning:
    def test_perfect_odometry_tracks_truth(self, rng):
        mob = ScriptedMobility(
            [Vec2(0, 0), Vec2(50, 0), Vec2(50, 50), Vec2(0, 50)], speed=1.0
        )
        sensor = OdometrySensor(mob, rng, noise=OdometryNoise.noiseless())
        reckoner = DeadReckoning(Vec2(0, 0), mob.heading(0.0))
        horizon = int(mob.travel_time)
        for t in range(1, horizon + 1):
            reckoner.advance(sensor.read(float(t)))
        assert reckoner.position.distance_to(
            mob.position(float(horizon))
        ) == pytest.approx(0.0, abs=1e-6)

    def test_error_grows_with_time_with_noise(self):
        """The Figure 4 behaviour: noisy odometry drifts without bound."""
        area = Rect.square(200.0)
        errors_early, errors_late = [], []
        for robot in range(12):
            streams = RandomStreams(robot)
            mob = WaypointMobility(area, streams.get("mob"), v_max=2.0)
            sensor = OdometrySensor(mob, streams.get("odo"))
            reckoner = DeadReckoning(mob.position(0.0), mob.heading(0.0))
            for t in range(1, 1201):
                reckoner.advance(sensor.read(float(t)))
                if t == 120:
                    errors_early.append(
                        reckoner.position.distance_to(mob.position(float(t)))
                    )
            errors_late.append(
                reckoner.position.distance_to(mob.position(1200.0))
            )
        assert np.mean(errors_late) > 3.0 * np.mean(errors_early)

    def test_reset_reanchors_position(self):
        reckoner = DeadReckoning(Vec2(0, 0), 0.0)
        reckoner.reset(Vec2(10, 10))
        assert reckoner.position == Vec2(10, 10)
        assert reckoner.updates == 0

    def test_reset_keeps_heading_unless_given(self):
        reckoner = DeadReckoning(Vec2(0, 0), 1.0)
        reckoner.reset(Vec2(5, 5))
        assert reckoner.heading == pytest.approx(1.0)
        reckoner.reset(Vec2(5, 5), heading=2.0)
        assert reckoner.heading == pytest.approx(2.0)

    def test_distance_integrated_accumulates(self, rng):
        mob = ScriptedMobility([Vec2(0, 0), Vec2(100, 0)], speed=1.0)
        sensor = OdometrySensor(mob, rng, noise=OdometryNoise.noiseless())
        reckoner = DeadReckoning(Vec2(0, 0), 0.0)
        for t in range(1, 11):
            reckoner.advance(sensor.read(float(t)))
        assert reckoner.distance_integrated == pytest.approx(10.0)
        assert reckoner.updates == 10

    def test_heading_normalized(self, rng):
        from repro.mobility.odometry import OdometryReading

        reckoner = DeadReckoning(Vec2(0, 0), 3.0)
        reckoner.advance(OdometryReading(0.0, 1.0, 1.0, 3.0))
        assert -math.pi < reckoner.heading <= math.pi
