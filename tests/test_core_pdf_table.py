"""Unit tests for the PDF Table and the calibration phase."""

import numpy as np
import pytest

from repro.core.calibration import build_pdf_table
from repro.core.pdf_table import (
    UNIFORM_FLOOR_WEIGHT,
    DistanceDistribution,
    PdfTable,
)
from repro.net.phy import PathLossModel, ReceiverModel
from repro.sim.rng import RandomStreams


class TestDistanceDistribution:
    def test_gaussian_pdf_peaks_at_mean(self):
        dist = DistanceDistribution.gaussian(20.0, 3.0, 180.0)
        xs = np.linspace(0, 180, 361)
        ys = dist.pdf(xs)
        assert xs[int(np.argmax(ys))] == pytest.approx(20.0, abs=0.5)

    def test_pdf_strictly_positive_on_support(self):
        dist = DistanceDistribution.gaussian(20.0, 1.0, 180.0)
        ys = dist.pdf(np.linspace(0, 180, 100))
        assert np.all(ys > 0)

    def test_uniform_floor_level(self):
        dist = DistanceDistribution.gaussian(20.0, 1.0, 180.0)
        far_away = dist.pdf(np.array([179.0]))[0]
        assert far_away == pytest.approx(
            UNIFORM_FLOOR_WEIGHT / 180.0, rel=1e-6
        )

    def test_gaussian_integrates_to_about_one(self):
        dist = DistanceDistribution.gaussian(50.0, 5.0, 180.0)
        xs = np.linspace(0, 180, 20000)
        integral = np.trapezoid(dist.pdf(xs), xs)
        assert integral == pytest.approx(1.0, rel=0.02)

    def test_narrow_sigma_clamped(self):
        dist = DistanceDistribution.gaussian(10.0, 0.0, 180.0)
        ys = dist.pdf(np.array([10.0]))
        assert np.isfinite(ys[0])

    def test_fit_near_samples_is_gaussian(self):
        rng = RandomStreams(1).get("x")
        samples = rng.normal(15.0, 2.0, size=500)
        dist = DistanceDistribution.from_samples(samples, 180.0)
        assert dist.is_gaussian
        assert dist.mean_m == pytest.approx(15.0, abs=0.5)
        assert dist.std_m == pytest.approx(2.0, abs=0.5)

    def test_fit_far_samples_is_histogram(self):
        rng = RandomStreams(1).get("x")
        samples = rng.uniform(60.0, 120.0, size=500)
        dist = DistanceDistribution.from_samples(samples, 180.0)
        assert not dist.is_gaussian
        assert dist.n_samples == 500

    def test_histogram_pdf_matches_sample_region(self):
        rng = RandomStreams(1).get("x")
        samples = rng.uniform(60.0, 120.0, size=2000)
        dist = DistanceDistribution.from_samples(samples, 180.0)
        inside = dist.pdf(np.array([90.0]))[0]
        outside = dist.pdf(np.array([30.0]))[0]
        assert inside > 5 * outside

    def test_histogram_integrates_to_about_one(self):
        rng = RandomStreams(2).get("x")
        samples = rng.uniform(50.0, 150.0, size=5000)
        dist = DistanceDistribution.from_samples(samples, 180.0)
        xs = np.linspace(0, 180, 20000)
        assert np.trapezoid(dist.pdf(xs), xs) == pytest.approx(1.0, rel=0.03)

    def test_beyond_support_only_floor(self):
        rng = RandomStreams(2).get("x")
        samples = rng.uniform(50.0, 150.0, size=1000)
        dist = DistanceDistribution.from_samples(samples, 180.0)
        val = dist.pdf(np.array([250.0]))[0]
        assert val == pytest.approx(UNIFORM_FLOOR_WEIGHT / 180.0, rel=1e-6)

    def test_out_buffer_reused(self):
        dist = DistanceDistribution.gaussian(20.0, 3.0, 180.0)
        xs = np.linspace(0, 180, 50)
        buf = np.empty(50)
        result = dist.pdf(xs, out=buf)
        assert result is buf
        expected = dist.pdf(xs)
        np.testing.assert_allclose(result, expected)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            DistanceDistribution.from_samples(np.array([]), 180.0)

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            DistanceDistribution.gaussian(10.0, -1.0, 180.0)


class TestPdfTable:
    def make_table(self):
        bins = {
            -50: DistanceDistribution.gaussian(5.0, 1.0, 180.0),
            -70: DistanceDistribution.gaussian(20.0, 4.0, 180.0),
            -85: DistanceDistribution.gaussian(60.0, 15.0, 180.0),
        }
        return PdfTable(bins, support_max_m=180.0)

    def test_exact_bin_lookup(self):
        table = self.make_table()
        assert table.bin_for(-70.0).mean_m == pytest.approx(20.0)

    def test_nearest_bin_snapping(self):
        table = self.make_table()
        assert table.bin_for(-68.0).mean_m == pytest.approx(20.0)
        assert table.bin_for(-79.0).mean_m == pytest.approx(60.0)

    def test_clamping_beyond_edges(self):
        table = self.make_table()
        assert table.bin_for(-120.0).mean_m == pytest.approx(60.0)
        assert table.bin_for(-10.0).mean_m == pytest.approx(5.0)

    def test_rssi_range(self):
        assert self.make_table().rssi_range == (-85, -50)

    def test_expected_distance_monotone(self):
        table = self.make_table()
        assert (
            table.expected_distance(-50.0)
            < table.expected_distance(-70.0)
            < table.expected_distance(-85.0)
        )

    def test_items_in_rssi_order(self):
        keys = [k for k, _ in self.make_table().items()]
        assert keys == sorted(keys)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            PdfTable({}, support_max_m=180.0)

    def test_bad_support_rejected(self):
        bins = {-50: DistanceDistribution.gaussian(5.0, 1.0, 180.0)}
        with pytest.raises(ValueError):
            PdfTable(bins, support_max_m=0.0)


class TestCalibration:
    def test_builds_populated_table(self, pdf_table):
        assert pdf_table.n_bins > 20

    def test_near_bins_gaussian_far_bins_not(self, pdf_table):
        """The paper's Figure 1 dichotomy: Gaussian to ~40 m, not beyond."""
        near = pdf_table.bin_for(-52.0)
        far = pdf_table.bin_for(-88.0)
        assert near.is_gaussian
        assert near.mean_m < 40.0
        assert not far.is_gaussian
        assert far.mean_m > 40.0

    def test_stronger_rssi_means_shorter_distance(self, pdf_table):
        distances = [
            pdf_table.expected_distance(rssi) for rssi in (-45, -60, -75)
        ]
        assert distances == sorted(distances)

    def test_result_provenance(self, default_path_loss):
        result = build_pdf_table(
            default_path_loss,
            RandomStreams(9).get("cal"),
            n_samples=20_000,
        )
        assert result.n_samples_drawn == 20_000
        assert 0 < result.n_samples_decodable <= 20_000
        assert result.n_gaussian_bins > 0
        assert result.n_histogram_bins > 0
        assert 0.0 < result.gaussian_fraction < 1.0

    def test_sensitivity_gates_samples(self, default_path_loss):
        """A deaf receiver can calibrate only the near bins."""
        deaf = ReceiverModel(sensitivity_dbm=-70.0, carrier_sense_dbm=-70.0)
        result = build_pdf_table(
            default_path_loss,
            RandomStreams(9).get("cal"),
            n_samples=30_000,
            receiver=deaf,
        )
        low, high = result.table.rssi_range
        assert low >= -70

    def test_impossible_sensitivity_raises(self, default_path_loss):
        impossible = ReceiverModel(
            sensitivity_dbm=0.0, carrier_sense_dbm=-1.0
        )
        with pytest.raises(ValueError):
            build_pdf_table(
                default_path_loss,
                RandomStreams(9).get("cal"),
                n_samples=5_000,
                receiver=impossible,
            )

    def test_invalid_arguments(self, default_path_loss):
        rng = RandomStreams(9).get("cal")
        with pytest.raises(ValueError):
            build_pdf_table(default_path_loss, rng, n_samples=0)
        with pytest.raises(ValueError):
            build_pdf_table(default_path_loss, rng, max_distance_m=0.5)

    def test_deterministic_given_seed(self, default_path_loss):
        r1 = build_pdf_table(
            default_path_loss, RandomStreams(5).get("cal"), n_samples=10_000
        )
        r2 = build_pdf_table(
            default_path_loss, RandomStreams(5).get("cal"), n_samples=10_000
        )
        assert r1.table.rssi_range == r2.table.rssi_range
        assert r1.n_samples_decodable == r2.n_samples_decodable
