"""Unit tests for the per-robot position estimator (all three modes)."""

import math

import pytest

from repro.core.config import LocalizationMode
from repro.core.estimator import PositionEstimator
from repro.mobility.base import ScriptedMobility
from repro.mobility.odometry import OdometryNoise, OdometrySensor
from repro.net.phy import PathLossModel
from repro.sim.rng import RandomStreams
from repro.util.geometry import Rect, Vec2


AREA = Rect.square(200.0)


def make_sensor(mobility, seed=1, noise=None):
    return OdometrySensor(
        mobility,
        RandomStreams(seed).get("odo"),
        noise=noise or OdometryNoise.noiseless(),
    )


def straight_mobility(speed=1.0):
    return ScriptedMobility([Vec2(50, 100), Vec2(150, 100)], speed=speed)


class TestConstruction:
    def test_odometry_only_requires_initial_position(self, pdf_table):
        with pytest.raises(ValueError):
            PositionEstimator(
                LocalizationMode.ODOMETRY_ONLY,
                AREA,
                odometry=make_sensor(straight_mobility()),
            )

    def test_odometry_only_requires_sensor(self):
        with pytest.raises(ValueError):
            PositionEstimator(
                LocalizationMode.ODOMETRY_ONLY,
                AREA,
                initial_position=Vec2(0, 0),
            )

    def test_rf_modes_require_table(self):
        with pytest.raises(ValueError):
            PositionEstimator(LocalizationMode.RF_ONLY, AREA)

    def test_cocoa_requires_odometry(self, pdf_table):
        with pytest.raises(ValueError):
            PositionEstimator(
                LocalizationMode.COCOA, AREA, pdf_table=pdf_table
            )

    def test_rf_default_estimate_is_area_center(self, pdf_table):
        est = PositionEstimator(
            LocalizationMode.RF_ONLY, AREA, pdf_table=pdf_table
        )
        assert est.estimate == AREA.center
        assert not est.has_fix


class TestOdometryOnlyMode:
    def test_perfect_odometry_tracks_truth(self):
        mobility = straight_mobility()
        est = PositionEstimator(
            LocalizationMode.ODOMETRY_ONLY,
            AREA,
            odometry=make_sensor(mobility),
            initial_position=mobility.position(0.0),
            initial_heading=mobility.heading(0.0),
        )
        for t in range(1, 51):
            est.tick(float(t))
        assert est.estimate.distance_to(mobility.position(50.0)) < 1e-6

    def test_beacons_ignored(self):
        mobility = straight_mobility()
        est = PositionEstimator(
            LocalizationMode.ODOMETRY_ONLY,
            AREA,
            odometry=make_sensor(mobility),
            initial_position=mobility.position(0.0),
            initial_heading=mobility.heading(0.0),
        )
        est.on_window_open()
        est.on_beacon(Vec2(0, 0), -50.0)
        est.on_window_close()
        assert est.beacons_heard == 0
        assert not est.has_fix


class TestRfOnlyMode:
    def fixed_estimator(self, pdf_table):
        return PositionEstimator(
            LocalizationMode.RF_ONLY, AREA, pdf_table=pdf_table
        )

    def apply_good_beacons(self, est, true_position, n=6):
        model = PathLossModel()
        anchors = [
            Vec2(true_position.x - 25, true_position.y),
            Vec2(true_position.x + 25, true_position.y + 5),
            Vec2(true_position.x, true_position.y + 30),
            Vec2(true_position.x - 10, true_position.y - 25),
            Vec2(true_position.x + 15, true_position.y - 15),
            Vec2(true_position.x + 5, true_position.y + 18),
        ][:n]
        for anchor in anchors:
            rssi = float(model.mean_rssi(anchor.distance_to(true_position)))
            est.on_beacon(anchor, rssi)

    def test_fix_after_enough_beacons(self, pdf_table):
        est = self.fixed_estimator(pdf_table)
        true = Vec2(80, 120)
        est.on_window_open()
        self.apply_good_beacons(est, true)
        est.on_window_close()
        assert est.has_fix
        assert est.fixes == 1
        assert est.estimate.distance_to(true) < 10.0

    def test_too_few_beacons_keeps_old_estimate(self, pdf_table):
        est = self.fixed_estimator(pdf_table)
        before = est.estimate
        est.on_window_open()
        est.on_beacon(Vec2(50, 50), -60.0)
        est.on_beacon(Vec2(60, 50), -60.0)
        est.on_window_close()
        assert est.estimate == before
        assert est.windows_without_fix == 1
        assert not est.has_fix

    def test_estimate_frozen_between_windows(self, pdf_table):
        est = self.fixed_estimator(pdf_table)
        true = Vec2(80, 120)
        est.on_window_open()
        self.apply_good_beacons(est, true)
        est.on_window_close()
        frozen = est.estimate
        est.tick(1.0)  # no odometry in RF mode: tick is a no-op
        assert est.estimate == frozen

    def test_window_reset_discards_stale_evidence(self, pdf_table):
        est = self.fixed_estimator(pdf_table)
        est.on_window_open()
        self.apply_good_beacons(est, Vec2(40, 40))
        est.on_window_close()
        first = est.estimate
        est.on_window_open()
        self.apply_good_beacons(est, Vec2(160, 160))
        est.on_window_close()
        assert est.estimate.distance_to(Vec2(160, 160)) < 12.0
        assert est.estimate.distance_to(first) > 50.0


class TestCocoaMode:
    def make(self, pdf_table, mobility, noise=None, seed=1):
        return PositionEstimator(
            LocalizationMode.COCOA,
            AREA,
            pdf_table=pdf_table,
            odometry=make_sensor(mobility, seed=seed, noise=noise),
        )

    def fix_at(self, est, true_position):
        model = PathLossModel()
        est.on_window_open()
        for anchor in (
            Vec2(true_position.x - 20, true_position.y),
            Vec2(true_position.x + 20, true_position.y + 10),
            Vec2(true_position.x, true_position.y + 25),
            Vec2(true_position.x - 8, true_position.y - 20),
        ):
            est.on_beacon(
                anchor,
                float(model.mean_rssi(anchor.distance_to(true_position))),
            )
        est.on_window_close()

    def test_fix_reanchors_dead_reckoner(self, pdf_table):
        mobility = straight_mobility()
        est = self.make(pdf_table, mobility)
        self.fix_at(est, mobility.position(0.0))
        assert est.estimate.distance_to(mobility.position(0.0)) < 8.0

    def test_dead_reckoning_between_fixes(self, pdf_table):
        mobility = straight_mobility()
        est = self.make(pdf_table, mobility)
        self.fix_at(est, mobility.position(0.0))
        fix_error = est.estimate.distance_to(mobility.position(0.0))
        for t in range(1, 21):
            est.tick(float(t))
        # With perfect odometry the error cannot grow beyond the fix error
        # (plus the unknown initial heading, corrected by the second fix).
        late_error = est.estimate.distance_to(mobility.position(20.0))
        assert late_error < fix_error + 25.0

    def test_heading_corrected_by_second_fix(self, pdf_table):
        mobility = straight_mobility()
        est = self.make(pdf_table, mobility)
        self.fix_at(est, mobility.position(0.0))
        for t in range(1, 31):
            est.tick(float(t))
        self.fix_at(est, mobility.position(30.0))
        # After the second fix the reckoner's heading must be close to the
        # true course (0 rad: moving along +x).
        heading = est._dead_reckoner.heading
        assert abs(heading) < math.radians(25.0)

    def test_third_window_tracks_well(self, pdf_table):
        mobility = straight_mobility()
        est = self.make(pdf_table, mobility)
        t = 0.0
        for window in range(3):
            self.fix_at(est, mobility.position(t))
            for step in range(1, 21):
                est.tick(t + step)
            t += 20.0
        error = est.estimate.distance_to(mobility.position(t))
        assert error < 10.0

    def test_window_without_beacons_continues_reckoning(self, pdf_table):
        mobility = straight_mobility()
        est = self.make(pdf_table, mobility)
        self.fix_at(est, mobility.position(0.0))
        est.tick(1.0)
        moved = est.estimate
        est.on_window_open()
        est.on_window_close()  # zero beacons
        assert est.windows_without_fix == 1
        assert est.estimate == moved
