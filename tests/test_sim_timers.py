"""Unit tests for PeriodicTimer, RandomStreams and TraceLog."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceLog


class TestPeriodicTimer:
    def test_fires_at_period_multiples(self):
        sim = Simulator()
        times = []
        PeriodicTimer(sim, 2.0, lambda c: times.append(sim.now))
        sim.run(until=7.0)
        assert times == [0.0, 2.0, 4.0, 6.0]

    def test_start_delay_offsets_first_fire(self):
        sim = Simulator()
        times = []
        PeriodicTimer(
            sim, 2.0, lambda c: times.append(sim.now), start_delay=1.0
        )
        sim.run(until=6.0)
        assert times == [1.0, 3.0, 5.0]

    def test_callback_receives_fire_count(self):
        sim = Simulator()
        counts = []
        PeriodicTimer(sim, 1.0, counts.append, max_fires=3)
        sim.run()
        assert counts == [0, 1, 2]

    def test_max_fires_stops_timer(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 1.0, lambda c: None, max_fires=2)
        sim.run()
        assert timer.fires == 2
        assert not timer.running

    def test_stop_prevents_further_fires(self):
        sim = Simulator()
        fired = []

        def callback(count):
            fired.append(count)
            if count == 1:
                timer.stop()

        timer = PeriodicTimer(sim, 1.0, callback)
        sim.run(until=10.0)
        assert fired == [0, 1]
        assert not timer.running

    def test_stop_is_idempotent(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 1.0, lambda c: None)
        timer.stop()
        timer.stop()
        assert not timer.running

    def test_reschedule_changes_future_period(self):
        sim = Simulator()
        times = []

        def callback(count):
            times.append(sim.now)
            if count == 0:
                timer.reschedule(3.0)

        timer = PeriodicTimer(sim, 1.0, callback)
        sim.run(until=8.0)
        # Fires at 0, then the new period applies from the next firing.
        assert times == [0.0, 1.0, 4.0, 7.0]

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda c: None)

    def test_invalid_start_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 1.0, lambda c: None, start_delay=-1.0)

    def test_non_finite_period_rejected(self):
        sim = Simulator()
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                PeriodicTimer(sim, bad, lambda c: None)

    def test_non_finite_start_delay_rejected(self):
        sim = Simulator()
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                PeriodicTimer(sim, 1.0, lambda c: None, start_delay=bad)

    def test_non_finite_reschedule_period_rejected(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 1.0, lambda c: None)
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                timer.reschedule(bad)

    def test_invalid_max_fires_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 1.0, lambda c: None, max_fires=0)


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(1)
        assert streams.get("a") is streams.get("a")

    def test_different_names_are_independent(self):
        streams = RandomStreams(1)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert list(a) != list(b)

    def test_reproducible_across_instances(self):
        x = RandomStreams(7).get("mobility").random(4)
        y = RandomStreams(7).get("mobility").random(4)
        assert list(x) == list(y)

    def test_different_master_seeds_differ(self):
        x = RandomStreams(7).get("mobility").random(4)
        y = RandomStreams(8).get("mobility").random(4)
        assert list(x) != list(y)

    def test_creation_order_does_not_matter(self):
        s1 = RandomStreams(3)
        s1.get("first")
        a1 = s1.get("second").random(3)
        s2 = RandomStreams(3)
        a2 = s2.get("second").random(3)
        assert list(a1) == list(a2)

    def test_spawn_indexes_streams(self):
        streams = RandomStreams(1)
        assert streams.spawn("odo", 1) is not streams.spawn("odo", 2)
        assert streams.spawn("odo", 1) is streams.spawn("odo", 1)

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")


class TestTraceLog:
    def test_disabled_category_not_recorded(self):
        log = TraceLog()
        log.emit(1.0, "x", 1, foo="bar")
        assert len(log) == 0

    def test_enabled_category_recorded(self):
        log = TraceLog(["x"])
        log.emit(1.0, "x", 1, foo="bar")
        assert log.count("x") == 1
        record = log.records("x")[0]
        assert record.time == 1.0
        assert record.node == 1
        assert record.details == {"foo": "bar"}

    def test_enable_disable(self):
        log = TraceLog()
        log.enable("y")
        assert log.enabled("y")
        log.emit(0.0, "y")
        log.disable("y")
        log.emit(1.0, "y")
        assert log.count("y") == 1

    def test_records_filtering(self):
        log = TraceLog(["a", "b"])
        log.emit(0.0, "a")
        log.emit(1.0, "b")
        assert len(log.records()) == 2
        assert len(log.records("a")) == 1

    def test_clear_keeps_categories(self):
        log = TraceLog(["a"])
        log.emit(0.0, "a")
        log.clear()
        assert len(log) == 0
        assert log.enabled("a")

    def test_iteration(self):
        log = TraceLog(["a"])
        log.emit(0.0, "a")
        log.emit(1.0, "a")
        assert [r.time for r in log] == [0.0, 1.0]
