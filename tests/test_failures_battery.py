"""Tests for failure injection, Sync failover and the battery model."""

import numpy as np
import pytest

from repro.core.config import CoCoAConfig
from repro.energy.battery import Battery, project_lifetime
from repro.ext.failures import FailureSchedule, ResilientTeam, SyncFailover


def small_config(**overrides):
    defaults = dict(
        n_robots=16,
        n_anchors=6,
        beacon_period_s=30.0,
        duration_s=155.0,
        master_seed=7,
        calibration_samples=30_000,
    )
    defaults.update(overrides)
    return CoCoAConfig(**defaults)


class TestBattery:
    def test_radio_budget(self):
        battery = Battery(capacity_j=80_000.0, radio_share=0.25)
        assert battery.radio_budget_j == pytest.approx(20_000.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Battery(capacity_j=0.0)
        with pytest.raises(ValueError):
            Battery(radio_share=0.0)

    def test_projection_orders_deaths(self):
        profile = {0: 100.0, 1: 200.0, 2: 50.0}
        projection = project_lifetime(profile, measured_duration_s=100.0)
        # Node 1 burns fastest, node 2 slowest.
        assert projection.first_death_s == projection.node_lifetimes_s[1]
        assert projection.last_death_s == projection.node_lifetimes_s[2]
        assert (
            projection.first_death_s
            <= projection.half_team_s
            <= projection.last_death_s
        )

    def test_projection_math(self):
        battery = Battery(capacity_j=100_000.0, radio_share=0.5)
        # 100 J over 100 s = 1 W; budget 50 kJ -> 50 000 s.
        projection = project_lifetime({0: 100.0}, 100.0, battery)
        assert projection.node_lifetimes_s[0] == pytest.approx(50_000.0)

    def test_zero_consumption_is_infinite(self):
        projection = project_lifetime({0: 0.0, 1: 10.0}, 100.0)
        assert projection.node_lifetimes_s[0] == float("inf")

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            project_lifetime({}, 100.0)

    def test_coordination_extends_lifetime(self, pdf_table):
        """The payoff of Figure 9(b), in mission time."""
        from repro.core.team import CoCoATeam

        coordinated = CoCoATeam(small_config(), pdf_table=pdf_table).run()
        idle = CoCoATeam(
            small_config(coordination=False), pdf_table=pdf_table
        ).run()
        battery = Battery()
        life_coord = project_lifetime(
            coordinated.per_node_energy_j, 155.0, battery
        )
        life_idle = project_lifetime(idle.per_node_energy_j, 155.0, battery)
        assert life_coord.first_death_s > 1.5 * life_idle.first_death_s


class TestFailureSchedule:
    def test_of_constructor(self):
        schedule = FailureSchedule.of((10.0, 1), (20.0, 2))
        assert len(schedule.failures) == 2

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            FailureSchedule.of((-1.0, 1))
        with pytest.raises(ValueError):
            FailureSchedule.of((1.0, -2))

    def test_sorted_and_deduplicated(self):
        """Entry order never matters and duplicates collapse, so two
        differently-written schedules hash and execute identically."""
        a = FailureSchedule.of((20.0, 2), (10.0, 1), (20.0, 2))
        b = FailureSchedule.of((10.0, 1), (20.0, 2), (10.0, 1))
        assert a.failures == b.failures == ((10.0, 1), (20.0, 2))


class TestFailureInjection:
    def test_dead_robot_stops_consuming_and_reporting(self, pdf_table):
        team = ResilientTeam(
            small_config(),
            FailureSchedule.of((50.0, 10)),
            failover=False,
            pdf_table=pdf_table,
        )
        result = team.run()
        assert 10 in team.dead
        # Node 10 is an unknown (ids 6..15); find its row.
        row = result.measured_ids.index(10)
        assert np.isnan(result.errors[row, -1])
        assert not np.isnan(result.errors[row, 10])
        # NaN-aware aggregates remain finite.
        assert np.isfinite(result.time_average_error())

    def test_dead_anchor_stops_beaconing(self, pdf_table):
        alive = ResilientTeam(small_config(), pdf_table=pdf_table)
        alive_result = alive.run()
        team = ResilientTeam(
            small_config(),
            FailureSchedule.of((40.0, 3), (40.0, 4), (40.0, 5)),
            failover=False,
            pdf_table=pdf_table,
        )
        result = team.run()
        assert result.beacons_sent < alive_result.beacons_sent

    def test_kill_is_idempotent(self, pdf_table):
        team = ResilientTeam(small_config(), pdf_table=pdf_table)
        team.kill(2)
        team.kill(2)
        assert team.dead == {2}

    def test_team_survives_many_failures(self, pdf_table):
        schedule = FailureSchedule.of(
            (30.0, 2), (60.0, 8), (90.0, 12), (120.0, 14)
        )
        team = ResilientTeam(
            small_config(), schedule, failover=True, pdf_table=pdf_table
        )
        result = team.run()
        assert len(team.dead) == 4
        assert np.isfinite(result.time_average_error())


class TestSyncFailover:
    def run_with_sync_death(self, pdf_table, failover, duration=400.0):
        config = small_config(duration_s=duration)
        team = ResilientTeam(
            config,
            FailureSchedule.of((45.0, 0)),  # kill the Sync robot early
            failover=failover,
            resync_after_silent_periods=3 if failover else None,
            pdf_table=pdf_table,
        )
        return team, team.run()

    def test_without_failover_syncs_stop(self, pdf_table):
        team, result = self.run_with_sync_death(pdf_table, failover=False)
        # Only the pre-death periods distributed SYNC.
        late_syncs = result.syncs_received
        team2, result2 = self.run_with_sync_death(pdf_table, failover=True)
        assert result2.syncs_received > 2 * late_syncs

    def test_exactly_one_backup_takes_over(self, pdf_table):
        team, _ = self.run_with_sync_death(pdf_table, failover=True)
        acting = [f for f in team.failovers.values() if f.is_acting_sync]
        assert len(acting) == 1
        # Rank staggering: the lowest-id backup anchor wins.
        assert acting[0].node_id == 1
        assert acting[0].takeovers == 1

    def test_failover_restores_localization(self, pdf_table):
        _, without = self.run_with_sync_death(pdf_table, failover=False)
        _, with_fo = self.run_with_sync_death(pdf_table, failover=True)
        late_without = float(np.nanmean(without.errors[:, 250:]))
        late_with = float(np.nanmean(with_fo.errors[:, 250:]))
        assert late_with < late_without

    def test_resync_mode_used_during_outage(self, pdf_table):
        team, _ = self.run_with_sync_death(pdf_table, failover=True)
        resync_periods = sum(
            n.coordinator.resync_periods
            for n in team.nodes
            if n.coordinator is not None
        )
        assert resync_periods > 0

    def test_threshold_validated(self, pdf_table):
        team = ResilientTeam(small_config(), pdf_table=pdf_table)
        with pytest.raises(ValueError):
            SyncFailover(team, 1, 0, team.nodes[1].coordinator, threshold=0)

    def test_no_takeover_when_sync_robot_alive(self, pdf_table):
        team = ResilientTeam(
            small_config(duration_s=245.0), failover=True,
            pdf_table=pdf_table,
        )
        team.run()
        assert all(f.takeovers == 0 for f in team.failovers.values())
