"""Unit tests for link-lifetime prediction and flooding helpers."""

import math

import pytest

from repro.mobility.base import StationaryMobility
from repro.mobility.waypoint import WaypointMobility
from repro.multicast.flooding import CopyCounter, DuplicateCache
from repro.multicast.lifetime import (
    Kinematics,
    kinematics_of,
    predict_link_lifetime,
)
from repro.sim.rng import RandomStreams
from repro.util.geometry import Rect, Vec2


def kin(x, y, vx=0.0, vy=0.0, tta=100.0, rest=0.0):
    return Kinematics(Vec2(x, y), Vec2(vx, vy), tta, rest)


class TestPredictLinkLifetime:
    def test_out_of_range_link_is_dead(self):
        assert predict_link_lifetime(kin(0, 0), kin(200, 0), 100.0) == 0.0

    def test_static_pair_lives_for_horizon(self):
        a = kin(0, 0, tta=0.0, rest=50.0)
        b = kin(10, 0, tta=0.0, rest=80.0)
        # Both resting: velocity valid for min(50, 80) = 50 s.
        assert predict_link_lifetime(a, b, 100.0) == pytest.approx(50.0)

    def test_separating_pair_breaks_at_range(self):
        # b moves away at 2 m/s from 20 m apart; range 100 m:
        # separation hits 100 m after (100-20)/2 = 40 s.
        a = kin(0, 0, tta=1000.0)
        b = kin(20, 0, vx=2.0, tta=1000.0)
        assert predict_link_lifetime(a, b, 100.0) == pytest.approx(40.0)

    def test_parallel_movers_never_separate(self):
        a = kin(0, 0, vx=1.5, tta=200.0)
        b = kin(30, 0, vx=1.5, tta=300.0)
        assert predict_link_lifetime(a, b, 100.0) == pytest.approx(200.0)

    def test_approaching_then_receding(self):
        # b approaches a, passes, then recedes: lifetime is the time for
        # the separation to grow back past R on the far side.
        a = kin(0, 0, tta=1000.0)
        b = kin(50, 0, vx=-2.0, tta=1000.0)
        # Position of b: 50 - 2t; separation |50-2t| = 100 at t = 75.
        assert predict_link_lifetime(a, b, 100.0) == pytest.approx(75.0)

    def test_horizon_caps_prediction(self):
        a = kin(0, 0, tta=10.0)
        b = kin(20, 0, vx=2.0, tta=1000.0)
        # Separation math says 40 s, but a's command expires at 10 s.
        assert predict_link_lifetime(a, b, 100.0) == pytest.approx(10.0)

    def test_max_horizon_caps_everything(self):
        a = kin(0, 0, tta=math.inf)
        b = kin(10, 0, tta=math.inf)
        assert predict_link_lifetime(a, b, 100.0, max_horizon_s=300.0) == (
            pytest.approx(300.0)
        )

    def test_nonpositive_range_rejected(self):
        with pytest.raises(ValueError):
            predict_link_lifetime(kin(0, 0), kin(1, 0), 0.0)

    def test_symmetry(self):
        a = kin(0, 0, vx=1.0, tta=500.0)
        b = kin(30, 10, vy=-2.0, tta=400.0)
        assert predict_link_lifetime(a, b, 90.0) == pytest.approx(
            predict_link_lifetime(b, a, 90.0)
        )


class TestKinematicsOf:
    def test_stationary_reports_zero_velocity(self):
        k = kinematics_of(StationaryMobility(Vec2(3, 4)), 10.0)
        assert k.position == Vec2(3, 4)
        assert k.velocity == Vec2.zero()
        assert k.rest_remaining == math.inf

    def test_waypoint_reports_velocity_and_horizon(self):
        area = Rect.square(200.0)
        mob = WaypointMobility(area, RandomStreams(4).get("m"), v_max=2.0)
        k = kinematics_of(mob, 0.0)
        pose = mob.pose(0.0)
        assert k.velocity.norm() == pytest.approx(pose.speed)
        assert k.time_to_waypoint == pytest.approx(mob.time_to_waypoint(0.0))

    def test_prediction_horizon_combines_travel_and_rest(self):
        k = kin(0, 0, tta=30.0, rest=20.0)
        assert k.prediction_horizon == pytest.approx(50.0)


class TestDuplicateCache:
    def test_first_sighting_is_new(self):
        cache = DuplicateCache()
        assert not cache.seen_before(1)
        assert cache.seen_before(1)

    def test_contains(self):
        cache = DuplicateCache()
        cache.seen_before(5)
        assert 5 in cache
        assert 6 not in cache

    def test_eviction_beyond_capacity(self):
        cache = DuplicateCache(capacity=3)
        for uid in (1, 2, 3, 4):
            cache.seen_before(uid)
        assert 1 not in cache
        assert 4 in cache
        assert len(cache) == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            DuplicateCache(capacity=0)


class TestCopyCounter:
    def test_counts_increment(self):
        counter = CopyCounter()
        assert counter.record(1) == 1
        assert counter.record(1) == 2
        assert counter.count(1) == 2

    def test_unknown_is_zero(self):
        assert CopyCounter().count(99) == 0

    def test_eviction(self):
        counter = CopyCounter(capacity=2)
        counter.record(1)
        counter.record(2)
        counter.record(3)
        assert counter.count(1) == 0
        assert counter.count(3) == 1
