"""Unit tests for the radio state machine and the broadcast channel."""

import pytest

from repro.energy.meter import EnergyMeter
from repro.energy.model import EnergyModel, RadioState
from repro.mobility.base import StationaryMobility
from repro.net.channel import BroadcastChannel
from repro.net.interface import NetworkInterface
from repro.net.packet import Packet
from repro.net.phy import PathLossModel, ReceiverModel
from repro.net.radio import Radio, RadioError
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.util.geometry import Vec2


def make_radio(sim=None):
    sim = sim or Simulator()
    meter = EnergyMeter(EnergyModel.wavelan_2mbps())
    return sim, Radio(sim, meter)


class TestRadioStates:
    def test_starts_idle_and_awake(self):
        _, radio = make_radio()
        assert radio.state is RadioState.IDLE
        assert radio.is_awake

    def test_sleep_wake_cycle(self):
        _, radio = make_radio()
        radio.sleep()
        assert radio.state is RadioState.SLEEP
        assert not radio.is_awake
        radio.wake()
        assert radio.state is RadioState.IDLE

    def test_sleep_idempotent(self):
        _, radio = make_radio()
        radio.sleep()
        transitions = radio.meter.transitions
        radio.sleep()
        assert radio.meter.transitions == transitions

    def test_wake_when_awake_is_noop(self):
        _, radio = make_radio()
        transitions = radio.meter.transitions
        radio.wake()
        assert radio.meter.transitions == transitions

    def test_transition_energy_charged(self):
        _, radio = make_radio()
        radio.sleep()
        radio.wake()
        assert radio.meter.transitions == 2
        assert radio.meter.breakdown.transition_j > 0

    def test_time_billed_to_previous_state(self):
        sim, radio = make_radio()
        sim.schedule(10.0, radio.sleep)
        sim.schedule(30.0, radio.wake)
        sim.run(until=40.0)
        radio.finalize()
        b = radio.meter.breakdown
        assert b.idle_j == pytest.approx(0.9 * 20.0)  # 10 s + final 10 s
        assert b.sleep_j == pytest.approx(0.05 * 20.0)

    def test_transmit_enters_tx_then_returns_to_idle(self):
        sim, radio = make_radio()
        radio.begin_transmit(0.001)
        assert radio.is_transmitting
        sim.run(until=0.01)
        assert radio.state is RadioState.IDLE

    def test_transmit_while_asleep_rejected(self):
        _, radio = make_radio()
        radio.sleep()
        with pytest.raises(RadioError):
            radio.begin_transmit(0.001)

    def test_double_transmit_rejected(self):
        _, radio = make_radio()
        radio.begin_transmit(0.001)
        with pytest.raises(RadioError):
            radio.begin_transmit(0.001)

    def test_receive_extends_busy_window(self):
        sim, radio = make_radio()
        radio.begin_receive(0.002)
        sim.schedule(0.001, radio.begin_receive, 0.002)
        sim.run(until=0.0025)
        assert radio.is_receiving
        sim.run(until=0.004)
        assert radio.state is RadioState.IDLE

    def test_receive_while_transmitting_ignored(self):
        _, radio = make_radio()
        radio.begin_transmit(0.001)
        radio.begin_receive(0.001)
        assert radio.is_transmitting

    def test_sleep_aborts_reception(self):
        sim, radio = make_radio()
        radio.begin_receive(0.01)
        radio.sleep()
        assert radio.state is RadioState.SLEEP
        sim.run(until=0.02)  # the stale end event must not wake it
        assert radio.state is RadioState.SLEEP

    def test_power_off(self):
        _, radio = make_radio()
        radio.power_off()
        assert radio.state is RadioState.OFF
        assert not radio.is_awake

    def test_invalid_airtimes_rejected(self):
        _, radio = make_radio()
        with pytest.raises(ValueError):
            radio.begin_transmit(0.0)
        with pytest.raises(ValueError):
            radio.begin_receive(-1.0)


def build_network(positions, seed=1, path_loss=None):
    """Wire stationary nodes onto a shared channel; returns everything."""
    sim = Simulator()
    streams = RandomStreams(seed)
    channel = BroadcastChannel(
        sim, path_loss or PathLossModel(), streams.get("phy")
    )
    model = EnergyModel.wavelan_2mbps()
    interfaces = []
    inbox = []
    for i, pos in enumerate(positions):
        interface = NetworkInterface(
            sim,
            i,
            StationaryMobility(pos),
            channel,
            model,
            streams.spawn("mac", i),
        )
        interface.on_receive(
            "test", lambda rp: inbox.append((rp.receiver, rp.packet.uid))
        )
        interfaces.append(interface)
    return sim, channel, interfaces, inbox


def make_test_packet(src=0, size=16):
    return Packet(src=src, kind="test", payload="x", payload_bytes=size)


class TestUnmanagedReceive:
    """begin_receive_unmanaged/finish_receive: the coalesced-delivery
    kernel's event-free RX window, billed identically to the managed
    path but without scheduling an rx-end event."""

    def test_enters_rx_without_scheduling_an_event(self):
        sim, radio = make_radio()
        before = sim.pending_count
        radio.begin_receive_unmanaged(0.5)
        assert radio.state is RadioState.RX
        assert sim.pending_count == before

    def test_bills_idle_interval_on_entry(self):
        sim, radio = make_radio()
        sim.schedule(10.0, radio.begin_receive_unmanaged, 0.5)
        sim.run()
        assert radio.meter.state_durations_s[RadioState.IDLE] == 10.0

    def test_finish_bills_rx_and_returns_to_idle(self):
        sim, radio = make_radio()
        sim.schedule(10.0, radio.begin_receive_unmanaged, 0.5)
        sim.schedule(10.5, radio.finish_receive)
        sim.run()
        assert radio.state is RadioState.IDLE
        assert radio.meter.state_durations_s[RadioState.RX] == 0.5

    def test_finish_before_window_end_is_noop(self):
        sim, radio = make_radio()
        radio.begin_receive_unmanaged(0.5)
        # An overlapping frame extended the window; its own delivery
        # will finish the reception.
        radio.begin_receive_unmanaged(0.9)
        sim.schedule(0.5, radio.finish_receive)
        sim.run(until=0.5)
        assert radio.state is RadioState.RX
        sim.schedule(0.4, radio.finish_receive)
        sim.run()
        assert radio.state is RadioState.IDLE
        assert radio.meter.state_durations_s[RadioState.RX] == 0.9

    def test_finish_after_sleep_is_noop(self):
        sim, radio = make_radio()
        radio.begin_receive_unmanaged(0.5)
        radio.sleep()
        sim.schedule(0.5, radio.finish_receive)
        sim.run(until=0.5)
        assert radio.state is RadioState.SLEEP

    def test_ignored_while_transmitting_or_asleep(self):
        sim, radio = make_radio()
        radio.begin_transmit(0.2)
        radio.begin_receive_unmanaged(0.5)
        assert radio.state is RadioState.TX
        sim2, radio2 = make_radio()
        radio2.sleep()
        radio2.begin_receive_unmanaged(0.5)
        assert radio2.state is RadioState.SLEEP

    def test_non_positive_airtime_rejected(self):
        _, radio = make_radio()
        with pytest.raises(ValueError):
            radio.begin_receive_unmanaged(0.0)

    def test_billing_matches_managed_path(self):
        """Same timeline billed through both paths -> identical joules."""
        sim_a, managed = make_radio()
        sim_a.schedule(3.0, managed.begin_receive, 0.5)
        sim_a.run(until=4.0)
        managed.finalize()
        sim_b, unmanaged = make_radio()
        sim_b.schedule(3.0, unmanaged.begin_receive_unmanaged, 0.5)
        sim_b.schedule(3.5, unmanaged.finish_receive)
        sim_b.run(until=4.0)
        unmanaged.finalize()
        assert (
            managed.meter.breakdown.as_dict()
            == unmanaged.meter.breakdown.as_dict()
        )
        assert (
            managed.meter.state_durations_s
            == unmanaged.meter.state_durations_s
        )


class TestBroadcastChannel:
    def test_airtime_scales_with_size(self):
        sim, channel, _, _ = build_network([Vec2(0, 0)])
        small = channel.airtime_s(56)
        large = channel.airtime_s(1500)
        assert large > small
        # 56 bytes at 2 Mbps = 224 us plus the 192 us preamble.
        assert small == pytest.approx(192e-6 + 224e-6)

    def test_nearby_node_receives(self):
        sim, channel, interfaces, inbox = build_network(
            [Vec2(0, 0), Vec2(10, 0)]
        )
        interfaces[0].send_broadcast(make_test_packet())
        sim.run(until=1.0)
        assert [r for r, _ in inbox] == [1]
        assert channel.stats.frames_delivered == 1

    def test_far_node_does_not_receive(self):
        sim, channel, interfaces, inbox = build_network(
            [Vec2(0, 0), Vec2(500, 0)]
        )
        interfaces[0].send_broadcast(make_test_packet())
        sim.run(until=1.0)
        assert inbox == []
        assert channel.stats.frames_below_sensitivity == 1

    def test_sender_does_not_receive_own_frame(self):
        sim, channel, interfaces, inbox = build_network([Vec2(0, 0)])
        interfaces[0].send_broadcast(make_test_packet())
        sim.run(until=1.0)
        assert inbox == []

    def test_sleeping_node_misses_frame(self):
        sim, channel, interfaces, inbox = build_network(
            [Vec2(0, 0), Vec2(10, 0)]
        )
        interfaces[1].sleep()
        interfaces[0].send_broadcast(make_test_packet())
        sim.run(until=1.0)
        assert inbox == []
        assert channel.stats.frames_missed_asleep == 1

    def test_node_sleeping_mid_frame_misses_it(self):
        sim, channel, interfaces, inbox = build_network(
            [Vec2(0, 0), Vec2(10, 0)]
        )
        interfaces[0].send_broadcast(make_test_packet())
        # Sleep in the middle of the frame's airtime.
        sim.schedule(0.0002, interfaces[1].sleep)
        sim.run(until=1.0)
        assert inbox == []

    def test_rssi_attached_to_delivery(self):
        sim, channel, interfaces, _ = build_network(
            [Vec2(0, 0), Vec2(20, 0)]
        )
        got = []
        interfaces[1].on_receive("test", lambda rp: got.append(rp.rssi_dbm))
        interfaces[0].send_broadcast(make_test_packet())
        sim.run(until=1.0)
        assert len(got) == 1
        expected = channel.path_loss.mean_rssi(20.0)
        assert got[0] == pytest.approx(expected, abs=12.0)

    def test_simultaneous_transmissions_collide_at_equidistant_receiver(self):
        # Nodes 0 and 2 both 40 m from node 1; equal power -> no capture.
        positions = [Vec2(0, 0), Vec2(40, 0), Vec2(80, 0)]
        sim, channel, interfaces, inbox = build_network(positions)
        # Bypass the MAC (which would carrier-sense) to force overlap.
        channel.transmit(0, make_test_packet(src=0))
        channel.transmit(2, make_test_packet(src=2))
        sim.run(until=1.0)
        assert all(receiver != 1 for receiver, _ in inbox)
        assert channel.stats.frames_collided >= 1

    def test_capture_strong_frame_survives_weak_interferer(self):
        # Node 1 is 5 m from node 0 but 100 m from node 2: huge SINR.
        positions = [Vec2(0, 0), Vec2(5, 0), Vec2(105, 0)]
        sim, channel, interfaces, inbox = build_network(positions)
        channel.transmit(0, make_test_packet(src=0))
        channel.transmit(2, make_test_packet(src=2))
        sim.run(until=1.0)
        assert (1, channel.stats.frames_sent) or True
        received_by_1 = [uid for receiver, uid in inbox if receiver == 1]
        assert len(received_by_1) == 1

    def test_half_duplex_transmitter_cannot_receive(self):
        sim, channel, interfaces, inbox = build_network(
            [Vec2(0, 0), Vec2(10, 0)]
        )
        channel.transmit(0, make_test_packet(src=0))
        channel.transmit(1, make_test_packet(src=1))
        sim.run(until=1.0)
        assert inbox == []
        assert channel.stats.frames_missed_half_duplex >= 1

    def test_medium_busy_during_transmission(self):
        sim, channel, interfaces, _ = build_network(
            [Vec2(0, 0), Vec2(10, 0)]
        )
        channel.transmit(0, make_test_packet(src=0))
        assert channel.medium_busy(1)

    def test_medium_idle_after_transmission(self):
        sim, channel, interfaces, _ = build_network(
            [Vec2(0, 0), Vec2(10, 0)]
        )
        channel.transmit(0, make_test_packet(src=0))
        sim.run(until=1.0)
        assert not channel.medium_busy(1)

    def test_duplicate_registration_rejected(self):
        sim, channel, interfaces, _ = build_network([Vec2(0, 0)])
        with pytest.raises(ValueError):
            channel.register(
                0,
                StationaryMobility(Vec2(1, 1)),
                interfaces[0].radio,
                ReceiverModel(),
                lambda rp: None,
            )

    def test_energy_charged_for_tx_and_rx(self):
        sim, channel, interfaces, _ = build_network(
            [Vec2(0, 0), Vec2(10, 0)]
        )
        interfaces[0].send_broadcast(make_test_packet())
        sim.run(until=1.0)
        assert interfaces[0].meter.packets_sent == 1
        assert interfaces[1].meter.packets_received == 1
        assert interfaces[0].meter.breakdown.packet_send_j > 0
        assert interfaces[1].meter.breakdown.packet_recv_j > 0
