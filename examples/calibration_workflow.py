#!/usr/bin/env python3
"""The offline calibration phase, step by step (§2.2 and Figure 1).

Shows the workflow a CoCoA deployment runs once per radio/antenna
configuration:

1. drive a measurement campaign over the channel (distance, RSSI pairs),
2. bin by RSSI and fit the distance distribution per bin,
3. inspect the resulting PDF Table — Gaussian bins up to ~40 m, empirical
   histograms beyond, exactly the paper's Figure 1 dichotomy,
4. sanity-check ranging: the table's expected distance versus truth.

Run:
    python examples/calibration_workflow.py
"""

import numpy as np

from repro.core.calibration import build_pdf_table
from repro.net.phy import PathLossModel
from repro.sim.rng import RandomStreams


def ascii_pdf(distribution, width=56, support=180.0) -> str:
    """A terminal sketch of one bin's PDF versus distance."""
    xs = np.linspace(0.0, support, width)
    ys = distribution.pdf(xs)
    top = ys.max()
    levels = " .:-=+*#%@"
    return "".join(
        levels[min(int(v / top * (len(levels) - 1)), len(levels) - 1)]
        for v in ys
    )


def main() -> None:
    path_loss = PathLossModel()
    rng = RandomStreams(2024).get("calibration")

    print("Running the measurement campaign (120000 samples)...")
    result = build_pdf_table(path_loss, rng, n_samples=120_000)
    table = result.table

    print("  decodable samples: %d / %d"
          % (result.n_samples_decodable, result.n_samples_drawn))
    print("  populated RSSI bins: %d (%d Gaussian, %d histogram)"
          % (table.n_bins, result.n_gaussian_bins, result.n_histogram_bins))
    print("  RSSI range: [%d, %d] dBm" % table.rssi_range)

    print("\nPer-bin fits (every 6th bin):")
    print("%-8s %-6s %-10s %-8s %s" % ("RSSI", "kind", "mean d", "std", "n"))
    for i, (rssi, dist) in enumerate(table.items()):
        if i % 6:
            continue
        kind = "gauss" if dist.is_gaussian else "hist"
        print("%-8d %-6s %-10.1f %-8.2f %d"
              % (rssi, kind, dist.mean_m, dist.std_m, dist.n_samples))

    print("\nFigure 1(a) analogue - a near bin (RSSI = -52 dBm):")
    near = table.bin_for(-52.0)
    print("  Gaussian fit: mean %.1f m, sigma %.2f m" % (near.mean_m,
                                                          near.std_m))
    print("  [%s]" % ascii_pdf(near))

    print("\nFigure 1(b) analogue - a far bin (RSSI = -86 dBm):")
    far = table.bin_for(-86.0)
    print("  %s: mean %.1f m, std %.1f m"
          % ("Gaussian" if far.is_gaussian else "Empirical histogram",
             far.mean_m, far.std_m))
    print("  [%s]" % ascii_pdf(far))

    print("\nRanging sanity check (fresh channel samples):")
    check_rng = RandomStreams(7).get("check")
    print("%-12s %-14s %-14s" % ("true d (m)", "sampled RSSI",
                                 "table E[d|RSSI]"))
    for true_d in (5.0, 15.0, 30.0, 60.0, 100.0):
        rssi = float(path_loss.sample_rssi(true_d, check_rng))
        print("%-12.0f %-14.1f %-14.1f"
              % (true_d, rssi, table.expected_distance(rssi)))
    print("\nEach robot stores this table and evaluates Equation (1) "
          "against it for every received beacon.")


if __name__ == "__main__":
    main()
