#!/usr/bin/env python3
"""A mission that goes wrong — and the team that survives it.

The paper deploys CoCoA for disaster response, where robots get crushed,
flipped and drained mid-mission.  This example runs such a mission:

1. a 30-robot team localizes cooperatively with T = 40 s,
2. at t = 120 s the designated Sync robot dies,
3. two more robots (an anchor and an unknown) die later,
4. the failover extension elects a replacement Sync robot (lowest alive
   anchor, decided purely by rank-staggered silence — zero extra
   packets), desynchronized robots re-acquire via resync mode,
5. throughout, survivors keep routing status reports to an operator
   corner over the live network using their CoCoA coordinates.

Run:
    python examples/resilient_deployment.py
"""

import numpy as np

from repro.core import CoCoAConfig
from repro.ext.failures import FailureSchedule
from repro.ext.online_routing import RoutingTeam
from repro.sim.rng import RandomStreams


class ResilientRoutingTeam(RoutingTeam):
    """Online routing plus failure injection (mixin-by-inheritance)."""

    def __init__(self, config, schedule, **kwargs):
        from repro.ext.failures import ResilientTeam

        # Reuse ResilientTeam's machinery by delegation-style composition:
        # RoutingTeam builds the network; we add kills + failover wiring.
        self._failures = schedule
        super().__init__(config, **kwargs)
        # Wire failover exactly as ResilientTeam does.
        self.dead = set()
        self.failovers = {}
        self._failover_threshold = 2
        ResilientTeam._wire_failover(self)
        for node in self.nodes:
            if node.coordinator is not None:
                node.coordinator.resync_after = 3

    def _hook_anchor(self, node, component):
        from repro.ext.failures import ResilientTeam

        ResilientTeam._hook_anchor(self, node, component)

    def kill(self, node_id):
        from repro.ext.failures import ResilientTeam

        ResilientTeam.kill(self, node_id)

    def _sample_metrics(self, count):
        from repro.ext.failures import ResilientTeam

        ResilientTeam._sample_metrics(self, count)

    @property
    def _failover_enabled(self):
        return True

    def run(self):
        for time_s, node_id in self._failures.failures:
            self.sim.schedule_at(time_s, self.kill, node_id, name="failure")
        return super().run()


def main() -> None:
    config = CoCoAConfig(
        n_robots=30,
        n_anchors=10,
        beacon_period_s=40.0,
        duration_s=600.0,
        master_seed=13,
    )
    schedule = FailureSchedule.of((120.0, 0), (260.0, 4), (380.0, 17))
    team = ResilientRoutingTeam(config, schedule)
    rng = RandomStreams(77).get("traffic")
    operator = 29  # the report sink

    def traffic():
        if team.sim.now < 90.0:
            return
        alive = [
            n.node_id
            for n in team.nodes
            if n.node_id not in team.dead and n.node_id != operator
        ]
        for src in rng.choice(alive, size=3, replace=False):
            dest = team.nodes[operator].estimated_position(team.sim.now)
            team.routers[int(src)].send(operator, dest)

    team.on_window(traffic, delay_s=1.2, node_id=operator)
    result = team.run()

    print("Mission: %d robots, T=%.0f s, %.0f simulated minutes"
          % (config.n_robots, config.beacon_period_s,
             config.duration_s / 60.0))
    print("Failures injected: Sync robot @120 s, anchor @260 s, "
          "unknown @380 s\n")

    series = result.mean_error_series()
    for window in range(0, 600, 120):
        seg = series[window : window + 120]
        print("  t=%3d-%3ds: mean localization error %5.1f m"
              % (window, window + 120, float(np.nanmean(seg))))

    acting = [f for f in team.failovers.values() if f.is_acting_sync]
    resync = sum(n.coordinator.resync_periods for n in team.nodes
                 if n.coordinator is not None)
    print("\nFailover: takeovers=%d, acting Sync robot=%s, "
          "resync node-periods=%d"
          % (sum(f.takeovers for f in team.failovers.values()),
             [f.node_id for f in acting], resync))
    print("SYNC messages delivered: %d" % result.syncs_received)

    stats = team.routing_stats()
    print("\nStatus reports to the operator: %d sent, %d delivered (%.0f%%)"
          % (stats.originated, stats.delivered,
             100.0 * stats.delivered / max(stats.originated, 1)))
    print("Team survived: %d/%d robots operational at mission end."
          % (config.n_robots - len(team.dead), config.n_robots))


if __name__ == "__main__":
    main()
