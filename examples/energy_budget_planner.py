#!/usr/bin/env python3
"""Pick the beacon period T for a mission's accuracy and energy budget.

The paper's §4.3.1 take-away is that T trades localization accuracy
against energy, with a sweet spot between 50 and 100 seconds.  A mission
planner has the inverse problem: given an accuracy requirement and a
battery budget, which T (and whether coordination is worth its
complexity) should the team use?

This script sweeps T, prints the trade-off table, and picks the cheapest
configuration that meets the accuracy requirement — the operator-facing
decision the SYNC message's adjustable T/t exists for.

Run:
    python examples/energy_budget_planner.py [accuracy_requirement_m]
"""

import sys
from dataclasses import replace

from repro.core import CoCoAConfig, CoCoATeam
from repro.experiments.metrics import summarize_errors
from repro.experiments.runner import SharedCalibration


def main() -> None:
    accuracy_requirement_m = (
        float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    )
    base = CoCoAConfig(
        n_robots=30,
        n_anchors=15,
        duration_s=600.0,
        v_max=2.0,
        master_seed=3,
    )
    calibration = SharedCalibration()
    periods = (20.0, 50.0, 100.0, 200.0)

    print("Mission: %.0f robots, %.0f min, accuracy requirement %.1f m"
          % (base.n_robots, base.duration_s / 60.0, accuracy_requirement_m))
    print("\n%-8s %-12s %-14s %-14s %-8s" % (
        "T (s)", "error (m)", "E coord (J)", "E idle (J)", "savings"))

    rows = []
    for period in periods:
        coordinated = CoCoATeam(
            replace(base, beacon_period_s=period),
            pdf_table=calibration.table_for(base),
        ).run()
        uncoordinated = CoCoATeam(
            replace(base, beacon_period_s=period, coordination=False),
            pdf_table=calibration.table_for(base),
        ).run()
        summary = summarize_errors(
            coordinated.errors, skip_first_s=min(period, 200.0)
        )
        e_coord = coordinated.total_energy_j()
        e_idle = uncoordinated.total_energy_j()
        rows.append((period, summary.time_average_m, e_coord, e_idle))
        print("%-8.0f %-12.2f %-14.0f %-14.0f %.1fx" % (
            period, summary.time_average_m, e_coord, e_idle,
            e_idle / e_coord))

    feasible = [r for r in rows if r[1] <= accuracy_requirement_m]
    print()
    if not feasible:
        best = min(rows, key=lambda r: r[1])
        print("No configuration meets %.1f m; the most accurate is "
              "T=%.0f s at %.2f m. Consider more anchors (see Figure 10)."
              % (accuracy_requirement_m, best[0], best[1]))
        return
    choice = min(feasible, key=lambda r: r[2])
    print("Recommendation: T = %.0f s -> %.2f m average error at %.0f J "
          "(%.1fx cheaper than leaving radios idle)."
          % (choice[0], choice[1], choice[2], choice[3] / choice[2]))
    print("Broadcast it by having the operator update the Sync robot; "
          "SYNC messages carry T and t to the whole team (§2.3).")


if __name__ == "__main__":
    main()
