#!/usr/bin/env python3
"""Why odometry alone is not enough — the paper's Figures 4 and 5, live.

Part 1 replays Figure 5: one robot drives a fixed multi-turn path; its
dead-reckoned track diverges from the true one a little more at every
turn.

Part 2 replays Figure 4 in miniature: a team dead-reckons for 15 minutes
and the average error grows without bound — the observation that
motivates beacon-based resets in the first place.

Run:
    python examples/odometry_drift_demo.py
"""

import numpy as np

from repro.experiments.figures import run_fig4, run_fig5


def ascii_paths(true_path, est_path, cols=64, rows=20) -> str:
    """Plot both paths in a character grid ('o' true, 'x' estimate)."""
    xs = [p.x for p in true_path + est_path]
    ys = [p.y for p in true_path + est_path]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    grid = [[" "] * cols for _ in range(rows)]

    def plot(path, mark):
        for p in path:
            col = int((p.x - x0) / max(x1 - x0, 1e-9) * (cols - 1))
            row = int((p.y - y0) / max(y1 - y0, 1e-9) * (rows - 1))
            grid[rows - 1 - row][col] = mark

    plot(true_path, "o")
    plot(est_path, "x")
    return "\n".join("".join(line) for line in grid)


def main() -> None:
    print("Part 1 - a single robot's path versus its odometry estimate")
    print("(o = true path, x = dead-reckoned estimate)\n")
    fig5 = run_fig5(speed=1.0, master_seed=4)
    print(ascii_paths(fig5["true_path"], fig5["estimated_path"]))
    print("\npath length %.0f m, final estimate off by %.1f m"
          % (fig5["path_length_m"], fig5["final_error_m"]))
    errors = fig5["errors"]
    marks = np.linspace(0, len(errors) - 1, 8).astype(int)
    print("error along the way: "
          + "  ".join("%.1f" % errors[i] for i in marks) + "  (m)")

    print("\nPart 2 - team-wide drift (Figure 4 in miniature, 15 min)")
    fig4 = run_fig4(v_maxes=(0.5, 2.0), duration_s=900.0, master_seed=4)
    print("%-10s %-12s %-12s %-12s" % ("v_max", "@5 min", "@10 min",
                                       "@15 min"))
    for v_max, data in fig4.items():
        series = data["mean_error"]
        print("%-10.1f %-12.1f %-12.1f %-12.1f"
              % (v_max, series[299], series[599], series[-1]))
    print("\nThe error never stops growing: the robots need an external "
          "reference - which is exactly what CoCoA's beacons provide.")


if __name__ == "__main__":
    main()
