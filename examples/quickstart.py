#!/usr/bin/env python3
"""Quickstart: run a small CoCoA team and read the results.

This builds the paper's system at reduced scale — 20 robots, half of them
anchors, five beacon periods — runs it, and prints the numbers the paper's
evaluation is about: localization error over time and the team's energy
bill, split by cause.

Run:
    python examples/quickstart.py
"""

from repro.core import CoCoAConfig, CoCoATeam


def main() -> None:
    config = CoCoAConfig(
        n_robots=20,
        n_anchors=10,
        beacon_period_s=60.0,  # T: beacon period
        transmit_window_s=3.0,  # t: transmit window
        beacons_per_window=3,  # k
        v_max=2.0,
        duration_s=300.0,
        master_seed=42,
    )
    print("Building team: %d robots (%d anchors), T=%.0fs, t=%.0fs, k=%d"
          % (config.n_robots, config.n_anchors, config.beacon_period_s,
             config.transmit_window_s, config.beacons_per_window))

    team = CoCoATeam(config)
    print("PDF Table calibrated: %d RSSI bins covering [%d, %d] dBm"
          % (team.pdf_table.n_bins, *team.pdf_table.rssi_range))

    result = team.run()

    print("\n--- Localization ---")
    series = result.mean_error_series()
    for minute in range(0, int(config.duration_s), 60):
        window = series[minute : minute + 60]
        print("  t=%3d-%3ds: mean error %6.2f m" % (minute, minute + 60,
                                                    window.mean()))
    print("  time-average error: %.2f m" % result.time_average_error())
    print("  RF fixes produced: %d (windows without a fix: %d)"
          % (result.fixes, result.windows_without_fix))

    print("\n--- Energy (team total: %.1f J) ---" % result.total_energy_j())
    for key, value in result.energy.breakdown.as_dict().items():
        print("  %-14s %10.2f J" % (key, value))

    print("\n--- Network ---")
    stats = result.channel_stats
    print("  beacons sent: %d, frames delivered: %d, collisions: %d"
          % (result.beacons_sent, stats.frames_delivered,
             stats.frames_collided))
    print("  SYNC messages received across the team: %d"
          % result.syncs_received)


if __name__ == "__main__":
    main()
