#!/usr/bin/env python3
"""Search and rescue: the paper's motivating application, end to end.

    "In search and rescue operation, the location of a survivor needs to
    be indicated so that additional personnel can be dispatched to the
    area."  (§1)
    "The average localization error is about 8 m ... survivors can be
    located within 8 m.  Pinpointing the exact location of the survivor is
    then trivial once more resources are deployed to the area."  (§6)

The scenario: a robot team sweeps a disaster area; survivors are at
unknown spots.  When a robot passes close to a survivor, it detects them
(a proximity sensor stand-in) and reports the survivor at *its own
estimated position*.  The quality of the dispatch therefore equals the
robot's localization error at detection time — exactly what CoCoA bounds.

The script also routes each report to the operator station with greedy
geographic forwarding over CoCoA coordinates, the §6 application claim.

Run:
    python examples/search_and_rescue.py
"""

from repro.core import CoCoAConfig, CoCoATeam
from repro.ext.georouting import greedy_route
from repro.multicast.mesh import connectivity_graph
from repro.sim.rng import RandomStreams
from repro.util.geometry import Vec2

DETECTION_RADIUS_M = 8.0
LINK_RANGE_M = 90.0


def main() -> None:
    config = CoCoAConfig(
        n_robots=30,
        n_anchors=12,
        beacon_period_s=60.0,
        duration_s=600.0,
        v_max=2.0,
        master_seed=11,
    )
    rng = RandomStreams(99).get("survivors")
    survivors = [
        Vec2(float(rng.uniform(10, 190)), float(rng.uniform(10, 190)))
        for _ in range(8)
    ]
    operator_station = Vec2(5.0, 5.0)

    team = CoCoATeam(config)
    reports = []
    found = set()

    def sweep() -> None:
        """Every 5 s, each robot checks its proximity sensor."""
        t = team.sim.now
        for node in team.nodes:
            position = node.true_position(t)
            for idx, survivor in enumerate(survivors):
                if idx in found:
                    continue
                if position.distance_to(survivor) <= DETECTION_RADIUS_M:
                    found.add(idx)
                    reported_at = node.estimated_position(t)
                    reports.append(
                        (t, idx, node.node_id, survivor, reported_at)
                    )
        if t + 5.0 < config.duration_s:
            team.sim.schedule(5.0, sweep)

    team.sim.schedule(5.0, sweep)
    team.run()

    print("Deployed %d robots over %.0f m x %.0f m; %d survivors hidden."
          % (config.n_robots, config.area.width, config.area.height,
             len(survivors)))
    print("Found %d/%d survivors in %.0f simulated minutes.\n"
          % (len(found), len(survivors), config.duration_s / 60.0))

    print("%-6s %-9s %-7s %-22s %s" % (
        "t(s)", "survivor", "robot", "reported position", "report error"))
    errors = []
    for t, idx, robot, survivor, reported in reports:
        error = reported.distance_to(survivor)
        errors.append(error)
        print("%-6.0f #%-8d %-7d (%6.1f, %6.1f) m       %5.1f m"
              % (t, idx, robot, reported.x, reported.y, error))
    if errors:
        print("\nMean report error: %.1f m (the paper argues <~8 m suffices"
              " to dispatch responders)" % (sum(errors) / len(errors)))

    # Route the reports to the operator station over CoCoA coordinates.
    t = team.sim.now
    true_coords = {n.node_id: n.true_position(t) for n in team.nodes}
    est_coords = {n.node_id: n.estimated_position(t) for n in team.nodes}
    station_id = -1
    true_coords[station_id] = operator_station
    est_coords[station_id] = operator_station
    graph = connectivity_graph(true_coords, LINK_RANGE_M)

    delivered = 0
    reporters = {robot for _, _, robot, _, _ in reports}
    for robot in sorted(reporters):
        path = greedy_route(graph, est_coords, robot, station_id)
        if path is not None:
            delivered += 1
            print("robot %2d -> operator: %d hops via %s"
                  % (robot, len(path) - 1, path))
        else:
            print("robot %2d -> operator: greedy routing failed "
                  "(local minimum)" % robot)
    if reporters:
        print("\nGeographic routing over CoCoA coordinates delivered "
              "%d/%d reports." % (delivered, len(reporters)))


if __name__ == "__main__":
    main()
