"""Collect full-scale (paper-fidelity) results for EXPERIMENTS.md."""
import json, time
import numpy as np
from repro.experiments.figures import (
    run_fig1, run_fig4, run_fig5, run_fig6, run_fig7, run_fig8, run_fig9,
    run_fig10, run_mrmm_ablation)
from repro.experiments.runner import SharedCalibration

out = {}
cal = SharedCalibration()
t0 = time.time()

def log(msg):
    print('[%6.0fs] %s' % (time.time() - t0, msg), flush=True)

r = run_fig1()
out['fig1'] = {str(k): {kk: (float(vv) if isinstance(vv, (int, float)) else str(vv))
               for kk, vv in v.items() if kk not in ('pdf_x_m', 'pdf_y')}
               for k, v in r['bins'].items()}
log('fig1 done')

r = run_fig4()
out['fig4'] = {str(v): {'avg': d['summary'].time_average_m, 'final': d['summary'].final_m,
               'max': d['summary'].max_m} for v, d in r.items()}
log('fig4 done')

r = run_fig5()
out['fig5'] = {'final_error_m': float(r['final_error_m']), 'path_length_m': float(r['path_length_m'])}
log('fig5 done')

r = run_fig6(calibration=cal)
out['fig6'] = {str(T): {'avg': d['summary'].time_average_m, 'max': d['summary'].max_m}
               for T, d in r.items()}
log('fig6 done')

r = run_fig7(calibration=cal)
out['fig7'] = {str(v): {m: {'avg': d['summary'].time_average_m, 'final': d['summary'].final_m}
               for m, d in modes.items()} for v, modes in r.items()}
log('fig7 done')

r = run_fig8(calibration=cal)
out['fig8'] = {name: {'time_s': float(d['time_s']), 'median': d['median_m'], 'p90': d['p90_m'],
               'frac_lt_10m': float((d['errors'] < 10.0).mean())} for name, d in r.items()}
log('fig8 done')

r = run_fig9(calibration=cal)
out['fig9'] = {str(T): {'avg_err': d['summary'].time_average_m,
               'E_coord': d['energy_coordinated_j'], 'E_nocoord': d['energy_uncoordinated_j'],
               'ratio': d['energy_ratio']} for T, d in r.items()}
log('fig9 done')

r = run_fig10(calibration=cal)
out['fig10'] = {str(c): {'avg': d['summary'].time_average_m, 'max': d['summary'].max_m,
                'no_fix': d['windows_without_fix']} for c, d in r.items()}
log('fig10 done')

r = run_mrmm_ablation(duration_s=1800.0, calibration=cal)
out['mrmm'] = {p: {'ctrl': d['control_packets'], 'data_fwd': d['data_forwarded'],
               'suppressed': d['forwards_suppressed'], 'syncs': d['syncs_received'],
               'err': d['error_summary'].time_average_m} for p, d in r.items()}
log('mrmm done')

with open('/root/repo/results/full_results.json', 'w') as f:
    json.dump(out, f, indent=2)
log('ALL DONE')
