"""Collect full-scale (paper-fidelity) results for EXPERIMENTS.md.

Runs every figure's scenarios through the sweep orchestrator: pass
``--jobs N`` to fan the independent runs of each figure out over worker
processes, and rely on the content-addressed result cache (on by
default, under ``.repro_cache/``) to make interrupted or repeated
collections resume without re-simulating finished scenarios.
"""
import argparse
import json
import os
import time

from repro.experiments.figures import (
    run_fig1, run_fig4, run_fig5, run_fig6, run_fig7, run_fig8, run_fig9,
    run_fig10, run_mrmm_ablation)
from repro.experiments.runner import SharedCalibration
from repro.orchestrator.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.orchestrator.progress import ProgressPrinter

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--jobs", type=int, default=1,
                    help="worker processes per figure sweep")
parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                    help="result cache directory")
parser.add_argument("--no-cache", action="store_true",
                    help="always re-simulate, never read or write the cache")
parser.add_argument("--output",
                    default=os.path.join(
                        os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))),
                        "results", "full_results.json"),
                    help="output JSON path")
args = parser.parse_args()

out = {}
cal = SharedCalibration()
cache = None if args.no_cache else ResultCache(root=args.cache_dir)
progress = ProgressPrinter()
sweep_kw = dict(jobs=args.jobs, cache=cache, progress=progress)
t0 = time.time()


def log(msg):
    print('[%6.0fs] %s' % (time.time() - t0, msg), flush=True)


r = run_fig1()
out['fig1'] = {str(k): {kk: (float(vv) if isinstance(vv, (int, float)) else str(vv))
               for kk, vv in v.items() if kk not in ('pdf_x_m', 'pdf_y')}
               for k, v in r['bins'].items()}
log('fig1 done')

r = run_fig4(**sweep_kw)
out['fig4'] = {str(v): {'avg': d['summary'].time_average_m, 'final': d['summary'].final_m,
               'max': d['summary'].max_m} for v, d in r.items()}
log('fig4 done')

r = run_fig5()
out['fig5'] = {'final_error_m': float(r['final_error_m']), 'path_length_m': float(r['path_length_m'])}
log('fig5 done')

r = run_fig6(calibration=cal, **sweep_kw)
out['fig6'] = {str(T): {'avg': d['summary'].time_average_m, 'max': d['summary'].max_m}
               for T, d in r.items()}
log('fig6 done')

r = run_fig7(calibration=cal, **sweep_kw)
out['fig7'] = {str(v): {m: {'avg': d['summary'].time_average_m, 'final': d['summary'].final_m}
               for m, d in modes.items()} for v, modes in r.items()}
log('fig7 done')

r = run_fig8(calibration=cal)
out['fig8'] = {name: {'time_s': float(d['time_s']), 'median': d['median_m'], 'p90': d['p90_m'],
               'frac_lt_10m': float((d['errors'] < 10.0).mean())} for name, d in r.items()}
log('fig8 done')

r = run_fig9(calibration=cal, **sweep_kw)
out['fig9'] = {str(T): {'avg_err': d['summary'].time_average_m,
               'E_coord': d['energy_coordinated_j'], 'E_nocoord': d['energy_uncoordinated_j'],
               'ratio': d['energy_ratio']} for T, d in r.items()}
log('fig9 done')

r = run_fig10(calibration=cal, **sweep_kw)
out['fig10'] = {str(c): {'avg': d['summary'].time_average_m, 'max': d['summary'].max_m,
                'no_fix': d['windows_without_fix']} for c, d in r.items()}
log('fig10 done')

r = run_mrmm_ablation(duration_s=1800.0, calibration=cal, **sweep_kw)
out['mrmm'] = {p: {'ctrl': d['control_packets'], 'data_fwd': d['data_forwarded'],
               'suppressed': d['forwards_suppressed'], 'syncs': d['syncs_received'],
               'err': d['error_summary'].time_average_m} for p, d in r.items()}
log('mrmm done')

if cache is not None:
    log('cache: %d hits, %d misses, %d stored under %s'
        % (cache.stats.hits, cache.stats.misses, cache.stats.stores,
           cache.root))
os.makedirs(os.path.dirname(args.output), exist_ok=True)
with open(args.output, 'w') as f:
    json.dump(out, f, indent=2)
log('ALL DONE -> %s' % args.output)
