"""Setup shim.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works through the legacy setuptools path in offline
environments that lack the ``wheel`` package required by PEP 517
editable builds.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7", "networkx>=2.6"],
)
