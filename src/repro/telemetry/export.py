"""Telemetry exporters: JSONL event stream and Prometheus-style text.

Three output shapes cover the consumers we have:

- :func:`write_jsonl` / :func:`append_jsonl` — a line-per-record stream
  (job snapshots, sweep summaries, span dumps) that tooling can tail,
  grep and ``jq``.  Keys are sorted so diffs are stable.
- :func:`prometheus_text` — the ``# TYPE``-annotated exposition format,
  for scraping a dump into existing dashboards.
- the human-readable run report lives in
  :mod:`repro.telemetry.report` (it needs rendering policy, not just
  serialization).
"""

from __future__ import annotations

import json
import re
from typing import IO, Iterable, List, Mapping, Optional, Union

from repro.telemetry.registry import Histogram, MetricsRegistry
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.telemetry.spans import SpanTracer

__all__ = [
    "append_jsonl",
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "span_records",
]

_INVALID_PROM_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _dump(record: Mapping) -> str:
    return json.dumps(record, sort_keys=True, default=str)


def append_jsonl(handle: IO[str], records: Iterable[Mapping]) -> int:
    """Write ``records`` as JSON lines to an open handle; returns the
    record count."""
    n = 0
    for record in records:
        handle.write(_dump(record) + "\n")
        n += 1
    return n


def write_jsonl(path: str, records: Iterable[Mapping], mode: str = "w") -> int:
    """Write (or with ``mode='a'`` append) JSON lines to ``path``."""
    with open(path, mode) as handle:
        return append_jsonl(handle, records)


def read_jsonl(path: str) -> List[dict]:
    """Parse a JSONL file, skipping blank/corrupt lines (best effort —
    a half-written tail line must not take the report down with it)."""
    out: List[dict] = []
    with open(path) as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                continue
            if isinstance(record, dict):
                out.append(record)
    return out


def _prom_name(name: str, prefix: str) -> str:
    return _INVALID_PROM_CHARS.sub("_", prefix + name)


def _prom_type(name: str) -> str:
    """Classify a flattened metric name for the ``# TYPE`` annotation."""
    if name.endswith(("_p50", "_p90", "_fraction", "_depth", "_rate")):
        return "gauge"
    if name.startswith(("run_", "sim_max")):
        return "gauge"
    return "counter"


def prometheus_text(
    source: Union[TelemetrySnapshot, MetricsRegistry, Mapping[str, float]],
    prefix: str = "repro_",
) -> str:
    """Render metrics in the Prometheus exposition format.

    Accepts a snapshot, a registry (whose histograms keep their bucket
    counts and are rendered with ``le`` labels) or any flat mapping.
    """
    lines: List[str] = []
    histograms: List[Histogram] = []
    if isinstance(source, MetricsRegistry):
        metrics = source.metrics()
        histograms = list(source._histograms.values())
        hist_flat_suffixes = ("_count", "_sum", "_p50", "_p90")
        hist_names = {h.name for h in histograms}
        metrics = {
            name: value
            for name, value in metrics.items()
            if not (
                name.endswith(hist_flat_suffixes)
                and name.rsplit("_", 1)[0] in hist_names
            )
        }
    elif isinstance(source, TelemetrySnapshot):
        metrics = dict(source.sorted_items())
    else:
        metrics = dict(sorted(source.items()))

    for name, value in metrics.items():
        prom = _prom_name(name, prefix)
        lines.append("# TYPE %s %s" % (prom, _prom_type(name)))
        lines.append("%s %s" % (prom, repr(float(value))))
    for histogram in sorted(histograms, key=lambda h: h.name):
        prom = _prom_name(histogram.name, prefix)
        lines.append("# TYPE %s histogram" % prom)
        cumulative = 0
        for edge, count in zip(histogram.edges, histogram.bucket_counts):
            cumulative += count
            lines.append('%s_bucket{le="%s"} %d' % (prom, edge, cumulative))
        lines.append('%s_bucket{le="+Inf"} %d' % (prom, histogram.count))
        lines.append("%s_sum %s" % (prom, repr(histogram.sum)))
        lines.append("%s_count %d" % (prom, histogram.count))
    return "\n".join(lines) + ("\n" if lines else "")


def span_records(
    tracer: SpanTracer, name: Optional[str] = None
) -> List[dict]:
    """Spans as JSONL-ready records (optionally filtered by span name)."""
    return [
        dict(span.as_record(), record="span")
        for span in tracer.records(name)
    ]
