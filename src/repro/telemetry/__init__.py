"""Unified telemetry: metrics registry, span tracing, run reports.

The package sits below every instrumented layer (sim, net, core, energy,
multicast, orchestrator) and imports none of them — subsystems hand it
plain values and duck-typed stats objects.
"""

from repro.telemetry.collect import (
    DEFAULT_MAX_SPANS,
    Telemetry,
    collect_team_snapshot,
)
from repro.telemetry.export import (
    append_jsonl,
    prometheus_text,
    read_jsonl,
    span_records,
    write_jsonl,
)
from repro.telemetry.registry import (
    COUNT_EDGES,
    DISTANCE_EDGES_M,
    DURATION_EDGES_S,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    global_registry,
    set_global_registry,
)
from repro.telemetry.report import render_report
from repro.telemetry.snapshot import (
    LAST_METRICS,
    MAX_METRICS,
    TelemetrySnapshot,
    merge_snapshots,
)
from repro.telemetry.spans import Span, SpanTracer

__all__ = [
    "Telemetry",
    "collect_team_snapshot",
    "DEFAULT_MAX_SPANS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "global_registry",
    "set_global_registry",
    "DURATION_EDGES_S",
    "DISTANCE_EDGES_M",
    "COUNT_EDGES",
    "Span",
    "SpanTracer",
    "TelemetrySnapshot",
    "merge_snapshots",
    "MAX_METRICS",
    "LAST_METRICS",
    "append_jsonl",
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "span_records",
    "render_report",
]
