"""Metric primitives and the scoped metrics registry.

A :class:`MetricsRegistry` owns named :class:`Counter`, :class:`Gauge` and
:class:`Histogram` instruments.  Registries are *explicitly scoped*: a run
(or a sweep) constructs its own, so two concurrent scenario runs never
share metric state.  A process-wide default exists for code that has no
natural owner to thread a registry through (the orchestrator's sweep
accounting); it starts as the :data:`NULL_REGISTRY` no-op shim, so a
process that never enables telemetry pays a single attribute lookup and a
no-op call per instrumentation point — nothing else.

Determinism rules (regression-tested):

- instruments never read wall-clocks, never consume RNG and never
  schedule simulation events — observing a value is pure arithmetic;
- histogram bucket edges are fixed at construction, so two runs of the
  same scenario bucket identically regardless of the data order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DURATION_EDGES_S",
    "DISTANCE_EDGES_M",
    "COUNT_EDGES",
    "global_registry",
    "set_global_registry",
]

#: Fixed bucket edges for wall/sim durations in seconds (log-ish spacing).
DURATION_EDGES_S: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 600.0,
)

#: Fixed bucket edges for distances/spreads in metres.
DISTANCE_EDGES_M: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 15.0, 20.0, 30.0, 50.0, 100.0,
)

#: Fixed bucket edges for small event counts (beacons per window, ...).
COUNT_EDGES: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0,
)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(
                "counter %s cannot decrease (amount=%r)" % (self.name, amount)
            )
        self.value += amount

    def __repr__(self) -> str:
        return "Counter(%s=%g)" % (self.name, self.value)


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-water-mark gauges)."""
        if value > self.value:
            self.value = float(value)

    def add(self, delta: float) -> None:
        """Move the gauge by ``delta`` (live up/down counts: sessions,
        robots — increment on create, decrement on evict)."""
        self.value += float(delta)

    def __repr__(self) -> str:
        return "Gauge(%s=%g)" % (self.name, self.value)


class Histogram:
    """A fixed-bucket histogram with cumulative-style quantile estimates.

    Bucket edges are frozen at construction (*determinism*: the same
    observations always produce the same bucket counts, independent of
    arrival order or platform).  An observation larger than the last edge
    lands in the implicit overflow bucket.
    """

    __slots__ = ("name", "edges", "bucket_counts", "count", "sum", "_min", "_max")

    def __init__(
        self, name: str, edges: Sequence[float] = DURATION_EDGES_S
    ) -> None:
        if not edges:
            raise ValueError("histogram %s needs at least one edge" % name)
        ordered = tuple(float(e) for e in edges)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                "histogram %s edges must be strictly increasing: %r"
                % (name, edges)
            )
        self.name = name
        self.edges = ordered
        self.bucket_counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        # Linear scan: the edge lists are short (<= ~20) and a branchless
        # bisect buys nothing at this size while costing an import.
        index = 0
        for edge in self.edges:
            if value <= edge:
                break
            index += 1
        self.bucket_counts[index] += 1
        self.count += 1
        self.sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation inside the
        bucket that contains it.

        The estimate is exact at bucket edges and within one bucket width
        elsewhere — plenty for progress lines and reports.  Returns 0.0
        with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % q)
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = self._min if self._min is not None else 0.0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            upper = (
                self.edges[index]
                if index < len(self.edges)
                else (self._max if self._max is not None else self.edges[-1])
            )
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                return lower + (min(upper, self._max or upper) - lower) * fraction
            cumulative += bucket_count
            lower = upper
        return self._max if self._max is not None else 0.0

    def __repr__(self) -> str:
        return "Histogram(%s, n=%d, mean=%.4g)" % (
            self.name, self.count, self.mean,
        )


class MetricsRegistry:
    """A named, memoizing home for instruments.

    ``counter(name)`` (and friends) return the *same* instrument on every
    call, so instrumentation sites need no module-level instrument
    variables — asking the registry is cheap and allocation-free after
    the first call.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, edges: Sequence[float] = DURATION_EDGES_S
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, edges)
        return instrument

    def counters(self) -> Iterable[Counter]:
        return self._counters.values()

    def metrics(self) -> Dict[str, float]:
        """Flatten every instrument into a sorted scalar mapping.

        Histograms expand into ``<name>_count`` / ``<name>_sum`` /
        ``<name>_p50`` / ``<name>_p90`` — the scalars reports and JSONL
        streams want; the raw bucket counts stay on the instrument for
        exporters that need them.
        """
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name + "_count"] = float(histogram.count)
            out[name + "_sum"] = histogram.sum
            out[name + "_p50"] = histogram.quantile(0.5)
            out[name + "_p90"] = histogram.quantile(0.9)
        return dict(sorted(out.items()))


class _NullInstrument:
    """Absorbs every instrument operation at near-zero cost."""

    __slots__ = ()
    name = "null"
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    edges: Tuple[float, ...] = ()
    bucket_counts: List[int] = []

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled-telemetry shim: every instrument is a shared no-op.

    Instrumentation sites can hold a reference and call through without
    any ``if enabled`` branches; the benchmark suite verifies the
    overhead is within noise of not instrumenting at all.
    """

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, edges: Sequence[float] = DURATION_EDGES_S
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counters(self) -> Tuple:
        return ()

    def metrics(self) -> Dict[str, float]:
        return {}


#: The shared disabled-mode shim.
NULL_REGISTRY = NullRegistry()

_global_registry = NULL_REGISTRY


def global_registry():
    """The process-wide default registry (the no-op shim until enabled).

    Only code with no natural scope (orchestrator-level accounting) should
    fall back to this; simulation components always receive an explicit
    registry so concurrent runs cannot interleave metrics.
    """
    return _global_registry


def set_global_registry(registry) -> None:
    """Install (or, with :data:`NULL_REGISTRY`, disable) the process-wide
    default registry.  Returns nothing; passing ``None`` restores the
    shim."""
    global _global_registry
    _global_registry = registry if registry is not None else NULL_REGISTRY
