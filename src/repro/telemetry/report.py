"""The human-readable end-of-run / end-of-sweep telemetry report.

:func:`render_report` turns a (possibly merged) snapshot plus optional
orchestrator-level records into the per-subsystem text summary the
``repro report`` subcommand prints.  Derived ratios (delivery rate,
sleep fraction, cache hit rate, forwarding ratio) are computed here from
the raw sums, never stored in snapshots — see
:mod:`repro.telemetry.snapshot` for why.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.telemetry.snapshot import TelemetrySnapshot

__all__ = ["render_report"]


def _fmt(value: float) -> str:
    """Integers without decimals, everything else compactly."""
    if value == int(value) and abs(value) < 1e15:
        return "%d" % int(value)
    return "%.3g" % value


def _pct(numerator: float, denominator: float) -> str:
    if denominator <= 0:
        return "n/a"
    return "%.1f%%" % (100.0 * numerator / denominator)


def _section(title: str, rows: Sequence[str]) -> List[str]:
    lines = [title]
    lines.extend("  " + row for row in rows)
    return lines


def _drops_row(snapshot: TelemetrySnapshot) -> str:
    causes = (
        ("below-sensitivity", "net_drops_below_sensitivity"),
        ("collided", "net_drops_collided"),
        ("asleep", "net_drops_asleep"),
        ("half-duplex", "net_drops_half_duplex"),
        ("jammed", "net_drops_jammed"),
        ("brownout", "net_drops_brownout"),
        ("crc", "net_drops_crc"),
    )
    return "drops by cause: " + ", ".join(
        "%s %s" % (label, _fmt(snapshot.get(key))) for label, key in causes
    )


def render_report(
    snapshot: TelemetrySnapshot,
    sweep: Optional[Mapping[str, object]] = None,
    title: str = "telemetry report",
) -> str:
    """Render the per-subsystem summary.

    Args:
        snapshot: merged run metrics (``snapshot.n_runs`` runs).
        sweep: optional orchestrator-level record — the mapping written
            by :meth:`~repro.orchestrator.cache.ResultCache.record_sweep`
            (``jobs``, ``cache_hits``, ``cache_misses``, ``retried``,
            ``wall_s``, ``n_workers``, ``job_wall_p50_s``,
            ``job_wall_p90_s``).
        title: report heading.
    """
    g = snapshot.get
    lines: List[str] = [
        "%s — %d run%s aggregated"
        % (title, snapshot.n_runs, "" if snapshot.n_runs == 1 else "s"),
        "",
    ]

    sent = g("net_frames_sent")
    offered = g("net_frames_offered")
    delivered = g("net_frames_delivered")
    lines += _section("network", [
        "frames sent %s, offered %s, delivered %s (%s of offers)"
        % (_fmt(sent), _fmt(offered), _fmt(delivered),
           _pct(delivered, offered)),
        _drops_row(snapshot),
        "corrupted-but-accepted %s, airtime %.3f s"
        % (_fmt(g("net_frames_corrupted")), g("net_airtime_s")),
    ])

    heard = g("estimator_beacons_heard")
    lines += _section("estimator", [
        "beacons heard %s, gated %s, quarantined %s"
        % (_fmt(heard), _fmt(g("estimator_beacons_gated")),
           _fmt(g("estimator_beacons_quarantined"))),
        "fixes %s, windows without fix %s"
        % (_fmt(g("estimator_fixes")),
           _fmt(g("estimator_windows_without_fix"))),
        "watchdog resets %s, residual suspicions %s"
        % (_fmt(g("estimator_watchdog_resets")),
           _fmt(g("estimator_residual_suspicions"))),
    ])

    state_s = {
        key: g("radio_%s_s" % key) for key in ("sleep", "idle", "tx", "rx")
    }
    total_s = sum(state_s.values()) + g("radio_off_s")
    lines += _section("radio", [
        "sleep fraction %s (sleep %.0f s / awake %.0f s node-seconds)"
        % (_pct(state_s["sleep"], total_s), state_s["sleep"],
           state_s["idle"] + state_s["tx"] + state_s["rx"]),
        "idle %s, tx %s, rx %s, transitions %s"
        % (_pct(state_s["idle"], total_s), _pct(state_s["tx"], total_s),
           _pct(state_s["rx"], total_s), _fmt(g("radio_transitions"))),
    ])

    lines += _section("energy", [
        "total %.2f J (tx %.2f, rx %.2f, idle %.2f, sleep %.2f, "
        "packets %.2f, transitions %.2f)"
        % (g("energy_total_j"), g("energy_tx_j"), g("energy_rx_j"),
           g("energy_idle_j"), g("energy_sleep_j"),
           g("energy_packet_send_j") + g("energy_packet_recv_j"),
           g("energy_transition_j")),
    ])

    rebuilds = g("multicast_mesh_rebuilds")
    forwarded = g("multicast_data_forwarded")
    delivered_mc = g("multicast_data_delivered")
    lines += _section("multicast", [
        "mesh rebuilds %s, route switches %s, jr sent %s"
        % (_fmt(rebuilds), _fmt(g("multicast_route_switches")),
           _fmt(g("multicast_jr_sent"))),
        "data forwarded %s, delivered %s (%.2f forwards per delivery), "
        "suppressed %s"
        % (_fmt(forwarded), _fmt(delivered_mc),
           forwarded / delivered_mc if delivered_mc else 0.0,
           _fmt(g("multicast_forwards_suppressed"))),
        "syncs received %s" % _fmt(g("coordinator_syncs_received")),
    ])

    lines += _section("simulation", [
        "events processed %s, cancelled %s, max queue depth %s"
        % (_fmt(g("sim_events_processed")), _fmt(g("sim_events_cancelled")),
           _fmt(g("sim_max_queue_depth"))),
        "windows run %s, beacons sent %s"
        % (_fmt(g("coordinator_windows_run")), _fmt(g("beacons_sent"))),
    ])

    constraint_hits = snapshot.metrics.get("kernel_cache_constraint_hits")
    if constraint_hits is not None:
        ch = float(constraint_hits)
        cm = g("kernel_cache_constraint_misses")
        dh = g("kernel_cache_distance_hits")
        dm = g("kernel_cache_distance_misses")
        lines += _section("kernel cache", [
            "constraint fields: hits %s, misses %s (hit rate %s)"
            % (_fmt(ch), _fmt(cm), _pct(ch, ch + cm)),
            "distance fields: hits %s, misses %s (hit rate %s)"
            % (_fmt(dh), _fmt(dm), _pct(dh, dh + dm)),
            "evictions %s" % _fmt(g("kernel_cache_evictions")),
        ])

    if sweep is not None:
        hits = float(sweep.get("cache_hits", 0) or 0)
        misses = float(sweep.get("cache_misses", 0) or 0)
        rows = [
            "jobs %s, cache hits %s, misses %s (hit rate %s)"
            % (_fmt(float(sweep.get("jobs", 0) or 0)), _fmt(hits),
               _fmt(misses), _pct(hits, hits + misses)),
            "retried %s, workers %s, wall %.1f s"
            % (_fmt(float(sweep.get("retried", 0) or 0)),
               _fmt(float(sweep.get("n_workers", 1) or 1)),
               float(sweep.get("wall_s", 0.0) or 0.0)),
        ]
        p50 = sweep.get("job_wall_p50_s")
        p90 = sweep.get("job_wall_p90_s")
        if p50 is not None and p90 is not None:
            rows.append(
                "job wall p50 %.2f s, p90 %.2f s" % (float(p50), float(p90))
            )
        cpu = snapshot.metrics.get("orchestrator_job_cpu_s")
        if cpu is not None:
            rows.append("job cpu total %.2f s" % cpu)
        lines += _section("orchestrator", rows)

    tracer_spans = snapshot.metrics.get("trace_spans_recorded")
    if tracer_spans is not None:
        lines += _section("tracing", [
            "spans recorded %s, dropped %s"
            % (_fmt(tracer_spans), _fmt(g("trace_spans_dropped"))),
        ])
    return "\n".join(lines) + "\n"
