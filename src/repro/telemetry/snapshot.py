"""The portable end-of-run metric record.

A :class:`TelemetrySnapshot` is the frozen, picklable form of a run's
metrics: a flat ``{metric_name: value}`` mapping.  It rides inside
:class:`~repro.core.team.TeamResult`, so sweep results — including ones
answered from the on-disk cache — always carry their telemetry, and a
``repro report`` over a cached sweep needs no re-simulation.

Aggregation semantics are by metric name: almost everything is a sum
(counters, durations, joules); names listed in :data:`MAX_METRICS` merge
by maximum (high-water marks like queue depth), names in
:data:`LAST_METRICS` keep the last value seen (per-run configuration
echoes).  Derived ratios (delivery rate, sleep fraction, cache hit rate)
are intentionally *not* stored — they are recomputed from the merged raw
sums at render time, which keeps merging associative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

__all__ = ["TelemetrySnapshot", "MAX_METRICS", "LAST_METRICS", "merge_snapshots"]

#: Metrics that merge by maximum instead of sum.
MAX_METRICS = frozenset({
    "sim_max_queue_depth",
})

#: Metrics that merge by keeping the most recent value.
LAST_METRICS = frozenset({
    "run_duration_s",
    "run_n_robots",
    "run_n_anchors",
})


@dataclass
class TelemetrySnapshot:
    """A flat metric mapping captured at the end of one run (or merged
    over several)."""

    metrics: Dict[str, float] = field(default_factory=dict)
    #: Runs merged into this snapshot (1 for a single run's own record).
    n_runs: int = 1

    def get(self, name: str, default: float = 0.0) -> float:
        return self.metrics.get(name, default)

    def merge(self, other: "TelemetrySnapshot") -> None:
        """Fold ``other`` into this snapshot in place."""
        for name, value in other.metrics.items():
            if name in MAX_METRICS:
                current = self.metrics.get(name)
                if current is None or value > current:
                    self.metrics[name] = value
            elif name in LAST_METRICS:
                self.metrics[name] = value
            else:
                self.metrics[name] = self.metrics.get(name, 0.0) + value
        self.n_runs += other.n_runs

    def sorted_items(self):
        return sorted(self.metrics.items())

    def as_record(self) -> Dict[str, object]:
        """JSON-serializable form for the JSONL exporter."""
        return {"n_runs": self.n_runs, "metrics": dict(self.sorted_items())}

    @classmethod
    def from_mapping(
        cls, metrics: Mapping[str, float], n_runs: int = 1
    ) -> "TelemetrySnapshot":
        return cls(metrics=dict(metrics), n_runs=n_runs)


def merge_snapshots(
    snapshots: Iterable[TelemetrySnapshot],
) -> TelemetrySnapshot:
    """Merge any number of snapshots into a fresh one (0 runs if empty)."""
    merged = TelemetrySnapshot(metrics={}, n_runs=0)
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged
