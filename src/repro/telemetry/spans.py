"""Parent-linked spans over simulation time.

:class:`SpanTracer` generalizes the original flat
:class:`~repro.sim.trace.TraceRecord` stream into *spans*: named
intervals of simulation time with parent links, so a beacon round can own
its per-node receive events, which in turn annotate the Bayes update that
consumed them.  A point event is simply a span whose end equals its
start.

The tracer is deliberately passive: recording a span allocates one small
object and appends to a deque — it never schedules events, never reads
RNG, and its timestamps are the *simulation* clock values the caller
passes in, so enabling tracing cannot perturb a run (the determinism
regression test holds this line).

Memory is bounded: construct with ``max_records`` to keep a ring buffer
of the most recent records and count the evicted ones in
:attr:`SpanTracer.dropped_count` — a week-long soak with tracing enabled
degrades to a sliding window instead of exhausting RAM.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["Span", "SpanTracer"]


class Span:
    """One named interval (or point event) on the simulation time-line."""

    __slots__ = ("span_id", "parent_id", "name", "node", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        name: str,
        start: float,
        node: Optional[int] = None,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs if attrs is not None else {}

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration_s(self) -> float:
        """Simulation-time length (0.0 for point events / open spans)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def as_record(self) -> Dict[str, Any]:
        """JSON-serializable form (sorted keys are the exporter's job)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return "Span(#%d %s node=%s t=[%.3f, %s])" % (
            self.span_id,
            self.name,
            self.node,
            self.start,
            "%.3f" % self.end if self.end is not None else "open",
        )


class SpanTracer:
    """Collects :class:`Span` records, optionally in a bounded ring.

    Args:
        max_records: if given, keep only the most recent ``max_records``
            spans; evictions bump :attr:`dropped_count`.  ``None`` keeps
            everything (tests, short runs).
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError(
                "max_records must be >= 1 or None, got %r" % max_records
            )
        self.max_records = max_records
        self._records: Deque[Span] = deque(maxlen=max_records)
        self._ids = itertools.count(1)
        self.dropped_count = 0

    def _append(self, span: Span) -> Span:
        if (
            self.max_records is not None
            and len(self._records) == self.max_records
        ):
            self.dropped_count += 1
        self._records.append(span)
        return span

    def start_span(
        self,
        name: str,
        t: float,
        node: Optional[int] = None,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span at simulation time ``t``; close it with
        :meth:`end_span`."""
        return self._append(
            Span(
                next(self._ids),
                name,
                float(t),
                node=node,
                parent_id=parent.span_id if parent is not None else None,
                attrs=attrs or None,
            )
        )

    def end_span(self, span: Span, t: float) -> None:
        """Close ``span`` at simulation time ``t``.

        Raises:
            ValueError: if ``t`` precedes the span's start (spans live on
                a monotonic simulation clock).
        """
        if t < span.start:
            raise ValueError(
                "span %r cannot end at t=%r before its start" % (span, t)
            )
        span.end = float(t)

    def event(
        self,
        t: float,
        name: str,
        node: Optional[int] = None,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record a point event (a zero-duration, already-closed span)."""
        return self.record_event(t, name, node=node, parent=parent,
                                 attrs=attrs or None)

    def record_event(
        self,
        t: float,
        name: str,
        node: Optional[int] = None,
        parent: Optional[Span] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Point-event variant taking attrs as a dict — for facades whose
        attribute keys may collide with this signature's parameter names."""
        span = self._append(
            Span(
                next(self._ids),
                name,
                float(t),
                node=node,
                parent_id=parent.span_id if parent is not None else None,
                attrs=attrs,
            )
        )
        span.end = span.start
        return span

    # -- introspection -------------------------------------------------------

    def records(self, name: Optional[str] = None) -> List[Span]:
        """Recorded spans in order, optionally filtered by name."""
        if name is None:
            return list(self._records)
        return [s for s in self._records if s.name == name]

    def count(self, name: str) -> int:
        return sum(1 for s in self._records if s.name == name)

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of ``span`` (parent-link navigation)."""
        return [s for s in self._records if s.parent_id == span.span_id]

    def clear(self) -> None:
        """Drop all records (the drop counter keeps its tally)."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._records)
