"""Turning a finished run into a :class:`TelemetrySnapshot`.

Two layers feed the snapshot:

1. **Always-on counters.**  Every subsystem keeps plain integer/float
   counters on its own objects (the channel's :class:`ChannelStats`, the
   estimator's fix/gate tallies, the energy meter's per-state durations,
   the simulator's event counts).  They cost an attribute increment in
   the hot path — unmeasurable against the work they count — and
   :func:`collect_team_snapshot` reads them *once, after the run*, so the
   baseline snapshot is free of any per-event telemetry machinery.

2. **Opt-in rich instrumentation.**  A :class:`Telemetry` handle (a
   registry plus a span tracer) can be passed into a run; the team wires
   it to window spans, per-fix histograms and receive events.  Its
   registry flattens into the same snapshot under extra keys.  Rich mode
   never touches RNG or the event queue, so results stay bit-identical —
   the regression suite compares enabled vs. disabled runs byte for byte.

This module is deliberately duck-typed (no imports from ``repro.core``)
so the telemetry package sits below every instrumented layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Optional

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.telemetry.spans import SpanTracer

__all__ = ["Telemetry", "collect_team_snapshot"]

#: Default ring-buffer size for rich-mode tracers: large enough for the
#: paper's longest scenario, bounded so soak runs cannot exhaust memory.
DEFAULT_MAX_SPANS = 200_000


@dataclass
class Telemetry:
    """The opt-in rich instrumentation handle for one run."""

    registry: MetricsRegistry = dataclass_field(default_factory=MetricsRegistry)
    tracer: SpanTracer = dataclass_field(
        default_factory=lambda: SpanTracer(max_records=DEFAULT_MAX_SPANS)
    )

    @classmethod
    def enabled(cls, max_spans: Optional[int] = DEFAULT_MAX_SPANS) -> "Telemetry":
        """A fresh registry + bounded tracer pair."""
        return cls(MetricsRegistry(), SpanTracer(max_records=max_spans))


def _channel_metrics(stats) -> Dict[str, float]:
    return {
        "net_frames_sent": float(stats.frames_sent),
        "net_frames_offered": float(stats.frames_offered),
        "net_frames_delivered": float(stats.frames_delivered),
        "net_drops_below_sensitivity": float(stats.frames_below_sensitivity),
        "net_drops_collided": float(stats.frames_collided),
        "net_drops_asleep": float(stats.frames_missed_asleep),
        "net_drops_half_duplex": float(stats.frames_missed_half_duplex),
        "net_drops_jammed": float(stats.frames_jammed),
        "net_drops_brownout": float(stats.frames_missed_brownout),
        "net_drops_crc": float(stats.frames_crc_dropped),
        "net_frames_corrupted": float(stats.frames_corrupted),
        "net_airtime_s": float(stats.airtime_s),
    }


def _multicast_metrics(stats) -> Dict[str, float]:
    return {
        "multicast_mesh_rebuilds": float(stats.jq_originated),
        "multicast_jq_forwarded": float(stats.jq_forwarded),
        "multicast_jr_sent": float(stats.jr_sent),
        "multicast_data_originated": float(stats.data_originated),
        "multicast_data_forwarded": float(stats.data_forwarded),
        "multicast_data_delivered": float(stats.data_delivered),
        "multicast_duplicates_dropped": float(stats.duplicates_dropped),
        "multicast_forwards_suppressed": float(stats.forwards_suppressed),
        "multicast_route_switches": float(
            getattr(stats, "route_switches", 0)
        ),
    }


def collect_team_snapshot(team, result) -> TelemetrySnapshot:
    """Build the end-of-run snapshot for one scenario.

    Args:
        team: the finished :class:`~repro.core.team.CoCoATeam` (its
            simulator, nodes and channel are read, never mutated).
        result: the run's :class:`~repro.core.team.TeamResult`.
    """
    config = team.config
    metrics: Dict[str, float] = {
        "run_duration_s": float(config.duration_s),
        "run_n_robots": float(config.n_robots),
        "run_n_anchors": float(config.n_anchors),
        # -- simulation engine ---------------------------------------------
        "sim_events_processed": float(team.sim.events_processed),
        "sim_events_cancelled": float(team.sim.events_cancelled),
        "sim_max_queue_depth": float(team.sim.max_queue_depth),
    }
    metrics.update(_channel_metrics(result.channel_stats))
    metrics.update(_multicast_metrics(result.multicast_stats))

    # -- estimator / coordinator ------------------------------------------
    metrics.update({
        "estimator_beacons_heard": 0.0,
        "estimator_beacons_gated": float(result.beacons_gated),
        "estimator_beacons_quarantined": float(result.beacons_quarantined),
        "estimator_fixes": float(result.fixes),
        "estimator_windows_without_fix": float(result.windows_without_fix),
        "estimator_watchdog_resets": float(result.watchdog_resets),
        "estimator_residual_suspicions": 0.0,
        "coordinator_windows_run": 0.0,
        "coordinator_syncs_received": float(result.syncs_received),
        "coordinator_resync_periods": 0.0,
        "beacons_sent": float(result.beacons_sent),
    })
    for node in team.nodes:
        estimator = getattr(node, "estimator", None)
        if estimator is not None:
            metrics["estimator_beacons_heard"] += float(
                estimator.beacons_heard
            )
            metrics["estimator_residual_suspicions"] += float(
                getattr(estimator, "residual_suspicions", 0)
            )
        coordinator = getattr(node, "coordinator", None)
        if coordinator is not None:
            metrics["coordinator_windows_run"] += float(
                coordinator.windows_run
            )
            metrics["coordinator_resync_periods"] += float(
                coordinator.resync_periods
            )

    # -- radio / energy ----------------------------------------------------
    for key in ("sleep", "idle", "tx", "rx", "off"):
        metrics["radio_%s_s" % key] = 0.0
    metrics["radio_transitions"] = 0.0
    metrics["radio_packets_sent"] = 0.0
    metrics["radio_packets_received"] = 0.0
    for node in team.nodes:
        meter = node.interface.meter
        for state, duration_s in meter.state_durations_s.items():
            metrics["radio_%s_s" % state.value] += duration_s
        metrics["radio_transitions"] += float(meter.transitions)
        metrics["radio_packets_sent"] += float(meter.packets_sent)
        metrics["radio_packets_received"] += float(meter.packets_received)
    for key, value in result.energy.breakdown.as_dict().items():
        metrics["energy_%s" % key] = float(value)

    # -- hot-path kernels --------------------------------------------------
    # Only exported when the team ran with a constraint-field cache:
    # kernels-off runs must stay byte-identical to pre-kernel results,
    # snapshot included.
    cache = getattr(team, "constraint_cache", None)
    if cache is not None:
        for key, value in cache.counters().items():
            metrics[key] = float(value)

    snapshot = TelemetrySnapshot(metrics=metrics)

    # -- rich-mode extras --------------------------------------------------
    telemetry = getattr(team, "telemetry", None)
    if telemetry is not None:
        for name, value in telemetry.registry.metrics().items():
            snapshot.metrics[name] = value
        snapshot.metrics["trace_spans_recorded"] = float(
            len(telemetry.tracer)
        )
        snapshot.metrics["trace_spans_dropped"] = float(
            telemetry.tracer.dropped_count
        )
    return snapshot
