"""The shared broadcast medium.

:class:`BroadcastChannel` connects every node's radio through the
:class:`~repro.net.phy.PathLossModel`.  A transmission is delivered
independently to each receiver that

1. is awake for the frame's whole airtime,
2. samples an RSSI at or above its sensitivity,
3. is not itself transmitting during the frame (half duplex), and
4. survives capture: its sampled RSSI must exceed the summed power of all
   overlapping foreign transmissions by the capture threshold.

Each (transmitter, receiver, frame) triple samples the RSSI noise once; the
delivered value is exactly what the localization algorithm later looks up in
the PDF Table, so ranging error in the localization results comes from the
same channel realization that decided reception.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.energy.model import RadioState
from repro.mobility.base import MobilityModel
from repro.net.packet import Packet, ReceivedPacket
from repro.net.phy import PathLossModel, ReceiverModel
from repro.net.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog
from repro.util.geometry import Vec2
from repro.util.units import dbm_to_mw, mw_to_dbm

ReceiveCallback = Callable[[ReceivedPacket], None]

#: 802.11b long preamble + PLCP header airtime in seconds.
PREAMBLE_S = 192e-6


@dataclass
class Transmission:
    """One frame on the air."""

    src: int
    packet: Packet
    start: float
    end: float
    src_position: Vec2


@dataclass
class _NodeEntry:
    node_id: int
    mobility: MobilityModel
    radio: Radio
    receiver: ReceiverModel
    on_receive: ReceiveCallback
    #: Carrier-sense distance guard band, precomputed at registration by
    #: inverting the (monotone) mean path loss at the CS threshold.  At
    #: distances at or below ``cs_dist_lo`` the medium is certainly busy;
    #: at or beyond ``cs_dist_hi`` it certainly is not; only the narrow
    #: band in between (1e-9 relative — six orders of magnitude wider
    #: than the inversion's float error) falls back to the exact
    #: ``mean_rssi``/``senses_busy`` computation.
    cs_dist_lo: float = 0.0
    cs_dist_hi: float = 0.0


@dataclass
class ChannelStats:
    """Counters the energy/efficiency analyses read after a run.

    The last four counters only move when a
    :class:`~repro.faults.injector.FaultInjector` is installed.
    """

    frames_sent: int = 0
    frames_offered: int = 0
    frames_delivered: int = 0
    frames_below_sensitivity: int = 0
    frames_collided: int = 0
    frames_missed_asleep: int = 0
    frames_missed_half_duplex: int = 0
    frames_jammed: int = 0
    frames_missed_brownout: int = 0
    frames_corrupted: int = 0
    frames_crc_dropped: int = 0
    airtime_s: float = 0.0


class BroadcastChannel:
    """The wireless medium shared by all robots.

    Args:
        sim: simulation engine.
        path_loss: the channel's signal model.
        rng: random stream for RSSI noise.
        bitrate_bps: physical bitrate (paper: 2 Mbps).
        preamble_s: fixed per-frame preamble airtime.
        batched: when True, :meth:`transmit` offers each frame through
            the batched delivery kernel (bit-identical to the scalar
            path; see :mod:`repro.kernels`).  :class:`~repro.core.team`
            sets this from the run's :class:`~repro.kernels.KernelConfig`.
        coalesced: when True, receivers' radios are released inside the
            frame's single delivery event instead of via one rx-end
            event per receiver (the ``coalesced_delivery`` kernel;
            bit-identical, see :meth:`_deliver_frame`).  Implies the
            batched offer path.
    """

    def __init__(
        self,
        sim: Simulator,
        path_loss: PathLossModel,
        rng: np.random.Generator,
        bitrate_bps: float = 2e6,
        preamble_s: float = PREAMBLE_S,
        trace: Optional[TraceLog] = None,
        batched: bool = False,
        coalesced: bool = False,
    ) -> None:
        if bitrate_bps <= 0:
            raise ValueError(
                "bitrate_bps must be positive, got %r" % bitrate_bps
            )
        self._sim = sim
        self._path_loss = path_loss
        self._rng = rng
        self._bitrate = bitrate_bps
        self._preamble_s = preamble_s
        self._nodes: Dict[int, _NodeEntry] = {}
        self._transmissions: List[Transmission] = []
        self._trace = trace if trace is not None else TraceLog()
        self._faults = None
        self.batched = batched
        self.coalesced = coalesced
        self._world = None
        self._row_entries: Optional[List[_NodeEntry]] = None
        self.stats = ChannelStats()

    def attach_world(self, world) -> None:
        """Use a :class:`~repro.sim.world.WorldState` for bulk eligibility.

        The world's rows must cover exactly the node ids registered on
        this channel (the team binds node ``i`` to row ``i``), with every
        mobility model and radio bound to it — otherwise the masks would
        disagree with the per-object state.  The bulk path also stands
        down whenever a fault injector is installed or any radio arms a
        receive-fault gate, since those are per-receiver decisions.
        """
        self._world = world
        self._row_entries = None

    def install_faults(self, injector) -> None:
        """Attach a :class:`~repro.faults.injector.FaultInjector`.

        The channel consults it at its two decision points: frame offer
        (burst jamming / noise-floor elevation before the decode check)
        and frame delivery (payload corruption, CRC verdict, and the
        receiver's reported RSSI).  Without an injector none of these
        paths execute.
        """
        self._faults = injector

    @property
    def path_loss(self) -> PathLossModel:
        return self._path_loss

    @property
    def node_ids(self) -> List[int]:
        return sorted(self._nodes)

    def register(
        self,
        node_id: int,
        mobility: MobilityModel,
        radio: Radio,
        receiver: ReceiverModel,
        on_receive: ReceiveCallback,
    ) -> None:
        """Attach a node to the medium.

        Raises:
            ValueError: if the node id is already registered.
        """
        if node_id in self._nodes:
            raise ValueError("node %d already registered" % node_id)
        cs_dist = self._path_loss.distance_for_mean_rssi(
            receiver.carrier_sense_dbm
        )
        self._nodes[node_id] = _NodeEntry(
            node_id,
            mobility,
            radio,
            receiver,
            on_receive,
            cs_dist_lo=cs_dist * (1.0 - 1e-9),
            cs_dist_hi=cs_dist * (1.0 + 1e-9),
        )
        self._row_entries = None

    def airtime_s(self, size_bytes: int) -> float:
        """Airtime of a frame: preamble plus payload serialization."""
        return self._preamble_s + (size_bytes * 8.0) / self._bitrate

    def position_of(self, node_id: int) -> Vec2:
        """Current true position of a registered node."""
        return self._nodes[node_id].mobility.position(self._sim.now)

    def medium_busy(self, node_id: int) -> bool:
        """Carrier sense: does ``node_id`` hear energy above its CS threshold?

        Uses mean (noise-free) RSSI — carrier sensing integrates energy over
        time, which averages fast fading out.  Since mean path loss is
        monotone in distance, the threshold comparison happens in distance
        space against the guard band precomputed at registration; only
        distances inside the band pay for the exact ``mean_rssi`` call.
        """
        now = self._sim.now
        self._prune(now)
        if not self._transmissions:
            # Nothing on the air: skip the mobility query entirely (pose
            # queries are pure and lazy, so skipping one is unobservable).
            return False
        entry = self._nodes[node_id]
        position = entry.mobility.position(now)
        for tx in self._transmissions:
            if tx.src == node_id:
                continue
            if tx.start <= now < tx.end:
                distance = max(position.distance_to(tx.src_position), 1.0)
                if distance <= entry.cs_dist_lo:
                    return True
                if distance >= entry.cs_dist_hi:
                    continue
                rssi = self._path_loss.mean_rssi(distance)
                if entry.receiver.senses_busy(rssi):
                    return True
        return False

    def transmit(self, src_id: int, packet: Packet) -> float:
        """Put a frame on the air from ``src_id``.

        Returns the frame airtime.  The source radio must be awake; the MAC
        guarantees this.

        Raises:
            KeyError: if the source is not registered.
        """
        entry = self._nodes[src_id]
        now = self._sim.now
        airtime = self.airtime_s(packet.size_bytes)
        src_position = entry.mobility.position(now)
        tx = Transmission(src_id, packet, now, now + airtime, src_position)
        self._prune(now)
        self._transmissions.append(tx)
        entry.radio.begin_transmit(airtime)
        entry.radio.meter.charge_send(packet.size_bytes)
        self.stats.frames_sent += 1
        self.stats.airtime_s += airtime
        self._trace.emit(
            now, "channel.tx", src_id, kind=packet.kind, uid=packet.uid
        )

        if self.batched or self.coalesced:
            self._offer_batch(tx, airtime)
        else:
            for receiver in self._nodes.values():
                if receiver.node_id == src_id:
                    continue
                self._offer(tx, receiver, airtime)
        return airtime

    def _offer(
        self, tx: Transmission, receiver: _NodeEntry, airtime: float
    ) -> None:
        """Decide whether ``receiver`` may decode ``tx``; schedule delivery."""
        self.stats.frames_offered += 1
        if not receiver.radio.is_awake:
            self.stats.frames_missed_asleep += 1
            return
        if receiver.radio.reception_impaired:
            self.stats.frames_missed_brownout += 1
            return
        if receiver.radio.is_transmitting:
            self.stats.frames_missed_half_duplex += 1
            return
        position = receiver.mobility.position(self._sim.now)
        distance = max(position.distance_to(tx.src_position), 1.0)
        rssi = float(self._path_loss.sample_rssi(distance, self._rng))
        effective_rssi = rssi
        if self._faults is not None:
            offered = self._faults.offer_rssi(
                self._sim.now, tx.src, receiver.node_id, rssi
            )
            if offered is None:
                self.stats.frames_jammed += 1
                return
            effective_rssi = offered
        if not receiver.receiver.can_decode(effective_rssi):
            self.stats.frames_below_sensitivity += 1
            return
        receiver.radio.begin_receive(airtime)
        self._sim.schedule(
            airtime,
            self._deliver,
            tx,
            receiver,
            rssi,
            name="deliver",
        )

    def _offer_batch(self, tx: Transmission, airtime: float) -> None:
        """Batched-delivery kernel: offer ``tx`` to every other node.

        Bit-identical to running :meth:`_offer` per receiver in node
        order.  The scalar path interleaves, per receiver, the radio
        eligibility filters, one RSSI draw from the channel stream, and
        the fault/decode decision — but the filters never depend on the
        draw, the draws never depend on the filters' side effects (the
        counters), and fault draws come from their own streams.  So the
        kernel may run all filters first, sample every surviving
        receiver's RSSI in one batched draw
        (:meth:`~repro.net.phy.PathLossModel.sample_rssi_batch` replays
        the scalar draw order exactly), and then walk the survivors for
        the fault/decode/schedule step, still in node order.

        Deliveries are likewise merged into a single frame-completion
        event (:meth:`_deliver_frame`) instead of one event per
        receiver.  The per-receiver delivery bodies still run in node
        order at the same timestamp; the only reordering is that every
        radio's rx-end timer now fires before the first delivery rather
        than interleaved with them.  That is unobservable: energy billing
        depends on state-change *times* (identical — everything happens
        at the frame end instant), and no delivery decision reads another
        receiver's radio state.  Handlers that transmit in response to a
        delivery cannot perturb the remaining deliveries in either
        ordering, because a transmission starting at the frame-end
        instant never overlaps the just-ended frame's half-open airtime
        interval.  Only the engine's event *count* differs, which is why
        the byte-equality gate covers the science payload rather than
        the scheduler's own counters.
        """
        now = self._sim.now
        world = self._world
        if (
            world is not None
            and self._faults is None
            and not world.has_receive_faults
        ):
            eligible, distances = self._eligible_soa(tx, now, world)
        else:
            eligible = []
            distances = []
            for receiver in self._nodes.values():
                if receiver.node_id == tx.src:
                    continue
                self.stats.frames_offered += 1
                if not receiver.radio.is_awake:
                    self.stats.frames_missed_asleep += 1
                    continue
                if receiver.radio.reception_impaired:
                    self.stats.frames_missed_brownout += 1
                    continue
                if receiver.radio.is_transmitting:
                    self.stats.frames_missed_half_duplex += 1
                    continue
                position = receiver.mobility.position(now)
                eligible.append(receiver)
                # Vec2.distance_to (math.hypot) — NOT a vectorized hypot:
                # np.hypot and sqrt(dx*dx + dy*dy) are not bit-identical
                # to it.
                distances.append(
                    max(position.distance_to(tx.src_position), 1.0)
                )
        if not eligible:
            return
        rssi_batch = self._path_loss.sample_rssi_batch(
            np.asarray(distances), self._rng
        )
        coalesced = self.coalesced
        faults = self._faults
        stats = self.stats
        if coalesced and airtime <= 0:
            # Hoisted from begin_receive_unmanaged (whose body is inlined
            # in the survivor loop below): one check per frame instead of
            # one per receiver.
            raise ValueError("airtime_s must be positive, got %r" % airtime)
        rx_end = now + airtime
        pending: List[Tuple[_NodeEntry, float]] = []
        for receiver, sampled in zip(eligible, rssi_batch):
            rssi = float(sampled)
            effective_rssi = rssi
            if faults is not None:
                offered = faults.offer_rssi(
                    now, tx.src, receiver.node_id, rssi
                )
                if offered is None:
                    stats.frames_jammed += 1
                    continue
                effective_rssi = offered
            # Inlined ReceiverModel.can_decode (rssi >= sensitivity);
            # sampled RSSI is always finite, so the negated comparison
            # is exact.
            if effective_rssi < receiver.receiver.sensitivity_dbm:
                stats.frames_below_sensitivity += 1
                continue
            if coalesced:
                # Inlined Radio.begin_receive_unmanaged.  Eligibility
                # admits only awake, non-transmitting radios, and nothing
                # between the scan and this walk changes radio state, so
                # the state here is exactly IDLE or RX.
                radio = receiver.radio
                if radio._state is RadioState.IDLE:
                    elapsed = now - radio._state_since
                    if elapsed > 0.0:
                        meter = radio._meter
                        meter._dur_idle += elapsed
                        meter._breakdown.idle_j += meter._w_idle * elapsed
                    radio._state_since = now
                    radio._state = RadioState.RX
                    radio._busy_until = rx_end
                elif rx_end > radio._busy_until:
                    radio._busy_until = rx_end
            else:
                receiver.radio.begin_receive(airtime)
            pending.append((receiver, rssi))
        if pending:
            self._sim.schedule(
                airtime, self._deliver_frame, tx, pending, name="deliver"
            )

    def _eligible_soa(
        self, tx: Transmission, now: float, world
    ) -> Tuple[List[_NodeEntry], List[float]]:
        """SoA fast path of the eligibility scan in :meth:`_offer_batch`.

        Bit-identical to the scalar scan: rows ascend like the node-order
        walk; the awake/transmitting masks are write-through mirrors of
        the exact radio predicates; brownouts cannot occur (this path is
        gated on no fault injector and no receive-fault gates); and the
        world refreshes *every* node's position where the scalar loop
        queries only eligible ones — invisible, because a trajectory's
        leg draws by time ``t`` do not depend on who queries it when.
        Distances still go through scalar ``math.hypot``, matching
        ``Vec2.distance_to`` bit for bit.
        """
        entries = self._row_entries
        if entries is None:
            entries = [self._nodes[row] for row in range(world.n)]
            self._row_entries = entries
        awake = world.awake
        transmitting = world.transmitting
        # The source is mid-begin_transmit: awake and transmitting, so it
        # drops out of `awake & ~transmitting` with no explicit exclusion,
        # and the counter arithmetic below accounts for it.
        stats = self.stats
        stats.frames_offered += world.n - 1
        stats.frames_missed_asleep += world.n - int(awake.sum())
        stats.frames_missed_half_duplex += (
            int((awake & transmitting).sum()) - 1
        )
        rows = np.flatnonzero(awake & ~transmitting).tolist()
        xs, ys = world.positions_at(now)
        src_x = tx.src_position.x
        src_y = tx.src_position.y
        hypot = math.hypot
        eligible = [entries[row] for row in rows]
        distances = [
            max(hypot(xs[row] - src_x, ys[row] - src_y), 1.0)
            for row in rows
        ]
        return eligible, distances

    def _deliver_frame(
        self, tx: Transmission, pending: List[Tuple[_NodeEntry, float]]
    ) -> None:
        """Run every receiver's delivery for one frame, in node order.

        The foreign transmissions overlapping the frame's airtime are the
        same for every receiver, so they are collected once here instead
        of rescanned per delivery.  Transmissions appended mid-loop by
        delivery handlers start exactly at the frame end and so never
        satisfy the strict overlap test — matching the scalar path, where
        the per-receiver scan cannot see them either.

        Under coalesced delivery this event is also where receptions
        *end*: every pending radio is released before the first handler
        runs, mirroring the managed ordering (rx-end events carry
        earlier sequence numbers than the delivery event, so they too
        all fire first).  A radio whose busy window was extended by a
        later overlapping frame keeps receiving — ``finish_receive``
        checks the window — and that later frame's own delivery releases
        it, exactly when the managed path's rescheduled rx-end would.
        """
        now = self._sim.now
        if self.coalesced:
            for receiver, _ in pending:
                # Inlined Radio.finish_receive: release the radio iff it
                # is still in RX with its busy window over.
                radio = receiver.radio
                if radio._state is RadioState.RX and now >= radio._busy_until:
                    elapsed = now - radio._state_since
                    if elapsed > 0.0:
                        meter = radio._meter
                        meter._dur_rx += elapsed
                        meter._breakdown.rx_j += meter._w_rx * elapsed
                    radio._state_since = now
                    radio._state = RadioState.IDLE
        overlapping = [
            other
            for other in self._transmissions
            if other is not tx
            and other.start < tx.end
            and other.end > tx.start
        ]
        if self._faults is not None or self._trace.enabled("channel.rx"):
            # Faults and rx tracing add per-delivery branches the fast
            # loop below omits; route through the generic body.
            deliver = self._deliver
            for receiver, rssi in pending:
                deliver(tx, receiver, rssi, overlapping)
            return
        # Inlined _deliver, one frame's receivers in node order: the same
        # checks in the same order with the per-frame invariants (packet,
        # size, the no-faults/no-trace branches) hoisted out of the loop.
        stats = self.stats
        trace = self._trace
        packet = tx.packet
        size_bytes = packet.size_bytes
        delivered = 0
        for receiver, rssi in pending:
            radio = receiver.radio
            state = radio._state
            if state is RadioState.SLEEP or state is RadioState.OFF:
                # Slept mid-frame (coordination closed the window).
                stats.frames_missed_asleep += 1
                continue
            gate = radio._receive_fault
            if gate is not None and gate(now):
                # Browned out mid-frame.
                stats.frames_missed_brownout += 1
                continue
            if overlapping:
                receiver_id = receiver.node_id
                half_duplex = False
                for other in overlapping:
                    if other.src == receiver_id:
                        half_duplex = True
                        break
                if half_duplex:
                    stats.frames_missed_half_duplex += 1
                    continue
                interference_mw = self._foreign_power_mw(
                    overlapping, receiver
                )
                if interference_mw > 0.0:
                    sinr_db = rssi - mw_to_dbm(interference_mw)
                    if sinr_db < receiver.receiver.capture_threshold_db:
                        stats.frames_collided += 1
                        trace.emit(
                            now,
                            "channel.collision",
                            receiver_id,
                            kind=packet.kind,
                            uid=packet.uid,
                        )
                        continue
            # Inlined EnergyMeter.charge_recv.
            meter = radio._meter
            cost = meter._recv_costs.get(size_bytes)
            if cost is None:
                cost = meter._model.recv_cost_j(size_bytes)
                meter._recv_costs[size_bytes] = cost
            meter._breakdown.packet_recv_j += cost
            meter._packets_received += 1
            delivered += 1
            receiver.on_receive(
                ReceivedPacket(
                    packet=packet,
                    rssi_dbm=rssi,
                    receive_time=now,
                    receiver=receiver.node_id,
                )
            )
        stats.frames_delivered += delivered

    def _deliver(
        self,
        tx: Transmission,
        receiver: _NodeEntry,
        rssi: float,
        overlapping: Optional[List[Transmission]] = None,
    ) -> None:
        receiver_id = receiver.node_id
        radio = receiver.radio
        stats = self.stats
        now = self._sim.now
        if not radio.is_awake:
            # Slept mid-frame (coordination closed the window).
            stats.frames_missed_asleep += 1
            return
        if radio.reception_impaired:
            # Browned out mid-frame.
            stats.frames_missed_brownout += 1
            return
        if overlapping is None:
            if self._transmitted_during(receiver_id, tx.start, tx.end):
                stats.frames_missed_half_duplex += 1
                return
            interference_mw = self._interference_mw(tx, receiver)
        else:
            if any(other.src == receiver_id for other in overlapping):
                stats.frames_missed_half_duplex += 1
                return
            interference_mw = self._foreign_power_mw(overlapping, receiver)
        if interference_mw > 0.0:
            sinr_db = rssi - mw_to_dbm(interference_mw)
            if sinr_db < receiver.receiver.capture_threshold_db:
                stats.frames_collided += 1
                self._trace.emit(
                    now,
                    "channel.collision",
                    receiver_id,
                    kind=tx.packet.kind,
                    uid=tx.packet.uid,
                )
                return
        radio.meter.charge_recv(tx.packet.size_bytes)
        packet = tx.packet
        if self._faults is not None:
            damaged = self._faults.maybe_corrupt(now, receiver_id, packet)
            if damaged is not None:
                if self._faults.crc_check:
                    # The frame was received (and paid for) but fails its
                    # checksum; the link layer drops it silently.
                    stats.frames_crc_dropped += 1
                    return
                packet = damaged
                stats.frames_corrupted += 1
            rssi = self._faults.reported_rssi(now, tx.src, rssi)
        stats.frames_delivered += 1
        trace = self._trace
        if trace.enabled("channel.rx"):
            # The enabled check is hoisted out of ``emit`` so a disabled
            # category skips the keyword-dict build on every delivery.
            trace.emit(
                now,
                "channel.rx",
                receiver_id,
                kind=packet.kind,
                uid=packet.uid,
                rssi=rssi,
            )
        receiver.on_receive(
            ReceivedPacket(
                packet=packet,
                rssi_dbm=rssi,
                receive_time=now,
                receiver=receiver_id,
            )
        )

    def _foreign_power_mw(
        self, overlapping: List[Transmission], receiver: _NodeEntry
    ) -> float:
        """Summed mean power of the precomputed overlap set at the
        receiver — the batched-path counterpart of
        :meth:`_interference_mw`, with identical float-summation order."""
        position = None
        total = 0.0
        for other in overlapping:
            if other.src == receiver.node_id:
                continue
            if position is None:
                position = receiver.mobility.position(self._sim.now)
            distance = max(position.distance_to(other.src_position), 1.0)
            total += dbm_to_mw(self._path_loss.mean_rssi(distance))
        return total

    def _interference_mw(
        self, tx: Transmission, receiver: _NodeEntry
    ) -> float:
        """Summed mean power of foreign frames overlapping ``tx`` at the
        receiver, in milliwatts."""
        # Most deliveries have no overlapping foreign frame, so the
        # receiver position (a mobility query) is fetched lazily on the
        # first actual overlap.
        position = None
        total = 0.0
        for other in self._transmissions:
            if other is tx or other.src == receiver.node_id:
                continue
            if other.start < tx.end and other.end > tx.start:
                if position is None:
                    position = receiver.mobility.position(self._sim.now)
                distance = max(position.distance_to(other.src_position), 1.0)
                total += dbm_to_mw(self._path_loss.mean_rssi(distance))
        return total

    def _transmitted_during(
        self, node_id: int, start: float, end: float
    ) -> bool:
        for tx in self._transmissions:
            if tx.src == node_id and tx.start < end and tx.end > start:
                return True
        return False

    def _prune(self, now: float) -> None:
        """Drop transmissions that can no longer affect any decision.

        A one-second grace period comfortably exceeds any frame airtime
        (a 1500-byte frame at 2 Mbps flies for 6.2 ms).
        """
        if self._transmissions and self._transmissions[0].end < now - 1.0:
            self._transmissions = [
                tx for tx in self._transmissions if tx.end >= now - 1.0
            ]
