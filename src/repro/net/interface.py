"""Per-node network facade.

A :class:`NetworkInterface` bundles a node's radio, MAC and channel
registration behind the two operations protocols actually need:
``send_broadcast(packet)`` and per-``kind`` receive handlers.  It is the
single place where a node touches the network substrate, which keeps the
CoCoA core and the multicast protocols free of wiring code.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.energy.meter import EnergyMeter
from repro.energy.model import EnergyModel, RadioState
from repro.mobility.base import MobilityModel
from repro.net.channel import BroadcastChannel
from repro.net.mac import CsmaMac, MacConfig
from repro.net.packet import Packet, ReceivedPacket
from repro.net.phy import ReceiverModel
from repro.net.radio import Radio
from repro.sim.engine import Simulator

ReceiveHandler = Callable[[ReceivedPacket], None]


class NetworkInterface:
    """One robot's complete network attachment.

    Args:
        sim: simulation engine.
        node_id: this robot's id.
        mobility: the robot's true mobility model (the channel needs true
            positions to compute propagation — robots, of course, never
            read it for localization).
        channel: the shared medium.
        energy_model: radio energy constants.
        mac_rng: random stream for MAC backoff.
        receiver: receiver thresholds.
        mac_config: MAC timing constants.
        initially_awake: whether the radio starts in IDLE (True) or SLEEP.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        mobility: MobilityModel,
        channel: BroadcastChannel,
        energy_model: EnergyModel,
        mac_rng: np.random.Generator,
        receiver: ReceiverModel = ReceiverModel(),
        mac_config: MacConfig = MacConfig(),
        initially_awake: bool = True,
    ) -> None:
        self._sim = sim
        self._node_id = node_id
        self._mobility = mobility
        self._channel = channel
        self.meter = EnergyMeter(energy_model)
        initial = RadioState.IDLE if initially_awake else RadioState.SLEEP
        self.radio = Radio(sim, self.meter, initial_state=initial)
        self.mac = CsmaMac(sim, node_id, channel, self.radio, mac_rng, mac_config)
        self._handlers: Dict[str, List[ReceiveHandler]] = {}
        channel.register(node_id, mobility, self.radio, receiver, self._dispatch)

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def is_awake(self) -> bool:
        return self.radio.is_awake

    def send_broadcast(self, packet: Packet) -> None:
        """Broadcast a packet through the MAC."""
        self.mac.send_broadcast(packet)

    def on_receive(self, kind: str, handler: ReceiveHandler) -> None:
        """Register ``handler`` for received packets of ``kind``."""
        self._handlers.setdefault(kind, []).append(handler)

    def sleep(self) -> None:
        """Put the radio to sleep and drop any queued frames."""
        self.mac.flush()
        self.radio.sleep()

    def wake(self) -> None:
        """Wake the radio (no-op if already awake)."""
        self.radio.wake()

    def finalize(self) -> None:
        """Close out energy accounting at the end of a run."""
        self.radio.finalize()

    def _dispatch(self, received: ReceivedPacket) -> None:
        for handler in self._handlers.get(received.packet.kind, ()):
            handler(received)
