"""Packet and frame definitions.

All CoCoA traffic is UDP broadcast (§2.3): every packet carries an IP header
and a UDP header of 20 bytes each, exactly as the paper counts them, plus a
typed payload whose wire size the payload class declares.
"""

from __future__ import annotations

import dataclasses
import itertools
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

#: IP header size in bytes, as counted by the paper (§2.3).
IP_HEADER_BYTES = 20
#: UDP header size in bytes, as counted by the paper (§2.3).
UDP_HEADER_BYTES = 20

_packet_ids = itertools.count(1)


def payload_checksum(payload: Any) -> int:
    """CRC-32 of a payload's canonical text form.

    Payloads are frozen dataclasses (or other objects with deterministic
    ``repr``), so the checksum is stable across processes.  It stands in
    for the frame check sequence a real link layer computes over the
    serialized bytes.
    """
    return zlib.crc32(repr(payload).encode("utf-8")) & 0xFFFFFFFF


@dataclass(frozen=True)
class Packet:
    """A broadcast datagram.

    Attributes:
        src: sender node id.
        kind: payload discriminator, e.g. ``"beacon"``, ``"sync"``,
            ``"join_query"``; interfaces dispatch receive handlers on it.
        payload: the typed payload object.
        payload_bytes: wire size of the payload.
        ttl: remaining hop budget for flooded packets (broadcast beacons use
            1: they are never forwarded).
        uid: globally unique packet id, assigned automatically; forwarded
            copies of a flooded packet share the originator's ``origin_uid``.
        origin_uid: id of the original packet for duplicate suppression in
            flooding protocols; defaults to ``uid``.
        payload_crc: CRC-32 over the payload, computed at send time; a
            payload damaged in flight no longer matches it (``crc_ok``).
    """

    src: int
    kind: str
    payload: Any
    payload_bytes: int
    ttl: int = 1
    uid: int = field(default_factory=lambda: next(_packet_ids))
    origin_uid: Optional[int] = None
    payload_crc: Optional[int] = None

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(
                "payload_bytes must be non-negative, got %r"
                % self.payload_bytes
            )
        if self.ttl < 0:
            raise ValueError("ttl must be non-negative, got %r" % self.ttl)
        if self.origin_uid is None:
            object.__setattr__(self, "origin_uid", self.uid)
        if self.payload_crc is None:
            object.__setattr__(
                self, "payload_crc", payload_checksum(self.payload)
            )

    @property
    def crc_ok(self) -> bool:
        """Does the stored checksum still match the payload?"""
        return self.payload_crc == payload_checksum(self.payload)

    def damaged_copy(self, damaged_payload: Any) -> "Packet":
        """A copy carrying ``damaged_payload`` but the *original* CRC —
        what a receiver sees after in-flight corruption."""
        return dataclasses.replace(self, payload=damaged_payload)

    @property
    def size_bytes(self) -> int:
        """Total wire size: IP + UDP headers plus the payload."""
        return IP_HEADER_BYTES + UDP_HEADER_BYTES + self.payload_bytes

    def forwarded_by(self, node_id: int, ttl: Optional[int] = None) -> "Packet":
        """Return a rebroadcast copy of this packet sent by ``node_id``.

        The copy gets a fresh ``uid`` but keeps ``origin_uid`` so duplicate
        suppression keeps working across hops.
        """
        new_ttl = self.ttl - 1 if ttl is None else ttl
        if new_ttl < 0:
            raise ValueError("cannot forward packet with exhausted TTL")
        return Packet(
            src=node_id,
            kind=self.kind,
            payload=self.payload,
            payload_bytes=self.payload_bytes,
            ttl=new_ttl,
            origin_uid=self.origin_uid,
        )


class ReceivedPacket:
    """A packet as seen by a receiver: the frame plus reception metadata.

    A plain ``__slots__`` class rather than a frozen dataclass: one is
    built per successful reception — the densest allocation site after
    ``Vec2`` — and the frozen-dataclass ``__init__`` (object.__setattr__
    per field) costs ~3x a direct slot store.  Treat instances as
    immutable.

    Attributes:
        packet: the delivered packet.
        rssi_dbm: received signal strength sampled by the PHY — the ranging
            input of the localization algorithm.
        receive_time: simulation time of complete reception.
        receiver: receiving node id.
    """

    __slots__ = ("packet", "rssi_dbm", "receive_time", "receiver")

    def __init__(
        self,
        packet: Packet,
        rssi_dbm: float,
        receive_time: float,
        receiver: int,
    ) -> None:
        self.packet = packet
        self.rssi_dbm = rssi_dbm
        self.receive_time = receive_time
        self.receiver = receiver

    def __repr__(self) -> str:
        return (
            "ReceivedPacket(packet=%r, rssi_dbm=%r, receive_time=%r, "
            "receiver=%r)"
            % (self.packet, self.rssi_dbm, self.receive_time, self.receiver)
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is ReceivedPacket:
            return (
                self.packet == other.packet
                and self.rssi_dbm == other.rssi_dbm
                and self.receive_time == other.receive_time
                and self.receiver == other.receiver
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(
            (self.packet, self.rssi_dbm, self.receive_time, self.receiver)
        )
