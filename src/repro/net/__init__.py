"""The 802.11b-style wireless network substrate.

This package replaces GloMoSim's radio stack with the pieces the paper's
evaluation needs:

- :mod:`repro.net.packet` — frames with IP+UDP headers (20 bytes each, §2.3)
  and typed payloads,
- :mod:`repro.net.phy` — log-distance path loss with the paper's two-regime
  RSSI noise (Gaussian within 40 m, multipath-distorted beyond, Figure 1),
- :mod:`repro.net.radio` — the radio state machine (TX/RX/IDLE/SLEEP/OFF)
  wired to an :class:`~repro.energy.EnergyMeter`,
- :mod:`repro.net.channel` — the shared broadcast medium with per-receiver
  delivery, SINR capture and collision handling,
- :mod:`repro.net.mac` — a CSMA/CA broadcast MAC at 2 Mbps,
- :mod:`repro.net.interface` — the per-node facade protocols talk to.
"""

from repro.net.channel import BroadcastChannel, Transmission
from repro.net.interface import NetworkInterface
from repro.net.mac import CsmaMac, MacConfig
from repro.net.packet import (
    IP_HEADER_BYTES,
    UDP_HEADER_BYTES,
    Packet,
    ReceivedPacket,
)
from repro.net.phy import PathLossModel, ReceiverModel
from repro.net.radio import Radio

__all__ = [
    "Packet",
    "ReceivedPacket",
    "IP_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "PathLossModel",
    "ReceiverModel",
    "Radio",
    "BroadcastChannel",
    "Transmission",
    "CsmaMac",
    "MacConfig",
    "NetworkInterface",
]
