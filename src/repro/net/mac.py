"""A CSMA/CA broadcast MAC.

Broadcast frames in 802.11 are sent without RTS/CTS or acknowledgements —
the sender carrier-senses, waits DIFS plus a random backoff, and transmits
once.  That is exactly the service CoCoA's beacons and MRMM's control
packets use (§2.3: "The RF beacon is sent via UDP broadcast"), and the
reason the paper sends ``k`` copies of each beacon: reliability comes from
repetition, not from MAC-level retransmission.

Simplifications relative to a full 802.11 DCF, documented here:

- the backoff counter is not frozen/resumed while the medium is busy; a
  busy medium defers the whole attempt by a fresh backoff,
- there is no exponential CW growth (broadcast frames never learn about
  collisions anyway — real DCF behaves the same for broadcast).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

import numpy as np

from repro.net.channel import BroadcastChannel
from repro.net.packet import Packet
from repro.net.radio import Radio
from repro.sim.engine import Event, Simulator


@dataclass(frozen=True)
class MacConfig:
    """802.11b DCF timing constants (2 Mbps DSSS PHY).

    Attributes:
        difs_s: DCF inter-frame space.
        slot_s: backoff slot time.
        cw_slots: contention window size for broadcast (CWmin).
        max_defers: how many consecutive busy-medium deferrals before a
            frame is dropped (guards against pathological congestion).
    """

    difs_s: float = 50e-6
    slot_s: float = 20e-6
    cw_slots: int = 31
    max_defers: int = 50

    def __post_init__(self) -> None:
        if self.difs_s < 0 or self.slot_s < 0:
            raise ValueError("MAC timings must be non-negative")
        if self.cw_slots < 1:
            raise ValueError(
                "cw_slots must be at least 1, got %r" % self.cw_slots
            )
        if self.max_defers < 1:
            raise ValueError(
                "max_defers must be at least 1, got %r" % self.max_defers
            )


class CsmaMac:
    """Per-node broadcast MAC: one outgoing queue, carrier sense, backoff.

    Args:
        sim: simulation engine.
        node_id: owning node.
        channel: the shared medium.
        radio: the node's radio (frames are dropped while it sleeps).
        rng: random stream for backoff draws.
        config: DCF timing parameters.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        channel: BroadcastChannel,
        radio: Radio,
        rng: np.random.Generator,
        config: MacConfig = MacConfig(),
    ) -> None:
        self._sim = sim
        self._node_id = node_id
        self._channel = channel
        self._radio = radio
        self._rng = rng
        self._config = config
        # Hoisted backoff constants: _backoff_s runs once per attempt —
        # the engine's densest aperiodic event population — and the
        # dataclass attribute walk showed up in its profile.
        self._difs_s = config.difs_s
        self._slot_s = config.slot_s
        self._cw_bound = config.cw_slots + 1
        self._queue: Deque[Packet] = deque()
        self._pending: Optional[Event] = None
        self._defers = 0
        self.frames_queued = 0
        self.frames_sent = 0
        self.frames_dropped = 0

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def send_broadcast(self, packet: Packet) -> None:
        """Queue a frame for broadcast transmission.

        Frames queued while the radio is asleep are dropped immediately —
        the coordination layer owns the schedule, and a protocol handing
        the MAC a frame outside its window has already lost the slot.
        """
        if not self._radio.is_awake:
            self.frames_dropped += 1
            return
        self._queue.append(packet)
        self.frames_queued += 1
        if self._pending is None:
            self._arm(initial=True)

    def flush(self) -> None:
        """Drop any queued frames and cancel the pending attempt."""
        self._queue.clear()
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._defers = 0

    def _backoff_s(self) -> float:
        slots = int(self._rng.integers(0, self._cw_bound))
        return self._difs_s + slots * self._slot_s

    def _arm(self, initial: bool) -> None:
        """Schedule the next transmission attempt after DIFS + backoff."""
        self._pending = self._sim.schedule(
            self._backoff_s(), self._attempt, name="mac-attempt"
        )
        if initial:
            self._defers = 0

    def _attempt(self) -> None:
        self._pending = None
        if not self._queue:
            return
        if not self._radio.is_awake:
            # Slept while a frame was queued: the window is gone.
            self.frames_dropped += len(self._queue)
            self._queue.clear()
            return
        if (
            self._radio.is_transmitting
            or self._radio.is_receiving
            or self._channel.medium_busy(self._node_id)
        ):
            self._defers += 1
            if self._defers >= self._config.max_defers:
                self._queue.popleft()
                self.frames_dropped += 1
                self._defers = 0
                if self._queue:
                    self._arm(initial=True)
                return
            self._arm(initial=False)
            return
        packet = self._queue.popleft()
        airtime = self._channel.transmit(self._node_id, packet)
        self.frames_sent += 1
        self._defers = 0
        if self._queue:
            # Start contending for the next frame once this one is done.
            self._pending = self._sim.schedule(
                airtime + self._backoff_s(), self._attempt, name="mac-attempt"
            )
