"""Radio state machine with integrated energy accounting.

A :class:`Radio` owns the interface's power state.  Time spent in each state
is charged to the node's :class:`~repro.energy.EnergyMeter` lazily: on every
state change the elapsed interval is billed to the *previous* state, and
:meth:`finalize` bills the tail at the end of a run.

State semantics follow the coordination design of §2.3:

- ``SLEEP`` — the CoCoA sleep mode (50 mW); the node can neither send nor
  receive, and waking charges a fixed transition cost.
- ``IDLE`` — awake, carrier-sensing but not transferring (900 mW); this is
  what the "CoCoA without coordination" baseline pays all period long.
- ``TX``/``RX`` — actively transferring; entered by the MAC/channel for the
  frame's airtime.
- ``OFF`` — not powered; used before deployment starts.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.energy.meter import EnergyMeter
from repro.energy.model import RadioState
from repro.sim.engine import Event, Simulator


class RadioError(RuntimeError):
    """Raised on invalid radio operations (e.g. transmitting while asleep)."""


#: States in which the radio can participate in communication.  A module
#: constant so the hot awake checks don't rebuild the tuple per call.
_AWAKE_STATES = (RadioState.IDLE, RadioState.TX, RadioState.RX)


class Radio:
    """One node's wireless interface power state.

    Args:
        sim: the simulation engine (for the clock and TX/RX end events).
        meter: the node's energy meter.
        initial_state: state at construction; defaults to IDLE (deployed
            and awake).
    """

    def __init__(
        self,
        sim: Simulator,
        meter: EnergyMeter,
        initial_state: RadioState = RadioState.IDLE,
    ) -> None:
        self._sim = sim
        self._meter = meter
        self._state = initial_state
        self._state_since = sim.now
        self._busy_until = sim.now
        self._end_event: Optional[Event] = None
        self._receive_fault: Optional[Callable[[float], bool]] = None
        # SoA mirror (the soa_state kernel); None when unbound.
        self._world = None
        self._world_row = 0

    @property
    def state(self) -> RadioState:
        return self._state

    @property
    def meter(self) -> EnergyMeter:
        return self._meter

    @property
    def is_awake(self) -> bool:
        """True when the radio can participate in communication."""
        return self._state in _AWAKE_STATES

    def set_receive_fault(self, gate: Callable[[float], bool]) -> None:
        """Install a reception-fault gate (brownout injection).

        ``gate(now)`` returning True means the receive chain is deaf at
        that instant.  The node is not told: it keeps its schedule, keeps
        transmitting, and keeps paying energy for whatever state it is
        in — only decoding is suppressed (by the channel, which checks
        :attr:`reception_impaired` at offer and delivery time).
        """
        self._receive_fault = gate
        if self._world is not None:
            # The SoA eligibility masks cannot express a per-receiver
            # fault gate; flag the world so the channel stays scalar.
            self._world.has_receive_faults = True

    def bind_world(self, world, row: int) -> None:
        """Mirror this radio's power state into a shared SoA block.

        After binding, every state transition updates the world's
        ``awake``/``transmitting`` masks so the channel can filter
        receivers in bulk.
        """
        self._world = world
        self._world_row = row
        world.awake[row] = self.is_awake
        world.transmitting[row] = self._state is RadioState.TX
        if self._receive_fault is not None:
            world.has_receive_faults = True

    @property
    def reception_impaired(self) -> bool:
        """True while an injected fault keeps the receiver deaf."""
        return self._receive_fault is not None and self._receive_fault(
            self._sim.now
        )

    @property
    def is_transmitting(self) -> bool:
        return self._state is RadioState.TX

    @property
    def is_receiving(self) -> bool:
        return self._state is RadioState.RX

    def _bill_elapsed(self) -> None:
        now = self._sim.now
        elapsed = now - self._state_since
        if elapsed > 0.0:
            self._meter.charge_state(self._state, elapsed)
        self._state_since = now

    def _enter(self, state: RadioState) -> None:
        self._bill_elapsed()
        self._state = state
        world = self._world
        if world is not None:
            row = self._world_row
            world.awake[row] = state in _AWAKE_STATES
            world.transmitting[row] = state is RadioState.TX

    def sleep(self) -> None:
        """Enter sleep mode.  No-op if already asleep or off.

        An in-progress transmission or reception is abandoned: the schedule
        says sleep, so the radio sleeps (the coordinator only sleeps outside
        transmit windows, making this a corner case rather than the norm).
        """
        if self._state in (RadioState.SLEEP, RadioState.OFF):
            return
        self._cancel_busy()
        self._enter(RadioState.SLEEP)
        self._meter.charge_sleep_transition()

    def wake(self) -> None:
        """Leave sleep/off for IDLE, charging the wake transition cost.

        The model charges the fixed transition energy immediately; the
        transition *latency* is handled by the coordinator waking nodes a
        guard interval before they are needed.
        """
        if self.is_awake:
            return
        self._enter(RadioState.IDLE)
        self._meter.charge_wake_transition()

    def power_off(self) -> None:
        """Turn the interface off entirely."""
        if self._state is RadioState.OFF:
            return
        self._cancel_busy()
        self._enter(RadioState.OFF)

    def _cancel_busy(self) -> None:
        if self._end_event is not None:
            self._end_event.cancel()
            self._end_event = None
        self._busy_until = self._sim.now

    def begin_transmit(self, airtime_s: float) -> None:
        """Enter TX for ``airtime_s`` seconds, returning to IDLE after.

        Raises:
            RadioError: if the radio is asleep/off or already transmitting.
        """
        if not self.is_awake:
            raise RadioError("cannot transmit: radio is %s" % self._state.value)
        if self._state is RadioState.TX:
            raise RadioError("already transmitting")
        if airtime_s <= 0:
            raise ValueError("airtime_s must be positive, got %r" % airtime_s)
        self._cancel_busy()
        self._enter(RadioState.TX)
        self._busy_until = self._sim.now + airtime_s
        self._end_event = self._sim.schedule(
            airtime_s, self._end_busy, name="tx-end"
        )

    def begin_receive(self, airtime_s: float) -> None:
        """Enter RX for ``airtime_s`` seconds (extends an ongoing RX).

        Half-duplex: receiving while transmitting is ignored — the channel
        separately rules the frame undecodable for this node.
        """
        if not self.is_awake or self._state is RadioState.TX:
            return
        if airtime_s <= 0:
            raise ValueError("airtime_s must be positive, got %r" % airtime_s)
        end = self._sim.now + airtime_s
        if self._state is RadioState.RX:
            if end > self._busy_until:
                self._busy_until = end
                if self._end_event is not None:
                    self._end_event.cancel()
                self._end_event = self._sim.schedule(
                    airtime_s, self._end_busy, name="rx-end"
                )
            return
        self._enter(RadioState.RX)
        self._busy_until = end
        self._end_event = self._sim.schedule(
            airtime_s, self._end_busy, name="rx-end"
        )

    def begin_receive_unmanaged(self, airtime_s: float) -> None:
        """:meth:`begin_receive`, but without scheduling an rx-end event.

        The coalesced-delivery kernel uses this: the channel guarantees
        it will call :meth:`finish_receive` from the frame's single
        delivery event (which fires exactly at the busy window's end),
        so the per-receiver rx-end event — and the cancel/reschedule
        traffic overlapping frames cause — is unnecessary.  State
        transitions, busy-window extension, and energy billing are
        identical to the managed path.

        The billing of :meth:`_enter` is inlined here (and in
        :meth:`finish_receive`): these two run once per reception — the
        densest call site in the simulation — and an IDLE<->RX flip
        changes neither the awake nor the transmitting SoA mask, so the
        generic transition path's mirror writes would be no-ops anyway.
        """
        state = self._state
        if state is RadioState.RX:
            if airtime_s <= 0:
                raise ValueError(
                    "airtime_s must be positive, got %r" % airtime_s
                )
            end = self._sim.now + airtime_s
            if end > self._busy_until:
                self._busy_until = end
            return
        if state is not RadioState.IDLE:
            # TX (half duplex), SLEEP, or OFF: not receiving.
            return
        if airtime_s <= 0:
            raise ValueError("airtime_s must be positive, got %r" % airtime_s)
        now = self._sim.now
        elapsed = now - self._state_since
        if elapsed > 0.0:
            # Inlined EnergyMeter.charge_state(IDLE, elapsed): the exact
            # accumulation the meter performs, minus the call per
            # reception.
            meter = self._meter
            meter._dur_idle += elapsed
            meter._breakdown.idle_j += meter._w_idle * elapsed
        self._state_since = now
        self._state = RadioState.RX
        self._busy_until = now + airtime_s

    def finish_receive(self) -> None:
        """End an unmanaged reception whose busy window has elapsed.

        No-op unless the radio is in RX with its busy window over — a
        later overlapping frame may have extended the window (that
        frame's delivery will finish it), or the node may have slept or
        started transmitting in the meantime.
        """
        if self._state is RadioState.RX:
            now = self._sim.now
            if now >= self._busy_until:
                elapsed = now - self._state_since
                if elapsed > 0.0:
                    # Inlined EnergyMeter.charge_state(RX, elapsed), as in
                    # begin_receive_unmanaged.
                    meter = self._meter
                    meter._dur_rx += elapsed
                    meter._breakdown.rx_j += meter._w_rx * elapsed
                self._state_since = now
                self._state = RadioState.IDLE

    def _end_busy(self) -> None:
        if self._sim.now < self._busy_until:
            # A newer overlapping reception extended the busy window.
            self._end_event = self._sim.schedule(
                self._busy_until - self._sim.now, self._end_busy, name="rx-end"
            )
            return
        self._end_event = None
        if self._state in (RadioState.TX, RadioState.RX):
            self._enter(RadioState.IDLE)

    def finalize(self) -> None:
        """Bill the time since the last state change (call at run end)."""
        self._bill_elapsed()
