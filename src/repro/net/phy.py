"""Physical-layer signal model: path loss, RSSI noise, receiver thresholds.

The paper calibrates its localization model from outdoor 802.11b
measurements and reports (Figure 1) that:

- for signal strengths down to about -80 dBm — distances up to about 40 m —
  the PDF of distance given RSSI is well approximated by a Gaussian;
- beyond 40 m, multipath and fading distort the measurements and the PDF is
  no longer Gaussian.

:class:`PathLossModel` reproduces exactly those two regimes: a log-distance
mean with Gaussian shadowing near the transmitter, plus an additional
occasional deep-fade component beyond ``far_threshold_m``.  The default
constants place -80 dBm at 40 m and give a usable communication range of
roughly 150+ m at the receiver sensitivity, matching the paper's hardware
description.

Everything is vectorized over numpy arrays because the calibration phase
(:mod:`repro.core.calibration`) samples the channel hundreds of thousands of
times, and the Bayesian grid filter evaluates distances for every grid cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.util.validation import check_positive

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with two-regime measurement noise.

    Mean RSSI at distance ``d`` (metres):

        ``rssi(d) = rssi_at_1m_dbm - 10 * path_loss_exponent * log10(d)``

    Sampled RSSI adds zero-mean Gaussian shadowing with
    ``gaussian_sigma_db`` everywhere; beyond ``far_threshold_m`` each sample
    additionally suffers, with probability ``far_fade_prob``, a deep fade
    drawn from ``N(far_fade_mean_db, far_fade_sigma_db)`` and the baseline
    sigma widens to ``far_sigma_db`` — which is what breaks the Gaussian
    shape of the distance PDF in the far regime (Figure 1(b)).

    Attributes:
        rssi_at_1m_dbm: mean RSSI one metre from the transmitter.
        path_loss_exponent: log-distance exponent (outdoor ground-level
            802.11b links typically fall in 2.7-4).
        gaussian_sigma_db: shadowing σ in the near (Gaussian) regime.
        far_threshold_m: boundary between the regimes (paper: 40 m).
        far_sigma_db: shadowing σ beyond the boundary.
        far_fade_prob: probability a far-regime sample hits a deep fade.
        far_fade_mean_db: mean extra attenuation of a deep fade.
        far_fade_sigma_db: σ of the deep-fade attenuation.
    """

    rssi_at_1m_dbm: float = -32.0
    path_loss_exponent: float = 3.0
    gaussian_sigma_db: float = 2.5
    far_threshold_m: float = 40.0
    far_sigma_db: float = 3.5
    far_fade_prob: float = 0.08
    far_fade_mean_db: float = 5.0
    far_fade_sigma_db: float = 2.5

    def __post_init__(self) -> None:
        check_positive("path_loss_exponent", self.path_loss_exponent)
        check_positive("far_threshold_m", self.far_threshold_m)
        for name in ("gaussian_sigma_db", "far_sigma_db", "far_fade_sigma_db"):
            if getattr(self, name) < 0:
                raise ValueError(
                    "%s must be non-negative, got %r"
                    % (name, getattr(self, name))
                )
        if not 0.0 <= self.far_fade_prob <= 1.0:
            raise ValueError(
                "far_fade_prob must be in [0, 1], got %r" % self.far_fade_prob
            )

    def mean_rssi(self, distance_m: ArrayLike) -> ArrayLike:
        """Mean RSSI (dBm) at ``distance_m``; distances below 1 m clamp to 1 m."""
        if isinstance(distance_m, (float, int)):
            # Scalar fast path: carrier sensing and interference summation
            # call this once per active transmission.  ``np.log10`` on a
            # Python float is bit-identical to the array ufunc (pinned by
            # a test), so this skips only the array round-trip.
            d = float(distance_m)
            if d < 1.0:
                d = 1.0
            return float(
                self.rssi_at_1m_dbm
                - 10.0 * self.path_loss_exponent * np.log10(d)
            )
        d = np.maximum(np.asarray(distance_m, dtype=float), 1.0)
        result = self.rssi_at_1m_dbm - 10.0 * self.path_loss_exponent * (
            np.log10(d)
        )
        if np.isscalar(distance_m):
            return float(result)
        return result

    def distance_for_mean_rssi(self, rssi_dbm: float) -> float:
        """Invert :meth:`mean_rssi`: the distance whose mean RSSI is given."""
        exponent = (self.rssi_at_1m_dbm - rssi_dbm) / (
            10.0 * self.path_loss_exponent
        )
        return max(1.0, float(10.0 ** exponent))

    def sample_rssi(
        self, distance_m: ArrayLike, rng: np.random.Generator
    ) -> ArrayLike:
        """Draw noisy RSSI samples for the given distances.

        Args:
            distance_m: scalar or array of true transmitter-receiver
                distances in metres.
            rng: random stream for the shadowing/fading draws.

        Returns:
            Sampled RSSI in dBm with the same shape as the input.
        """
        if isinstance(distance_m, (float, int)):
            # Scalar fast path: the channel offers every frame to every
            # receiver one at a time, so this runs once per offered frame.
            # Draws and arithmetic replicate the array path bit for bit:
            # scalar Generator draws consume the stream exactly like
            # size-(1,) draws, and scalar np.log10/np ops match the array
            # ufuncs (both pinned by tests).
            d = float(distance_m)
            mean = self.mean_rssi(d)
            far = d > self.far_threshold_m
            sigma = self.far_sigma_db if far else self.gaussian_sigma_db
            rssi = mean + rng.normal(0.0, 1.0) * sigma
            if far and self.far_fade_prob > 0.0:
                if rng.random() < self.far_fade_prob:
                    rssi = rssi - abs(
                        rng.normal(
                            self.far_fade_mean_db, self.far_fade_sigma_db
                        )
                    )
            return float(rssi)
        d = np.atleast_1d(np.asarray(distance_m, dtype=float))
        rssi = np.asarray(self.mean_rssi(d), dtype=float)
        far = d > self.far_threshold_m
        sigma = np.where(far, self.far_sigma_db, self.gaussian_sigma_db)
        rssi = rssi + rng.normal(0.0, 1.0, size=d.shape) * sigma
        if np.any(far) and self.far_fade_prob > 0.0:
            fade_hit = far & (rng.random(size=d.shape) < self.far_fade_prob)
            if np.any(fade_hit):
                fades = rng.normal(
                    self.far_fade_mean_db,
                    self.far_fade_sigma_db,
                    size=d.shape,
                )
                rssi = rssi - np.where(fade_hit, np.abs(fades), 0.0)
        if np.isscalar(distance_m):
            return float(rssi[0])
        return rssi.reshape(np.shape(distance_m))

    def sample_rssi_batch(
        self, distances_m: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw noisy RSSI for many receivers of **one** frame at once.

        Bit-identical to calling :meth:`sample_rssi` once per scalar
        distance, in order — including the consumed RNG stream.  A scalar
        call draws its shadowing normal, then (far regime only) a fade
        uniform, then (on a fade hit) the fade normal, so the draws of
        consecutive receivers interleave.  The batch replays exactly that
        order: one ``normal(size=n)`` covers each run of receivers up to
        and including the next far receiver (a size-``n`` array draw
        consumes the Generator stream exactly like ``n`` sequential
        scalar draws — pinned by a property test), then that receiver's
        fade draws happen scalar-wise.  When no receiver is in the far
        regime this collapses to a single ``normal(size=k)`` draw.

        Args:
            distances_m: 1-D array of transmitter-receiver distances.
            rng: the channel's RSSI-noise stream.

        Returns:
            Sampled RSSI in dBm, one per input distance.
        """
        d = np.asarray(distances_m, dtype=float)
        k = d.size
        if k == 0:
            return np.empty(0)
        mean = self.rssi_at_1m_dbm - 10.0 * self.path_loss_exponent * (
            np.log10(np.maximum(d, 1.0))
        )
        far = d > self.far_threshold_m
        any_far = bool(far.any())
        # With no far receiver sigma is uniform, and multiplying by the
        # scalar is bit-identical to multiplying by an array filled with
        # it — the common case (most frames are in-area) then skips the
        # np.where materialization.
        sigma = (
            np.where(far, self.far_sigma_db, self.gaussian_sigma_db)
            if any_far
            else self.gaussian_sigma_db
        )
        fade_db = None
        # ``standard_normal()`` replaces ``normal(0.0, 1.0)`` throughout:
        # it consumes the Generator stream identically and returns the
        # raw deviate that loc=0/scale=1 would pass through unchanged
        # (0.0 + 1.0*z == z exactly), while skipping the loc/scale
        # machinery — the draws are bit-identical and ~25% cheaper.
        if self.far_fade_prob <= 0.0 or not any_far:
            noise = rng.standard_normal(k)
        else:
            noise = np.empty(k)
            fade_db = np.zeros(k)
            standard_normal = rng.standard_normal
            normal = rng.normal
            random = rng.random
            fade_prob = self.far_fade_prob
            start = 0
            # Single-element runs use scalar draws — a scalar draw
            # consumes the Generator stream exactly like a size-1 array
            # draw (pinned by a property test) and skips the array
            # construction, which dominates when most receivers are far.
            for j in np.flatnonzero(far).tolist():
                if j == start:
                    noise[j] = standard_normal()
                else:
                    noise[start:j + 1] = standard_normal(j + 1 - start)
                start = j + 1
                if random() < fade_prob:
                    fade_db[j] = abs(
                        normal(
                            self.far_fade_mean_db, self.far_fade_sigma_db
                        )
                    )
            if start == k - 1:
                noise[start] = standard_normal()
            elif start < k:
                noise[start:] = standard_normal(k - start)
        rssi = mean + noise * sigma
        if fade_db is not None:
            rssi = rssi - fade_db
        return rssi


@dataclass(frozen=True)
class ReceiverModel:
    """Receiver-side reception thresholds.

    Attributes:
        sensitivity_dbm: weakest decodable RSSI (2 Mbps 802.11b cards sit
            near -93 dBm, giving ~150+ m range under the default channel).
        carrier_sense_dbm: weakest signal that still marks the medium busy
            for CSMA (a few dB below sensitivity).
        capture_threshold_db: SINR margin by which the strongest overlapping
            frame must beat the sum of interferers to survive a collision.
    """

    sensitivity_dbm: float = -93.0
    carrier_sense_dbm: float = -96.0
    capture_threshold_db: float = 10.0

    def __post_init__(self) -> None:
        if self.carrier_sense_dbm > self.sensitivity_dbm:
            raise ValueError(
                "carrier_sense_dbm (%r) should not exceed sensitivity_dbm "
                "(%r)" % (self.carrier_sense_dbm, self.sensitivity_dbm)
            )
        if self.capture_threshold_db < 0:
            raise ValueError(
                "capture_threshold_db must be non-negative, got %r"
                % self.capture_threshold_db
            )

    def can_decode(self, rssi_dbm: float) -> bool:
        """True if a frame at this RSSI is decodable in a clean channel."""
        return rssi_dbm >= self.sensitivity_dbm

    def senses_busy(self, rssi_dbm: float) -> bool:
        """True if energy at this level marks the medium busy."""
        return rssi_dbm >= self.carrier_sense_dbm
