"""Shared utilities: planar geometry, unit conversion and validation helpers.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` builds on them.
"""

from repro.util.geometry import (
    Rect,
    Vec2,
    clamp,
    distance,
    heading_between,
    normalize_angle,
    wrap_angle_deg,
)
from repro.util.units import (
    DBM_MIN,
    db_to_ratio,
    dbm_to_mw,
    joules,
    mw_to_dbm,
    ratio_to_db,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
)

__all__ = [
    "Vec2",
    "Rect",
    "clamp",
    "distance",
    "heading_between",
    "normalize_angle",
    "wrap_angle_deg",
    "dbm_to_mw",
    "mw_to_dbm",
    "db_to_ratio",
    "ratio_to_db",
    "joules",
    "DBM_MIN",
    "check_positive",
    "check_non_negative",
    "check_finite",
    "check_in_range",
]
