"""Planar geometry primitives used throughout the simulator.

The simulation world is a 2-D Euclidean plane.  Robots are points, headings
are angles in radians measured counter-clockwise from the positive x axis,
and the deployment area is an axis-aligned rectangle (:class:`Rect`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

TWO_PI = 2.0 * math.pi


class Vec2:
    """An immutable 2-D vector / point with float coordinates.

    ``Vec2`` supports the usual vector arithmetic and is hashable, which
    makes it convenient both as a position and as a dictionary key in
    trajectory bookkeeping.

    Implemented as a plain ``__slots__`` class rather than a frozen
    dataclass: vector arithmetic creates hundreds of thousands of
    instances per run, and the frozen-dataclass ``__init__`` (two
    ``object.__setattr__`` calls) tripled the construction cost.
    Immutability is by convention — nothing may assign to ``x``/``y``
    after construction (the hash and every cached position depend on it).
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        self.x = x
        self.y = y

    def __repr__(self) -> str:
        return "Vec2(x=%r, y=%r)" % (self.x, self.y)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Vec2:
            return self.x == other.x and self.y == other.y
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def dot(self, other: "Vec2") -> float:
        """Return the dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def norm(self) -> float:
        """Return the Euclidean length of this vector."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Vec2") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def heading_to(self, other: "Vec2") -> float:
        """Return the heading (radians, CCW from +x) pointing at ``other``."""
        return math.atan2(other.y - self.y, other.x - self.x)

    def unit(self) -> "Vec2":
        """Return a unit-length copy.

        Raises:
            ZeroDivisionError: if this is the zero vector.
        """
        n = self.norm()
        # repro: noqa[REP004] exact-zero check before dividing by the norm
        if n == 0.0:
            raise ZeroDivisionError("cannot normalize the zero vector")
        return Vec2(self.x / n, self.y / n)

    def rotated(self, angle: float) -> "Vec2":
        """Return this vector rotated CCW by ``angle`` radians."""
        c, s = math.cos(angle), math.sin(angle)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    @staticmethod
    def from_polar(radius: float, angle: float) -> "Vec2":
        """Build a vector from polar coordinates (radians)."""
        return Vec2(radius * math.cos(angle), radius * math.sin(angle))

    @staticmethod
    def zero() -> "Vec2":
        """Return the origin."""
        return Vec2(0.0, 0.0)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle describing the deployment area.

    Follows the paper's convention of bounding coordinates
    ``[x_min, x_max] x [y_min, y_max]``.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValueError(
                "degenerate Rect: (%r, %r, %r, %r)"
                % (self.x_min, self.y_min, self.x_max, self.y_max)
            )

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Vec2:
        return Vec2(
            (self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0
        )

    @property
    def diagonal(self) -> float:
        """Length of the rectangle's diagonal — the maximum possible
        distance between two points inside it."""
        return math.hypot(self.width, self.height)

    def contains(self, point: Vec2, tolerance: float = 0.0) -> bool:
        """Return True if ``point`` lies inside (or within ``tolerance``)."""
        return (
            self.x_min - tolerance <= point.x <= self.x_max + tolerance
            and self.y_min - tolerance <= point.y <= self.y_max + tolerance
        )

    def clamp_point(self, point: Vec2) -> Vec2:
        """Return ``point`` clamped to lie inside the rectangle."""
        return Vec2(
            clamp(point.x, self.x_min, self.x_max),
            clamp(point.y, self.y_min, self.y_max),
        )

    @staticmethod
    def square(side: float) -> "Rect":
        """Return a square ``side x side`` area anchored at the origin."""
        if side <= 0:
            raise ValueError("side must be positive, got %r" % side)
        return Rect(0.0, 0.0, side, side)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` to the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError("clamp bounds reversed: %r > %r" % (low, high))
    return low if value < low else high if value > high else value


def distance(a: Vec2, b: Vec2) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def heading_between(a: Vec2, b: Vec2) -> float:
    """Heading (radians) of the ray from ``a`` to ``b``."""
    return a.heading_to(b)


def normalize_angle(angle: float) -> float:
    """Normalize an angle in radians into ``(-pi, pi]``."""
    angle = math.fmod(angle, TWO_PI)
    if angle <= -math.pi:
        angle += TWO_PI
    elif angle > math.pi:
        angle -= TWO_PI
    return angle


def wrap_angle_deg(angle_deg: float) -> float:
    """Normalize an angle in degrees into ``(-180, 180]``."""
    return math.degrees(normalize_angle(math.radians(angle_deg)))
