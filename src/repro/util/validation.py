"""Small argument-validation helpers.

Configuration objects throughout the library validate eagerly at construction
time so that a bad parameter fails with a clear message instead of producing
a silently wrong simulation.
"""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]


def check_positive(name: str, value: Number) -> Number:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError("%s must be positive, got %r" % (name, value))
    return value


def check_non_negative(name: str, value: Number) -> Number:
    """Require ``value >= 0``; return it for chaining."""
    if not value >= 0:
        raise ValueError("%s must be non-negative, got %r" % (name, value))
    return value


def check_finite(name: str, value: Number) -> Number:
    """Require ``value`` to be a finite number; return it for chaining."""
    if not math.isfinite(value):
        raise ValueError("%s must be finite, got %r" % (name, value))
    return value


def check_in_range(
    name: str, value: Number, low: Number, high: Number
) -> Number:
    """Require ``low <= value <= high``; return it for chaining."""
    if not (low <= value <= high):
        raise ValueError(
            "%s must be in [%r, %r], got %r" % (name, low, high, value)
        )
    return value


def check_probability(name: str, p: Number) -> Number:
    """Require ``0 <= p <= 1`` (a probability); return it for chaining.

    NaN fails too: every comparison against NaN is false, so the range
    test rejects it with the same message.
    """
    if not (0.0 <= p <= 1.0):
        raise ValueError(
            "%s must be a probability in [0, 1], got %r" % (name, p)
        )
    return p
