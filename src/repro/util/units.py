"""Unit conversion helpers for RF power and energy.

The wireless stack works internally in dBm for signal strength (matching the
paper's RSSI plots) and in joules for energy.  These helpers keep the
conversions in one place and guard against the classic dBm/mW mix-ups.
"""

from __future__ import annotations

import math

#: Floor used when converting a zero/negative power ratio to dB.  -200 dBm is
#: far below any thermal noise floor and is treated as "no signal".
DBM_MIN = -200.0


def dbm_to_mw(dbm: float) -> float:
    """Convert a power level in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power level in milliwatts to dBm.

    Non-positive powers map to :data:`DBM_MIN` rather than raising, because
    summed interference can legitimately be zero.
    """
    if mw <= 0.0:
        return DBM_MIN
    return 10.0 * math.log10(mw)


def db_to_ratio(db: float) -> float:
    """Convert a gain/loss in dB to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def ratio_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Raises:
        ValueError: if ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError("power ratio must be positive, got %r" % ratio)
    return 10.0 * math.log10(ratio)


def joules(milliwatts: float, seconds: float) -> float:
    """Energy in joules consumed by drawing ``milliwatts`` for ``seconds``."""
    if seconds < 0:
        raise ValueError("duration must be non-negative, got %r" % seconds)
    return milliwatts * 1e-3 * seconds
