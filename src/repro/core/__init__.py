"""The CoCoA core: cooperative localization + energy-efficient coordination.

This package implements the paper's primary contribution (§2):

- **Calibration** (:mod:`repro.core.calibration`): the offline phase that
  measures the channel and builds the *PDF Table* mapping every RSSI value
  to a probability density over distance.
- **Cooperative localization** (:mod:`repro.core.bayes`,
  :mod:`repro.core.estimator`): the grid-based Bayesian inference algorithm
  (Sichitiu & Ramadurai adapted to mobile robots) — Equations (1)-(3) —
  combined with odometry dead reckoning between beacon rounds.
- **Energy-efficient coordination** (:mod:`repro.core.coordinator`): the
  beacon-period/transmit-window schedule (``T``, ``t``, ``k``), radio sleep
  control, drifting local clocks, and SYNC dissemination over MRMM from a
  designated Sync robot.
- **Team orchestration** (:mod:`repro.core.team`): builds a complete
  simulated robot team from a :class:`~repro.core.config.CoCoAConfig` and
  runs the paper's scenarios.
"""

from repro.core.bayes import GridBayesFilter
from repro.core.beaconing import BEACON_KIND, AnchorBeaconer, BeaconPayload
from repro.core.calibration import CalibrationResult, build_pdf_table
from repro.core.clock import DriftingClock
from repro.core.config import (
    CoCoAConfig,
    LocalizationFilter,
    LocalizationMode,
    MulticastProtocol,
)
from repro.core.coordinator import Coordinator, SyncPayload
from repro.core.estimator import PositionEstimator
from repro.core.node import RobotNode, RobotRole
from repro.core.particle import ParticleFilter
from repro.core.pdf_table import DistanceDistribution, PdfTable
from repro.core.team import CoCoATeam, TeamResult

__all__ = [
    "CoCoAConfig",
    "LocalizationMode",
    "LocalizationFilter",
    "MulticastProtocol",
    "DriftingClock",
    "CalibrationResult",
    "build_pdf_table",
    "PdfTable",
    "DistanceDistribution",
    "GridBayesFilter",
    "ParticleFilter",
    "PositionEstimator",
    "AnchorBeaconer",
    "BeaconPayload",
    "BEACON_KIND",
    "Coordinator",
    "SyncPayload",
    "RobotNode",
    "RobotRole",
    "CoCoATeam",
    "TeamResult",
]
