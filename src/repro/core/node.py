"""A complete CoCoA robot node.

:class:`RobotNode` wires one robot's components together: mobility, network
interface, local clock, coordinator, and — depending on its role — either
an :class:`~repro.core.beaconing.AnchorBeaconer` (robots with localization
devices) or a :class:`~repro.core.estimator.PositionEstimator` (robots
without).  One anchor additionally acts as the Sync robot, sourcing the
MRMM mesh and the SYNC messages.
"""

from __future__ import annotations

import enum
import math
from typing import Optional

from repro.core.beaconing import AnchorBeaconer, BeaconPayload
from repro.core.coordinator import Coordinator
from repro.core.estimator import BeaconObservation, PositionEstimator
from repro.mobility.base import MobilityModel
from repro.multicast.odmrp import OdmrpNode
from repro.net.interface import NetworkInterface
from repro.net.packet import ReceivedPacket
from repro.util.geometry import Vec2


class RobotRole(enum.Enum):
    """Whether the robot carries a localization device."""

    ANCHOR = "anchor"
    UNKNOWN = "unknown"


class RobotNode:
    """One robot: identity, role and its wired-together components.

    Construction is handled by :class:`~repro.core.team.CoCoATeam`; the
    class itself only exposes the queries the harness and applications
    need.
    """

    def __init__(
        self,
        node_id: int,
        role: RobotRole,
        mobility: MobilityModel,
        interface: NetworkInterface,
        coordinator: Optional[Coordinator] = None,
        multicast: Optional[OdmrpNode] = None,
        beaconer: Optional[AnchorBeaconer] = None,
        estimator: Optional[PositionEstimator] = None,
        is_sync_robot: bool = False,
    ) -> None:
        if role is RobotRole.ANCHOR and beaconer is None:
            raise ValueError("anchor robots need a beaconer")
        if role is RobotRole.UNKNOWN and estimator is None:
            raise ValueError("unknown robots need an estimator")
        self.node_id = node_id
        self.role = role
        self.mobility = mobility
        self.interface = interface
        self.coordinator = coordinator
        self.multicast = multicast
        self.beaconer = beaconer
        self.estimator = estimator
        self.is_sync_robot = is_sync_robot

    @property
    def is_anchor(self) -> bool:
        return self.role is RobotRole.ANCHOR

    def true_position(self, t: float) -> Vec2:
        """Ground-truth position (simulation-side only)."""
        return self.mobility.position(t)

    def estimated_position(self, t: float) -> Vec2:
        """Where the robot believes it is.

        Anchors report their localization device's output (ground truth in
        the default configuration); unknowns report their estimator state.
        """
        if self.estimator is not None:
            return self.estimator.estimate
        return self.mobility.position(t)

    def localization_error(self, t: float) -> float:
        """Distance between true and estimated position at time ``t``."""
        return self.true_position(t).distance_to(self.estimated_position(t))

    def localization_error_from(self, true_x: float, true_y: float) -> float:
        """:meth:`localization_error` with the true position supplied.

        The team's bulk metric sampler computes every node's true
        position in one vectorized pass (the ``soa_state`` kernel) and
        hands the coordinates in.  Requires an estimator — the sampler
        only measures estimator nodes.  ``math.hypot`` here is exactly
        what ``Vec2.distance_to`` computes, so the value is bit-identical
        to the scalar query.
        """
        estimate = self.estimator.estimate
        return math.hypot(true_x - estimate.x, true_y - estimate.y)

    def handle_beacon(self, received: ReceivedPacket) -> None:
        """Feed a received beacon to the estimator (unknown robots)."""
        if self.estimator is None:
            return
        payload: BeaconPayload = received.packet.payload
        self.estimator.ingest_observation(
            BeaconObservation(
                x=payload.x,
                y=payload.y,
                rssi_dbm=received.rssi_dbm,
                anchor_id=payload.anchor_id,
                t=received.receive_time,
            )
        )
