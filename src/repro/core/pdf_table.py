"""The PDF Table: RSSI → probability density over distance.

This is the central data structure of the localization algorithm (§2.2):

    "This phase constructs the PDF Table, which is stored at each node and
    maps every RSSI value to a Probability Distribution Function (PDF)
    versus distance."

Each 1-dBm RSSI bin holds a :class:`DistanceDistribution`.  Following the
paper's experimental finding (Figure 1), bins whose distances lie within
40 m are represented as fitted Gaussians, while far-regime bins — where
multipath breaks the Gaussian shape — fall back to a smoothed empirical
histogram.  Every distribution keeps a small uniform floor so a single
outlier beacon can never zero out the Bayesian posterior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

#: Fraction of probability mass spread uniformly over the support to keep
#: the filter robust against outlier measurements.
UNIFORM_FLOOR_WEIGHT = 0.02


@dataclass(frozen=True)
class DistanceDistribution:
    """One RSSI bin's distance PDF: Gaussian or empirical histogram.

    Exactly one representation is active: ``is_gaussian`` selects it.

    Attributes:
        is_gaussian: True for the fitted-Gaussian near regime.
        mean_m: Gaussian mean (also stored for histogram bins, as the
            empirical mean — used for diagnostics and table queries).
        std_m: Gaussian σ / empirical standard deviation.
        support_max_m: upper end of the support used for the uniform floor.
        hist_edges: histogram bin edges (empty for Gaussian bins).
        hist_density: histogram densities (empty for Gaussian bins).
        n_samples: calibration samples behind this bin.
    """

    is_gaussian: bool
    mean_m: float
    std_m: float
    support_max_m: float
    hist_edges: np.ndarray = field(default_factory=lambda: np.empty(0))
    hist_density: np.ndarray = field(default_factory=lambda: np.empty(0))
    n_samples: int = 0

    def pdf(
        self, distances_m: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Evaluate the density at the given distances (vectorized).

        The returned density mixes the fitted shape with a uniform floor
        over ``[0, support_max_m]`` (weight
        :data:`UNIFORM_FLOOR_WEIGHT`), so it is strictly positive on the
        support.

        Args:
            distances_m: query distances.
            out: optional preallocated output buffer of the same shape
                (the Bayesian grid filter reuses one per update).
        """
        d = np.asarray(distances_m, dtype=float)
        if self.is_gaussian:
            sigma = max(self.std_m, 0.25)
            # exp(-((d - mean)/sigma)^2 / 2) / (sigma * sqrt(2*pi)),
            # computed in place to keep the grid filter's hot path cheap.
            core = np.subtract(d, self.mean_m, out=out)
            core *= 1.0 / sigma
            np.square(core, out=core)
            core *= -0.5
            np.exp(core, out=core)
            core *= 1.0 / (sigma * np.sqrt(2.0 * np.pi))
        else:
            # Histogram bins are uniform-width (np.histogram with a fixed
            # range), so direct indexing replaces searchsorted.
            n_bins = len(self.hist_density)
            width = self.hist_edges[-1] / n_bins
            # Clip before the integer cast: corrupted coordinates can put
            # cells astronomically far from the claimed beacon origin, and
            # casting such distances to intp is undefined.
            scaled = np.clip(d * (1.0 / width), 0.0, float(n_bins - 1))
            idx = scaled.astype(np.intp)
            padded = self.hist_density[idx]
            outside = d >= self.hist_edges[-1]
            if np.any(outside):
                padded[outside] = 0.0
            if out is not None:
                out[...] = padded
                core = out
            else:
                core = padded
        floor = UNIFORM_FLOOR_WEIGHT / max(self.support_max_m, 1.0)
        core *= 1.0 - UNIFORM_FLOOR_WEIGHT
        core += floor
        return core

    @staticmethod
    def gaussian(
        mean_m: float, std_m: float, support_max_m: float, n_samples: int = 0
    ) -> "DistanceDistribution":
        """Build a Gaussian bin."""
        if std_m < 0:
            raise ValueError("std_m must be non-negative, got %r" % std_m)
        return DistanceDistribution(
            is_gaussian=True,
            mean_m=float(mean_m),
            std_m=float(std_m),
            support_max_m=float(support_max_m),
            n_samples=n_samples,
        )

    @staticmethod
    def from_samples(
        samples_m: np.ndarray,
        support_max_m: float,
        gaussian_limit_m: float = 40.0,
        hist_bins: int = 32,
    ) -> "DistanceDistribution":
        """Fit a bin from calibration samples.

        Uses the paper's rule: a Gaussian when the observed distances are
        within the near regime (mean ≤ ``gaussian_limit_m``), an empirical
        histogram otherwise.
        """
        samples = np.asarray(samples_m, dtype=float)
        if samples.size == 0:
            raise ValueError("cannot fit a distribution from zero samples")
        mean = float(samples.mean())
        std = float(samples.std())
        if mean <= gaussian_limit_m:
            return DistanceDistribution.gaussian(
                mean, std, support_max_m, n_samples=samples.size
            )
        density, edges = np.histogram(
            samples,
            bins=hist_bins,
            range=(0.0, support_max_m),
            density=True,
        )
        return DistanceDistribution(
            is_gaussian=False,
            mean_m=mean,
            std_m=std,
            support_max_m=float(support_max_m),
            hist_edges=edges,
            hist_density=density,
            n_samples=samples.size,
        )


class PdfTable:
    """The calibrated RSSI → distance-PDF lookup table.

    Bins are keyed by integer dBm values.  Lookups for RSSI values between
    populated bins snap to the nearest available bin; lookups beyond the
    table's edges clamp to the first/last bin — a beacon is never discarded
    for having an RSSI the calibration did not cover (it just gets the
    closest, widest evidence available).
    """

    def __init__(
        self,
        bins: Dict[int, DistanceDistribution],
        support_max_m: float,
    ) -> None:
        if not bins:
            raise ValueError("PdfTable needs at least one populated bin")
        if support_max_m <= 0:
            raise ValueError(
                "support_max_m must be positive, got %r" % support_max_m
            )
        self._bins = dict(bins)
        self._keys = np.array(sorted(self._bins), dtype=int)
        self._support_max_m = float(support_max_m)
        # LUT kernel state (see repro.kernels): disabled by default so
        # direct PdfTable users always get the exact densities; the team
        # switches it on per its KernelConfig.  LUTs build lazily, one
        # per *queried* bin, by sampling the bin's exact pdf() (uniform
        # floor included) on a dense grid over twice the support — grid
        # cells can sit up to the area diagonal away from a beacon, and
        # anything beyond the domain clamps to the last node, which is
        # floor-level density just like the exact evaluation.
        self._lut_enabled = False
        self._lut_entries = 16384
        self._luts: Dict[int, np.ndarray] = {}

    def set_lut(self, enabled: bool, entries: Optional[int] = None) -> None:
        """Switch LUT-based density evaluation on or off.

        Args:
            enabled: route :meth:`pdf` / :meth:`pdf_for_key` through the
                per-bin lookup tables (tolerance-identical) instead of
                the exact per-call evaluation (bit-identical reference).
            entries: LUT resolution; changing it drops any cached LUTs.

        Raises:
            ValueError: if ``entries`` is below 2.
        """
        if entries is not None:
            if entries < 2:
                raise ValueError(
                    "LUT entries must be >= 2, got %r" % entries
                )
            if int(entries) != self._lut_entries:
                self._lut_entries = int(entries)
                self._luts.clear()
        self._lut_enabled = bool(enabled)

    @property
    def lut_enabled(self) -> bool:
        """True when densities come from the lookup tables."""
        return self._lut_enabled

    def __getstate__(self):
        # Keep pickles (process-pool workers, the orchestrator's result
        # cache) small and deterministic: LUTs are derived data and
        # rebuild lazily on first use after unpickling.
        state = self.__dict__.copy()
        state["_luts"] = {}
        return state

    @property
    def support_max_m(self) -> float:
        """Upper end of the distance support (metres)."""
        return self._support_max_m

    @property
    def rssi_range(self) -> Tuple[int, int]:
        """Lowest and highest populated RSSI bins (dBm)."""
        return int(self._keys[0]), int(self._keys[-1])

    @property
    def n_bins(self) -> int:
        return len(self._bins)

    def bin_for(self, rssi_dbm: float) -> DistanceDistribution:
        """Return the distribution of the bin nearest to ``rssi_dbm``."""
        return self._bins[self.bin_key_for(rssi_dbm)]

    def bin_key_for(self, rssi_dbm: float) -> int:
        """The populated integer-dBm bin an RSSI value snaps to.

        Same snap rule as :meth:`bin_for`; the key doubles as the RSSI
        component of constraint-field cache keys, so two RSSI readings
        that resolve to the same bin share one cached field.
        """
        key = int(round(rssi_dbm))
        if key in self._bins:
            return key
        idx = int(np.argmin(np.abs(self._keys - key)))
        return int(self._keys[idx])

    def pdf(
        self,
        rssi_dbm: float,
        distances_m: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Density over distance for a measured RSSI (Equation 1's
        ``PDF_RSSI``)."""
        return self.pdf_for_key(
            self.bin_key_for(rssi_dbm), distances_m, out=out
        )

    def pdf_for_key(
        self,
        key: int,
        distances_m: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Density over distance for an already-resolved bin key.

        With the LUT kernel off this is the exact evaluation; with it on,
        each distance snaps to the nearest LUT node (one ``np.take``
        instead of a grid-sized ``exp``).  Nearest-node quantization
        bounds the relative density error by roughly
        ``0.5 * step * |d - mean| / sigma^2`` for Gaussian bins, which at
        the default resolution stays far inside the 0.1 % figure-metric
        tolerance the regression suite pins.
        """
        if not self._lut_enabled:
            return self._bins[key].pdf(distances_m, out=out)
        return np.take(
            self._lut_for(key), self.lut_index_for(distances_m), out=out
        )

    def _lut_for(self, key: int) -> np.ndarray:
        lut = self._luts.get(key)
        if lut is None:
            nodes = np.linspace(
                0.0, 2.0 * self._support_max_m, self._lut_entries
            )
            lut = np.asarray(self._bins[key].pdf(nodes), dtype=float)
            lut.flags.writeable = False
            self._luts[key] = lut
        return lut

    @property
    def lut_params(self) -> Tuple[int, float]:
        """The LUT geometry an index field depends on (see
        :meth:`lut_index_for`); cached index fields are keyed on it."""
        return (self._lut_entries, self._support_max_m)

    def lut_index_for(self, distances_m: np.ndarray) -> np.ndarray:
        """Nearest-LUT-node indices for a distance field.

        The indices depend only on the distances and :attr:`lut_params` —
        not on the RSSI bin — so a caller evaluating several bins at the
        same beacon position (the constraint-field cache does, one per
        heard RSSI) can compute them once and feed :meth:`pdf_from_index`
        per bin, with bit-identical results to :meth:`pdf_for_key`.
        """
        d = np.asarray(distances_m, dtype=float)
        inv_step = (self._lut_entries - 1) / (2.0 * self._support_max_m)
        # Clip before the integer cast (same reasoning as the histogram
        # path: corrupted coordinates can be astronomically far away).
        scaled = np.clip(
            d * inv_step + 0.5, 0.0, float(self._lut_entries - 1)
        )
        return scaled.astype(np.intp)

    def pdf_from_index(
        self,
        key: int,
        index: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Density over distance from a precomputed LUT index field.

        Only meaningful while the LUT kernel is enabled and ``index``
        came from :meth:`lut_index_for` under the current
        :attr:`lut_params`.
        """
        if not self._lut_enabled:
            raise RuntimeError(
                "pdf_from_index requires the LUT kernel to be enabled"
            )
        if out is None:
            # Fancy indexing gathers the same elements as np.take (the
            # indices are in range by construction) a shade faster.
            return self._lut_for(key)[index]
        return np.take(self._lut_for(key), index, out=out)

    def expected_distance(self, rssi_dbm: float) -> float:
        """The bin's mean distance — a crude point-ranging estimate used
        by diagnostics and the power-control extension."""
        return self.bin_for(rssi_dbm).mean_m

    def items(self):
        """Iterate ``(rssi_dbm, distribution)`` pairs in RSSI order."""
        for key in self._keys:
            yield int(key), self._bins[int(key)]
