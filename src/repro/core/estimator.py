"""Per-robot position estimation: the three strategies of §4.

:class:`PositionEstimator` implements all three localization modes the
paper compares, behind one interface driven by the coordinator:

- **ODOMETRY_ONLY** (§4.1): dead reckoning from a provided initial pose;
  beacons are ignored.
- **RF_ONLY** (§4.2): the Bayesian filter produces a fix each beacon round;
  the estimate stays frozen between rounds ("update their position
  estimates, which remain the same, until the T-second period expires").
- **COCOA** (§4.3): the fix re-anchors a dead reckoner that tracks the
  robot through the sleep phase; at the next round the dead-reckoned
  estimate is thrown away and replaced by the fresh fix ("the robots throw
  away their currently estimated positions and find a new position using
  the beacons").

Heading re-anchoring: an RF fix provides position, not orientation.  The
estimator recovers heading by comparing the displacement the dead reckoner
*measured* over the beacon period against the displacement the two RF
fixes *observed*, rotating the heading estimate by the discrepancy.  The
correction quality scales with how far the robot travelled between fixes,
which is precisely why very short beacon periods hurt CoCoA (the paper's
surprising T = 10 s result, §4.3.1) — each correction is derived from a
displacement comparable to the fix noise.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bayes import GridBayesFilter
from repro.core.config import LocalizationMode
from repro.core.pdf_table import PdfTable
from repro.mobility.dead_reckoning import DeadReckoning
from repro.mobility.odometry import OdometrySensor
from repro.util.geometry import Rect, Vec2, normalize_angle


class PositionEstimator:
    """One robot's localization state machine.

    Args:
        mode: which of the paper's three strategies to run.
        area: deployment rectangle (grid support).
        pdf_table: the calibrated PDF Table (unused in ODOMETRY_ONLY).
        odometry: the robot's odometry sensor (None in RF_ONLY — that
            baseline deliberately ignores odometry).
        grid_resolution_m: Bayesian grid cell size.
        min_beacons_for_fix: beacons required before a fix is trusted
            (paper: 3).
        initial_position: starting estimate.  ODOMETRY_ONLY requires the
            true deployment position ("the robots are provided with their
            initial coordinates"); the RF modes default to the area's
            center, the mean of their uniform prior.
        initial_heading: starting heading estimate (radians); only
            meaningful when the initial position is trusted.
        min_heading_fix_displacement_m: displacements shorter than this do
            not trigger a heading correction (the angle would be pure
            noise).
        position_filter: optional pre-built Bayesian filter implementing
            the ``reset_uniform`` / ``apply_beacon`` / ``estimate`` /
            ``position_std_m`` / ``beacons_applied`` protocol (e.g. a
            :class:`~repro.core.particle.ParticleFilter`); defaults to the
            paper's :class:`~repro.core.bayes.GridBayesFilter`.
    """

    def __init__(
        self,
        mode: LocalizationMode,
        area: Rect,
        pdf_table: Optional[PdfTable] = None,
        odometry: Optional[OdometrySensor] = None,
        grid_resolution_m: float = 2.0,
        min_beacons_for_fix: int = 3,
        initial_position: Optional[Vec2] = None,
        initial_heading: float = 0.0,
        min_heading_fix_displacement_m: float = 1.0,
        position_filter=None,
    ) -> None:
        self._mode = mode
        self._area = area
        self._table = pdf_table
        self._odometry = odometry
        self._min_beacons = min_beacons_for_fix
        self._min_heading_disp = min_heading_fix_displacement_m

        if mode is LocalizationMode.ODOMETRY_ONLY:
            if initial_position is None:
                raise ValueError(
                    "ODOMETRY_ONLY requires the true initial position"
                )
            if odometry is None:
                raise ValueError("ODOMETRY_ONLY requires an odometry sensor")
        if mode is not LocalizationMode.ODOMETRY_ONLY and pdf_table is None:
            raise ValueError("%s requires a PDF table" % mode.value)
        if mode is LocalizationMode.COCOA and odometry is None:
            raise ValueError("COCOA requires an odometry sensor")

        start = (
            initial_position if initial_position is not None else area.center
        )
        self._estimate = start
        self._filter = None
        if mode is not LocalizationMode.ODOMETRY_ONLY:
            if position_filter is not None:
                self._filter = position_filter
            else:
                self._filter = GridBayesFilter(area, grid_resolution_m)
        self._dead_reckoner: Optional[DeadReckoning] = None
        if odometry is not None and mode is not LocalizationMode.RF_ONLY:
            self._dead_reckoner = DeadReckoning(start, initial_heading)
        self._last_fix: Optional[Vec2] = None
        self._window_open = False
        self.fixes = 0
        self.beacons_heard = 0
        self.windows_without_fix = 0
        #: Posterior spread of the most recent fix — the "goodness of the
        #: location" measure the beacon-promotion extension gates on.
        self.last_fix_std_m: Optional[float] = None

    @property
    def mode(self) -> LocalizationMode:
        return self._mode

    @property
    def estimate(self) -> Vec2:
        """The robot's current position estimate."""
        return self._estimate

    @property
    def has_fix(self) -> bool:
        """True once at least one RF fix has been produced."""
        return self._last_fix is not None

    @property
    def filter(self):
        return self._filter

    def tick(self, t: float) -> None:
        """Advance odometry by one integration step (called every second).

        The odometer runs continuously — robots keep moving and measuring
        while their *radio* sleeps.
        """
        if self._odometry is None or self._dead_reckoner is None:
            return
        reading = self._odometry.read(t)
        position = self._dead_reckoner.advance(reading)
        if self._mode is not LocalizationMode.RF_ONLY:
            self._estimate = position

    def on_window_open(self) -> None:
        """A new beacon round begins: restart the filter from uniform."""
        if self._filter is None:
            return
        self._filter.reset_uniform()
        self._window_open = True

    def on_beacon(self, beacon_position: Vec2, rssi_dbm: float) -> None:
        """Incorporate a received beacon into the current round's filter.

        Beacons heard while no round is open (e.g. after this node closed
        its window but before it slept) still count — they seed the filter
        that the *next* window close will read, matching a real
        implementation that never throws a measurement away.
        """
        if self._filter is None or self._table is None:
            return
        self._filter.apply_beacon(beacon_position, rssi_dbm, self._table)
        self.beacons_heard += 1

    def on_window_close(self) -> None:
        """The transmit window ended: produce a fix if enough beacons came.

        With fewer than the minimum beacons the robot "continues with its
        old estimated position from the previous beacon period" (§2.3).
        """
        self._window_open = False
        if self._filter is None:
            return
        if self._filter.beacons_applied < self._min_beacons:
            self.windows_without_fix += 1
            return
        fix = self._filter.estimate()
        self.last_fix_std_m = self._filter.position_std_m()
        self.fixes += 1
        if self._mode is LocalizationMode.RF_ONLY:
            self._estimate = fix
        else:
            self._apply_cocoa_fix(fix)
        self._last_fix = fix

    def _apply_cocoa_fix(self, fix: Vec2) -> None:
        """Re-anchor the dead reckoner on a fresh RF fix."""
        reckoner = self._dead_reckoner
        assert reckoner is not None
        if self._last_fix is not None:
            measured = fix - self._last_fix
            reckoned = reckoner.position - self._last_fix
            if (
                measured.norm() >= self._min_heading_disp
                and reckoned.norm() >= self._min_heading_disp
            ):
                correction = normalize_angle(
                    Vec2.zero().heading_to(measured)
                    - Vec2.zero().heading_to(reckoned)
                )
                reckoner.reset(
                    fix, normalize_angle(reckoner.heading + correction)
                )
                self._estimate = fix
                return
        reckoner.reset(fix)
        self._estimate = fix
