"""Per-robot position estimation: the three strategies of §4.

:class:`PositionEstimator` implements all three localization modes the
paper compares, behind one interface driven by the coordinator:

- **ODOMETRY_ONLY** (§4.1): dead reckoning from a provided initial pose;
  beacons are ignored.
- **RF_ONLY** (§4.2): the Bayesian filter produces a fix each beacon round;
  the estimate stays frozen between rounds ("update their position
  estimates, which remain the same, until the T-second period expires").
- **COCOA** (§4.3): the fix re-anchors a dead reckoner that tracks the
  robot through the sleep phase; at the next round the dead-reckoned
  estimate is thrown away and replaced by the fresh fix ("the robots throw
  away their currently estimated positions and find a new position using
  the beacons").

Heading re-anchoring: an RF fix provides position, not orientation.  The
estimator recovers heading by comparing the displacement the dead reckoner
*measured* over the beacon period against the displacement the two RF
fixes *observed*, rotating the heading estimate by the discrepancy.  The
correction quality scales with how far the robot travelled between fixes,
which is precisely why very short beacon periods hurt CoCoA (the paper's
surprising T = 10 s result, §4.3.1) — each correction is derived from a
displacement comparable to the fix noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.bayes import GridBayesFilter
from repro.core.config import LocalizationMode
from repro.core.pdf_table import PdfTable
from repro.mobility.dead_reckoning import DeadReckoning
from repro.mobility.odometry import OdometrySensor
from repro.util.geometry import Rect, Vec2, normalize_angle


@dataclass(frozen=True)
class BeaconObservation:
    """One beacon measurement, as the estimator ingests it.

    This is the unit of the estimator's *ingestion surface*: both the
    batch coordinator (via :meth:`RobotNode.handle_beacon
    <repro.core.node.RobotNode.handle_beacon>`) and the streaming
    service (:mod:`repro.serve`) feed estimators through
    :meth:`PositionEstimator.ingest_observation` with these records, so
    a recorded observation stream replays bit-identically through
    either path.

    Attributes:
        x: the claiming anchor's advertised x coordinate (metres).
        y: the claiming anchor's advertised y coordinate (metres).
        rssi_dbm: the measured signal strength.
        anchor_id: the claiming anchor's node id (``None`` when the
            source is anonymous).
        t: receive time in simulated seconds.
    """

    x: float
    y: float
    rssi_dbm: float
    anchor_id: Optional[int] = None
    t: float = 0.0

    @property
    def position(self) -> Vec2:
        return Vec2(self.x, self.y)


class PositionEstimator:
    """One robot's localization state machine.

    Args:
        mode: which of the paper's three strategies to run.
        area: deployment rectangle (grid support).
        pdf_table: the calibrated PDF Table (unused in ODOMETRY_ONLY).
        odometry: the robot's odometry sensor (None in RF_ONLY — that
            baseline deliberately ignores odometry).
        grid_resolution_m: Bayesian grid cell size.
        min_beacons_for_fix: beacons required before a fix is trusted
            (paper: 3).
        initial_position: starting estimate.  ODOMETRY_ONLY requires the
            true deployment position ("the robots are provided with their
            initial coordinates"); the RF modes default to the area's
            center, the mean of their uniform prior.
        initial_heading: starting heading estimate (radians); only
            meaningful when the initial position is trusted.
        min_heading_fix_displacement_m: displacements shorter than this do
            not trigger a heading correction (the angle would be pure
            noise).
        position_filter: optional pre-built Bayesian filter implementing
            the ``reset_uniform`` / ``apply_beacon`` / ``estimate`` /
            ``position_std_m`` / ``beacons_applied`` protocol (e.g. a
            :class:`~repro.core.particle.ParticleFilter`); defaults to the
            paper's :class:`~repro.core.bayes.GridBayesFilter`.
        beacon_gate_sigma: if > 0, reject beacons whose implied range
            (PDF-table mean for the measured RSSI) disagrees with the
            distance to the current estimate by more than this many
            table sigmas plus the last fix spread plus
            ``beacon_gate_slack_m`` — Mahalanobis-style gating against
            corrupted coordinates and grossly miscalibrated anchors.
            The gate only arms after a window that produced a fix: with
            no trusted estimate every beacon must count, and a window
            the gate starved of beacons disarms it — the robot's own
            estimate, not the beacons, is then the likely outlier, so
            re-arming only after the next fix makes a gate-induced
            death spiral (bad estimate gates good beacons, which keeps
            the estimate bad) structurally impossible.
        beacon_gate_slack_m: additive gate slack covering robot motion
            between fixes.
        watchdog: enable the posterior-health watchdog — a degenerate
            filter (see ``is_degenerate`` on the filter) is reset to the
            prior at window close instead of producing a junk fix.
        constraint_cache: optional team-shared
            :class:`~repro.core.constraint_cache.ConstraintFieldCache`.
            Attached to the position filter when the filter supports it
            (the grid filter does; the particle filter, whose particles
            are per-robot, ignores it).  Bit-identical either way.
        anchor_expiry_s: if > 0, keep a per-anchor suspicion score that
            decays with this time constant; anchors above the quarantine
            threshold are ignored until their suspicion expires
            (stale/drifted-anchor expiry).  Suspicion rises on gated
            beacons and, more sharply, on *fix residuals*: after each
            successful fix, an anchor whose RSSI-implied range disagrees
            with the fix by more than ``RESIDUAL_SIGMA`` table sigmas is
            suspected.  The residual test is what actually catches
            slowly drifting calibration — per-beacon gating must
            tolerate raw RSSI noise, while a multi-beacon fix averages
            that noise away and exposes the systematic offset.
    """

    #: Suspicion score at which an anchor is quarantined.
    QUARANTINE_THRESHOLD = 3.0
    #: Fix-residual z-score beyond which an anchor draws suspicion.
    #: Calibrated against the shipped PDF table: honest beacons exceed
    #: it ~3% of the time (suspicion decays faster than that trickle
    #: accumulates), beacons from a 6 dB-drifted radio ~50%.
    RESIDUAL_SIGMA = 2.0
    #: Posterior spread above which a fix is too uncertain to judge
    #: anchors; residual suspicion is skipped for that window.
    RESIDUAL_MAX_FIX_STD_M = 5.0

    def __init__(
        self,
        mode: LocalizationMode,
        area: Rect,
        pdf_table: Optional[PdfTable] = None,
        odometry: Optional[OdometrySensor] = None,
        grid_resolution_m: float = 2.0,
        min_beacons_for_fix: int = 3,
        initial_position: Optional[Vec2] = None,
        initial_heading: float = 0.0,
        min_heading_fix_displacement_m: float = 1.0,
        position_filter=None,
        beacon_gate_sigma: float = 0.0,
        beacon_gate_slack_m: float = 10.0,
        watchdog: bool = False,
        anchor_expiry_s: float = 0.0,
        constraint_cache=None,
    ) -> None:
        self._mode = mode
        self._area = area
        self._table = pdf_table
        self._odometry = odometry
        self._min_beacons = min_beacons_for_fix
        self._min_heading_disp = min_heading_fix_displacement_m
        self._gate_sigma = beacon_gate_sigma
        self._gate_slack_m = beacon_gate_slack_m
        self._watchdog = watchdog
        self._anchor_expiry_s = anchor_expiry_s
        #: anchor_id -> (suspicion score, time of last update)
        self._suspicion: Dict[int, tuple] = {}
        #: (anchor_id, claimed position, rssi) applied this window.
        self._window_beacons: list = []
        self._last_beacon_t = 0.0

        if mode is LocalizationMode.ODOMETRY_ONLY:
            if initial_position is None:
                raise ValueError(
                    "ODOMETRY_ONLY requires the true initial position"
                )
            if odometry is None:
                raise ValueError("ODOMETRY_ONLY requires an odometry sensor")
        if mode is not LocalizationMode.ODOMETRY_ONLY and pdf_table is None:
            raise ValueError("%s requires a PDF table" % mode.value)
        if mode is LocalizationMode.COCOA and odometry is None:
            raise ValueError("COCOA requires an odometry sensor")

        start = (
            initial_position if initial_position is not None else area.center
        )
        self._estimate = start
        self._filter = None
        if mode is not LocalizationMode.ODOMETRY_ONLY:
            if position_filter is not None:
                self._filter = position_filter
            else:
                self._filter = GridBayesFilter(area, grid_resolution_m)
            if constraint_cache is not None:
                attach = getattr(
                    self._filter, "attach_constraint_cache", None
                )
                if attach is not None:
                    attach(constraint_cache)
        self._dead_reckoner: Optional[DeadReckoning] = None
        if odometry is not None and mode is not LocalizationMode.RF_ONLY:
            self._dead_reckoner = DeadReckoning(start, initial_heading)
        self._last_fix: Optional[Vec2] = None
        self._gate_armed = False
        self._window_open = False
        self.fixes = 0
        self.beacons_heard = 0
        self.windows_without_fix = 0
        #: Beacons rejected by the geometric consistency gate.
        self.beacons_gated = 0
        #: Beacons ignored because their anchor is quarantined.
        self.beacons_quarantined = 0
        #: Posterior-health watchdog resets.
        self.watchdog_resets = 0
        #: Anchors suspected on fix residuals (telemetry; counts events,
        #: not distinct anchors).
        self.residual_suspicions = 0
        #: Posterior spread of the most recent fix — the "goodness of the
        #: location" measure the beacon-promotion extension gates on.
        self.last_fix_std_m: Optional[float] = None
        #: Optional observer of the ingestion surface (see
        #: :meth:`set_ingest_tap`).  Pure observation: never consulted
        #: when unset, never allowed to change estimator behaviour.
        self._ingest_tap: Optional[
            Callable[[str, Optional[BeaconObservation]], None]
        ] = None

    @property
    def mode(self) -> LocalizationMode:
        return self._mode

    @property
    def estimate(self) -> Vec2:
        """The robot's current position estimate."""
        return self._estimate

    @property
    def has_fix(self) -> bool:
        """True once at least one RF fix has been produced."""
        return self._last_fix is not None

    @property
    def filter(self):
        return self._filter

    def tick(self, t: float) -> None:
        """Advance odometry by one integration step (called every second).

        The odometer runs continuously — robots keep moving and measuring
        while their *radio* sleeps.
        """
        if self._odometry is None or self._dead_reckoner is None:
            return
        reading = self._odometry.read(t)
        position = self._dead_reckoner.advance(reading)
        if self._mode is not LocalizationMode.RF_ONLY:
            self._estimate = position

    # -- ingestion surface ----------------------------------------------------
    #
    # The explicit API every observation source drives: the batch
    # coordinator (RobotNode.handle_beacon, CoCoATeam's metric sampler)
    # and the streaming service (repro.serve) call exactly these three
    # methods, so the estimator cannot tell a live simulation from a
    # replayed observation log.  First step toward a swappable
    # Estimator protocol (ROADMAP item 5).

    def ingest_observation(self, observation: BeaconObservation) -> None:
        """Incorporate one beacon observation (the streaming entry point).

        Equivalent to :meth:`on_beacon` with the observation's fields;
        the tap (if any) sees the observation before it is applied.
        """
        if self._ingest_tap is not None:
            self._ingest_tap("beacon", observation)
        self.on_beacon(
            observation.position,
            observation.rssi_dbm,
            anchor_id=observation.anchor_id,
            t=observation.t,
        )

    def advance_to(self, sim_time: float) -> None:
        """Advance internal motion state to ``sim_time``.

        For odometry-carrying modes this integrates one odometer step
        (identical to :meth:`tick`); RF_ONLY estimators have no motion
        state and the call is a no-op — which is what lets the service
        replay an RF observation stream without a mobility model.
        """
        self.tick(sim_time)

    def set_ingest_tap(
        self,
        tap: Optional[Callable[[str, Optional[BeaconObservation]], None]],
    ) -> None:
        """Install (or with ``None`` remove) an ingestion observer.

        The tap is called with ``("open", None)`` as a beacon round
        begins (before the filter resets), ``("beacon", observation)``
        for every observation entering :meth:`ingest_observation`
        (before it is applied, gated or not), and ``("close", None)``
        after a round closes (fix state is final when it fires).  Taps
        observe; they must not call back into the estimator.
        """
        self._ingest_tap = tap

    def on_window_open(self) -> None:
        """A new beacon round begins: restart the filter from uniform."""
        if self._ingest_tap is not None:
            self._ingest_tap("open", None)
        if self._filter is None:
            return
        self._filter.reset_uniform()
        self._window_beacons.clear()
        self._window_open = True

    def on_beacon(
        self,
        beacon_position: Vec2,
        rssi_dbm: float,
        anchor_id: Optional[int] = None,
        t: float = 0.0,
    ) -> None:
        """Incorporate a received beacon into the current round's filter.

        Beacons heard while no round is open (e.g. after this node closed
        its window but before it slept) still count — they seed the filter
        that the *next* window close will read, matching a real
        implementation that never throws a measurement away.

        Args:
            beacon_position: the anchor's claimed coordinates.
            rssi_dbm: the measured signal strength.
            anchor_id: the claiming anchor (enables the quarantine
                ledger); optional for backward compatibility.
            t: receive time (drives the suspicion decay).
        """
        if self._filter is None or self._table is None:
            return
        if not (
            math.isfinite(beacon_position.x)
            and math.isfinite(beacon_position.y)
            and math.isfinite(rssi_dbm)
        ):
            # Non-finite measurements are garbage regardless of any
            # defense configuration; the healthy pipeline never produces
            # them, so dropping them cannot perturb a baseline run.
            return
        if self._is_quarantined(anchor_id, t):
            self.beacons_quarantined += 1
            return
        if self._gate_rejects(beacon_position, rssi_dbm):
            self.beacons_gated += 1
            self._raise_suspicion(anchor_id, t)
            return
        self._filter.apply_beacon(
            beacon_position, rssi_dbm, self._table, anchor_id=anchor_id
        )
        self.beacons_heard += 1
        self._last_beacon_t = max(self._last_beacon_t, t)
        if self._anchor_expiry_s > 0.0 and anchor_id is not None:
            self._window_beacons.append(
                (anchor_id, beacon_position, rssi_dbm)
            )

    # -- graceful-degradation defenses ---------------------------------------

    def _gate_rejects(self, beacon_position: Vec2, rssi_dbm: float) -> bool:
        """The beacon gate: is the claimed position geometrically
        inconsistent with the current estimate and the measured RSSI?"""
        if (
            self._gate_sigma <= 0.0
            or self._last_fix is None
            or not self._gate_armed
        ):
            return False
        implied = self._table.bin_for(rssi_dbm)
        separation = self._estimate.distance_to(beacon_position)
        tolerance = (
            self._gate_sigma * max(implied.std_m, 1.0)
            + (self.last_fix_std_m or 0.0)
            + self._gate_slack_m
        )
        return abs(separation - implied.mean_m) > tolerance

    def _suspicion_of(self, anchor_id: int, t: float) -> float:
        score, since = self._suspicion.get(anchor_id, (0.0, t))
        if self._anchor_expiry_s <= 0.0:
            return score
        return score * math.exp(-max(t - since, 0.0) / self._anchor_expiry_s)

    def _is_quarantined(self, anchor_id: Optional[int], t: float) -> bool:
        if self._anchor_expiry_s <= 0.0 or anchor_id is None:
            return False
        return (
            self._suspicion_of(anchor_id, t) >= self.QUARANTINE_THRESHOLD
        )

    def _suspect_residual_anchors(self, fix: Vec2) -> None:
        """Raise suspicion for anchors inconsistent with a fresh fix.

        A successful fix averages the window's beacons, so an anchor
        whose RSSI-implied range still disagrees with it by several
        table sigmas is systematically wrong (drifted calibration,
        stale coordinates) rather than unlucky.  Only *confident* fixes
        (posterior spread below ``RESIDUAL_MAX_FIX_STD_M``) may judge
        anchors: when the posterior is wide the fix itself is the least
        trustworthy quantity in the residual, and feeding it into
        quarantine blames honest anchors for the robot's own confusion.
        """
        if self._anchor_expiry_s <= 0.0 or not self._window_beacons:
            return
        fix_std_m = self._filter.position_std_m()
        if fix_std_m > self.RESIDUAL_MAX_FIX_STD_M:
            self._window_beacons.clear()
            return
        t = self._last_beacon_t
        for anchor_id, position, rssi_dbm in self._window_beacons:
            implied = self._table.bin_for(rssi_dbm)
            z = abs(
                fix.distance_to(position) - implied.mean_m
            ) / max(implied.std_m, 1.0)
            if z > self.RESIDUAL_SIGMA:
                # Scale suspicion with how wrong the anchor is, so a
                # grossly drifted radio is quarantined within a window
                # or two while borderline ones need repeat offenses.
                self.residual_suspicions += 1
                self._raise_suspicion(
                    anchor_id, t, amount=1.0 + (z - self.RESIDUAL_SIGMA)
                )
        self._window_beacons.clear()

    def _raise_suspicion(
        self, anchor_id: Optional[int], t: float, amount: float = 1.0
    ) -> None:
        if self._anchor_expiry_s <= 0.0 or anchor_id is None:
            return
        self._suspicion[anchor_id] = (
            self._suspicion_of(anchor_id, t) + amount,
            t,
        )

    def on_window_close(self) -> None:
        """The transmit window ended: produce a fix if enough beacons came.

        With fewer than the minimum beacons the robot "continues with its
        old estimated position from the previous beacon period" (§2.3).
        """
        self._close_window()
        if self._ingest_tap is not None:
            self._ingest_tap("close", None)

    def _close_window(self) -> None:
        self._window_open = False
        if self._filter is None:
            return
        if self._watchdog and self._posterior_degenerate():
            # The round's evidence broke the posterior: reset to the
            # prior and keep the previous estimate rather than adopting
            # a confidently wrong fix.
            self._filter.reset_uniform()
            self.watchdog_resets += 1
            self.windows_without_fix += 1
            self._gate_armed = False
            return
        if self._filter.beacons_applied < self._min_beacons:
            self.windows_without_fix += 1
            self._gate_armed = False
            return
        fix = self._filter.estimate()
        self._gate_armed = True
        self._suspect_residual_anchors(fix)
        self.last_fix_std_m = self._filter.position_std_m()
        self.fixes += 1
        if self._mode is LocalizationMode.RF_ONLY:
            self._estimate = fix
        else:
            self._apply_cocoa_fix(fix)
        self._last_fix = fix

    def _posterior_degenerate(self) -> bool:
        """Watchdog check, filter-agnostic: a filter without an
        ``is_degenerate`` probe (e.g. the particle filter) only trips on
        a non-finite point estimate."""
        probe = getattr(self._filter, "is_degenerate", None)
        if probe is not None and probe():
            return True
        if self._filter.beacons_applied >= self._min_beacons:
            estimate = self._filter.estimate()
            return not (
                math.isfinite(estimate.x) and math.isfinite(estimate.y)
            )
        return False

    # -- checkpointing --------------------------------------------------------
    #
    # snapshot()/restore() serialize every piece of evolving state the
    # ingestion surface can touch, so that restore → continue replays
    # bit-identically to never pausing.  This is what lets the streaming
    # service (repro.serve) checkpoint tenant sessions through the
    # orchestrator cache and survive crashes without drifting from the
    # batch recording (tests/test_serve_durability.py).  Construction
    # state (mode, grid geometry, PDF table, gate/defense knobs) is
    # deliberately NOT captured: the restoring side must rebuild an
    # identically-configured estimator first, and the filter's geometry
    # guard refuses a mismatch instead of silently resampling.

    def snapshot(self) -> Dict[str, object]:
        """The estimator's evolving state as a picklable mapping.

        Raises:
            ValueError: the position filter does not support snapshots.
        """
        filter_state = None
        if self._filter is not None:
            probe = getattr(self._filter, "snapshot_state", None)
            if probe is None:
                raise ValueError(
                    "position filter %s does not support snapshots"
                    % type(self._filter).__name__
                )
            filter_state = probe()
        reckoner_state = None
        if self._dead_reckoner is not None:
            reckoner_state = self._dead_reckoner.snapshot_state()
        return {
            "mode": self._mode.value,
            "estimate": (self._estimate.x, self._estimate.y),
            "last_fix": (
                None if self._last_fix is None
                else (self._last_fix.x, self._last_fix.y)
            ),
            "gate_armed": self._gate_armed,
            "window_open": self._window_open,
            "fixes": self.fixes,
            "beacons_heard": self.beacons_heard,
            "windows_without_fix": self.windows_without_fix,
            "beacons_gated": self.beacons_gated,
            "beacons_quarantined": self.beacons_quarantined,
            "watchdog_resets": self.watchdog_resets,
            "residual_suspicions": self.residual_suspicions,
            "last_fix_std_m": self.last_fix_std_m,
            "last_beacon_t": self._last_beacon_t,
            "suspicion": dict(self._suspicion),
            "window_beacons": [
                (anchor_id, position.x, position.y, rssi_dbm)
                for anchor_id, position, rssi_dbm in self._window_beacons
            ],
            "filter": filter_state,
            "dead_reckoner": reckoner_state,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Adopt a :meth:`snapshot` mapping (bit-exact resume).

        Raises:
            ValueError: the snapshot came from a different localization
                mode, or the filter/grid shapes do not match.
        """
        if state.get("mode") != self._mode.value:
            raise ValueError(
                "snapshot mode %r does not match estimator mode %r"
                % (state.get("mode"), self._mode.value)
            )
        if self._filter is not None:
            if state.get("filter") is None:
                raise ValueError("snapshot carries no filter state")
            self._filter.restore_state(state["filter"])
        if self._dead_reckoner is not None:
            if state.get("dead_reckoner") is None:
                raise ValueError("snapshot carries no dead-reckoner state")
            self._dead_reckoner.restore_state(state["dead_reckoner"])
        x, y = state["estimate"]
        self._estimate = Vec2(x, y)
        last_fix = state["last_fix"]
        self._last_fix = None if last_fix is None else Vec2(*last_fix)
        self._gate_armed = bool(state["gate_armed"])
        self._window_open = bool(state["window_open"])
        self.fixes = int(state["fixes"])
        self.beacons_heard = int(state["beacons_heard"])
        self.windows_without_fix = int(state["windows_without_fix"])
        self.beacons_gated = int(state["beacons_gated"])
        self.beacons_quarantined = int(state["beacons_quarantined"])
        self.watchdog_resets = int(state["watchdog_resets"])
        self.residual_suspicions = int(state["residual_suspicions"])
        self.last_fix_std_m = state["last_fix_std_m"]
        self._last_beacon_t = state["last_beacon_t"]
        self._suspicion = dict(state["suspicion"])
        self._window_beacons = [
            (anchor_id, Vec2(bx, by), rssi_dbm)
            for anchor_id, bx, by, rssi_dbm in state["window_beacons"]
        ]

    def _apply_cocoa_fix(self, fix: Vec2) -> None:
        """Re-anchor the dead reckoner on a fresh RF fix."""
        reckoner = self._dead_reckoner
        assert reckoner is not None
        if self._last_fix is not None:
            measured = fix - self._last_fix
            reckoned = reckoner.position - self._last_fix
            if (
                measured.norm() >= self._min_heading_disp
                and reckoned.norm() >= self._min_heading_disp
            ):
                correction = normalize_angle(
                    Vec2.zero().heading_to(measured)
                    - Vec2.zero().heading_to(reckoned)
                )
                reckoner.reset(
                    fix, normalize_angle(reckoner.heading + correction)
                )
                self._estimate = fix
                return
        reckoner.reset(fix)
        self._estimate = fix
