"""Team orchestration: build and run a complete CoCoA scenario.

:class:`CoCoATeam` assembles the full simulated system from a
:class:`~repro.core.config.CoCoAConfig` — channel, robots, clocks,
coordinators, multicast, beaconers, estimators and metric sampling — and
:meth:`CoCoATeam.run` executes it, returning a :class:`TeamResult` with
everything the paper's evaluation plots need: the per-second localization
error of every measured robot, the team energy breakdown, and protocol
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.beaconing import BEACON_KIND, AnchorBeaconer
from repro.core.calibration import build_pdf_table
from repro.core.constraint_cache import ConstraintFieldCache
from repro.core.clock import DriftingClock
from repro.core.config import (
    CoCoAConfig,
    LocalizationFilter,
    LocalizationMode,
    MulticastProtocol,
)
from repro.core.coordinator import (
    SYNC_BODY_BYTES,
    Coordinator,
    SyncPayload,
)
from repro.core.estimator import PositionEstimator
from repro.core.node import RobotNode, RobotRole
from repro.core.pdf_table import PdfTable
from repro.energy.report import TeamEnergyReport, aggregate_meters
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultPlan
from repro.kernels import KernelConfig, resolve_kernels
from repro.mobility.odometry import OdometrySensor
from repro.mobility.waypoint import WaypointMobility
from repro.multicast.lifetime import kinematics_of
from repro.multicast.mrmm import MrmmConfig, MrmmNode
from repro.multicast.odmrp import MulticastStats, OdmrpConfig, OdmrpNode
from repro.net.channel import BroadcastChannel, ChannelStats
from repro.net.interface import NetworkInterface
from repro.net.packet import ReceivedPacket
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.timers import PeriodicTimer
from repro.sim.world import WorldState
from repro.telemetry.collect import Telemetry, collect_team_snapshot
from repro.telemetry.registry import COUNT_EDGES, DISTANCE_EDGES_M
from repro.telemetry.snapshot import TelemetrySnapshot


@dataclass
class TeamResult:
    """Everything a run produced.

    Attributes:
        config: the scenario that was run.
        times: sample timestamps (seconds), shape ``(n_samples,)``.
        errors: localization error of each measured robot at each sample,
            shape ``(n_measured, n_samples)``.
        measured_ids: node ids of the measured (non-anchor) robots.
        energy: team-wide energy aggregation.
        per_node_energy_j: node id -> total joules.
        channel_stats: medium-level delivery counters.
        multicast_stats: team-summed mesh protocol counters.
        beacons_sent: total beacons transmitted by anchors.
        fixes: total RF fixes produced across measured robots.
        windows_without_fix: beacon rounds that ended with too few beacons.
        syncs_received: SYNC messages delivered across the team.
        beacons_gated: beacons rejected by the geometric consistency gate.
        beacons_quarantined: beacons ignored from quarantined anchors.
        watchdog_resets: posterior-health watchdog resets across robots.
        telemetry: the run's metric snapshot (always populated by
            :meth:`CoCoATeam.run`; rich-mode keys appear only when the
            team was built with a :class:`~repro.telemetry.collect.Telemetry`
            handle).  Rides in the result cache, so reports over cached
            sweeps need no re-simulation.
    """

    config: CoCoAConfig
    times: np.ndarray
    errors: np.ndarray
    measured_ids: List[int]
    energy: TeamEnergyReport
    per_node_energy_j: Dict[int, float]
    channel_stats: ChannelStats
    multicast_stats: MulticastStats
    beacons_sent: int = 0
    fixes: int = 0
    windows_without_fix: int = 0
    syncs_received: int = 0
    beacons_gated: int = 0
    beacons_quarantined: int = 0
    watchdog_resets: int = 0
    telemetry: Optional[TelemetrySnapshot] = None

    def mean_error_series(self) -> np.ndarray:
        """Average error over robots at each sample time (the paper's
        error-over-time curves).

        NaN-aware: failed robots (failure-injection runs) record NaN and
        simply stop counting toward the average.
        """
        return np.nanmean(self.errors, axis=0)

    def time_average_error(self) -> float:
        """The scalar the paper quotes: error averaged over robots and
        time (NaN-aware, see :meth:`mean_error_series`)."""
        return float(np.nanmean(self.errors))

    def max_mean_error(self) -> float:
        """Peak of the robot-averaged error curve."""
        return float(self.mean_error_series().max())

    def final_mean_error(self) -> float:
        """Robot-averaged error at the last sample."""
        return float(self.mean_error_series()[-1])

    def error_snapshot(self, at_time: float) -> np.ndarray:
        """Per-robot errors at the sample nearest ``at_time`` (CDF input)."""
        idx = int(np.argmin(np.abs(self.times - at_time)))
        return self.errors[:, idx].copy()

    def total_energy_j(self) -> float:
        """Team-wide total energy in joules."""
        return self.energy.total_j


class CoCoATeam:
    """Builds and runs one scenario.

    Args:
        config: the scenario description.
        pdf_table: optionally reuse an already calibrated PDF Table (the
            calibration is a property of the hardware, not the scenario,
            so parameter sweeps share it — and save the calibration cost).
        faults: optional :class:`~repro.faults.spec.FaultPlan` overriding
            ``config.faults`` (the config field is what sweeps and the
            result cache see; the argument is an escape hatch for direct
            programmatic use).
        telemetry: optional rich-instrumentation handle.  When given, the
            coordinators record beacon-round spans, beacon receptions
            become child events, and fix quality lands in registry
            histograms.  Deliberately *not* part of the config: telemetry
            never changes simulation behaviour, so it must not change
            cache fingerprints either.
        kernels: optional :class:`~repro.kernels.KernelConfig` selecting
            the hot-path kernels (batched delivery, LUT densities,
            constraint-field cache).  Defaults through
            :func:`~repro.kernels.default_kernels` (process override,
            then the ``REPRO_KERNELS`` environment variable, then
            everything on).  Like telemetry, kernels are not part of the
            config: the batched/cache kernels are bit-identical and the
            LUT stays within figure tolerance, so they must not change
            cache fingerprints.
    """

    def __init__(
        self,
        config: CoCoAConfig,
        pdf_table: Optional[PdfTable] = None,
        faults: Optional[FaultPlan] = None,
        telemetry: Optional[Telemetry] = None,
        kernels: Optional[KernelConfig] = None,
    ) -> None:
        self.config = config
        self.telemetry = telemetry
        self.kernels = resolve_kernels(kernels)
        self.streams = RandomStreams(config.master_seed)
        # One-second wheel slots: every recurring protocol timer (beacon
        # periods, MAC backoff, multicast refresh, metric sampling) lands
        # within a few slots of the clock.
        self.sim = Simulator(
            wheel_slot_s=1.0 if self.kernels.time_wheel else None
        )
        self.channel = BroadcastChannel(
            self.sim,
            config.path_loss,
            self.streams.get("phy"),
            batched=self.kernels.batched_delivery,
            coalesced=self.kernels.coalesced_delivery,
        )
        self.world: Optional[WorldState] = None
        if self.kernels.soa_state:
            self.world = WorldState(config.n_robots)
            self.channel.attach_world(self.world)
        plan = faults if faults is not None else config.faults
        self.fault_plan = plan
        self.faults: Optional[FaultInjector] = None
        if not plan.is_noop():
            # A no-op plan never constructs an injector: the unfaulted
            # code path runs untouched and stays bit-identical.
            self.faults = FaultInjector(
                plan, self.streams, crc_check=config.defenses.crc_check
            )
            self.channel.install_faults(self.faults)
        if pdf_table is None and self._needs_rf():
            calibration = build_pdf_table(
                config.path_loss,
                self.streams.get("calibration"),
                n_samples=config.calibration_samples,
                receiver=config.receiver,
            )
            pdf_table = calibration.table
        self.pdf_table = pdf_table
        if self.pdf_table is not None:
            # Per-run LUT selection.  Tables are shared across runs via
            # SharedCalibration, so this must be (and is) idempotent:
            # flipping the flag keeps any already-built LUT arrays
            # around for the next kernels-on run.
            self.pdf_table.set_lut(
                self.kernels.lut_pdf, self.kernels.lut_entries
            )
        self.constraint_cache: Optional[ConstraintFieldCache] = None
        if self.kernels.constraint_cache and self._needs_rf():
            self.constraint_cache = ConstraintFieldCache(
                self.kernels.cache_capacity
            )
        self.nodes: List[RobotNode] = []
        self._sync_seq = 0
        self._build_team()
        self._sample_times: List[float] = []
        self._sample_errors: List[List[float]] = []

    def _needs_rf(self) -> bool:
        return (
            self.config.localization_mode is not LocalizationMode.ODOMETRY_ONLY
            and self.config.n_anchors > 0
        )

    # -- construction --------------------------------------------------------

    def _build_team(self) -> None:
        config = self.config
        rf_active = self._needs_rf()
        sync_robot_id = 0 if rf_active else None
        for node_id in range(config.n_robots):
            is_anchor = node_id < config.n_anchors
            mobility = WaypointMobility(
                config.area,
                self.streams.spawn("mobility", node_id),
                v_min=config.v_min,
                v_max=config.v_max,
                rest_time_max=config.rest_time_max_s,
                memoize=self.kernels.pose_memo,
            )
            interface = NetworkInterface(
                self.sim,
                node_id,
                mobility,
                self.channel,
                config.energy_model,
                self.streams.spawn("mac", node_id),
                receiver=config.receiver,
            )
            if self.world is not None:
                mobility.bind_world(self.world, node_id)
                interface.radio.bind_world(self.world, node_id)
            clock = DriftingClock.random(
                self.streams.spawn("clock", node_id), config.clock_drift_rate
            )
            if self.faults is not None:
                self.faults.attach_radio(node_id, interface.radio)
            multicast = (
                self._build_multicast(node_id, interface, mobility, sync_robot_id)
                if rf_active
                else None
            )
            beaconer = None
            estimator = None
            if is_anchor and rf_active:
                beaconer = AnchorBeaconer(
                    self.sim,
                    interface,
                    mobility,
                    self.streams.spawn("beacon", node_id),
                    k=config.beacons_per_window,
                    window_s=config.transmit_window_s,
                    slam_error_std_m=config.slam_error_std_m,
                )
            measured = self._is_measured(node_id, is_anchor)
            if measured:
                estimator = self._build_estimator(node_id, mobility)
            role = (
                RobotRole.ANCHOR
                if is_anchor and rf_active
                else RobotRole.UNKNOWN
            )
            coordinator = None
            if rf_active:
                coordinator = self._build_coordinator(
                    node_id,
                    clock,
                    interface,
                    beaconer,
                    estimator,
                    multicast,
                    is_sync=node_id == sync_robot_id,
                )
            node = RobotNode(
                node_id=node_id,
                role=role,
                mobility=mobility,
                interface=interface,
                coordinator=coordinator,
                multicast=multicast,
                beaconer=beaconer,
                estimator=estimator,
                is_sync_robot=node_id == sync_robot_id,
            )
            if estimator is not None and rf_active:
                handler = node.handle_beacon
                if self.telemetry is not None and coordinator is not None:
                    handler = self._traced_beacon_handler(node, coordinator)
                interface.on_receive(BEACON_KIND, handler)
            if multicast is not None and coordinator is not None:
                multicast.on_data(
                    lambda body, rp, c=coordinator, b=beaconer: (
                        self._handle_sync(body, c, b)
                    )
                )
            self.nodes.append(node)

    def _traced_beacon_handler(
        self, node: RobotNode, coordinator: Coordinator
    ):
        """Wrap beacon delivery with a point event parented to the node's
        current beacon-round span.  Pure observation: the wrapped handler
        runs unchanged and the tracer touches neither RNG nor the queue."""
        tracer = self.telemetry.tracer

        def handle(received: ReceivedPacket) -> None:
            tracer.event(
                self.sim.now,
                "beacon_rx",
                node=node.node_id,
                parent=coordinator.window_span,
                anchor=received.packet.src,
                rssi=received.rssi_dbm,
            )
            node.handle_beacon(received)

        return handle

    def _is_measured(self, node_id: int, is_anchor: bool) -> bool:
        """Whose localization error the experiment reports."""
        if self.config.localization_mode is LocalizationMode.ODOMETRY_ONLY:
            return True  # §4.1 averages over all 50 robots
        return not is_anchor

    def _build_multicast(
        self,
        node_id: int,
        interface: NetworkInterface,
        mobility: WaypointMobility,
        sync_robot_id: Optional[int],
    ) -> OdmrpNode:
        provider = lambda m=mobility: kinematics_of(m, self.sim.now)  # noqa: E731
        rng = self.streams.spawn("multicast", node_id)
        is_source = node_id == sync_robot_id
        is_member = not is_source
        if self.config.multicast is MulticastProtocol.MRMM:
            return MrmmNode(
                self.sim,
                interface,
                rng,
                MrmmConfig(),
                is_source=is_source,
                is_member=is_member,
                kinematics_provider=provider,
            )
        return OdmrpNode(
            self.sim,
            interface,
            rng,
            OdmrpConfig(),
            is_source=is_source,
            is_member=is_member,
            kinematics_provider=provider,
        )

    def _build_estimator(
        self, node_id: int, mobility: WaypointMobility
    ) -> PositionEstimator:
        config = self.config
        mode = config.localization_mode
        odometry = None
        if mode is not LocalizationMode.RF_ONLY:
            odometry = OdometrySensor(
                mobility,
                self.streams.spawn("odometry", node_id),
                noise=config.odometry_noise,
            )
        initial_position = None
        initial_heading = 0.0
        if mode is LocalizationMode.ODOMETRY_ONLY:
            pose = mobility.pose(0.0)
            initial_position = pose.position
            initial_heading = pose.heading
        position_filter = None
        if (
            mode is not LocalizationMode.ODOMETRY_ONLY
            and config.localization_filter is LocalizationFilter.PARTICLE
        ):
            from repro.core.particle import ParticleFilter

            position_filter = ParticleFilter(
                config.area,
                self.streams.spawn("filter", node_id),
                n_particles=config.n_particles,
            )
        defenses = config.defenses
        return PositionEstimator(
            mode=mode,
            area=config.area,
            pdf_table=self.pdf_table,
            odometry=odometry,
            grid_resolution_m=config.grid_resolution_m,
            min_beacons_for_fix=config.min_beacons_for_fix,
            initial_position=initial_position,
            initial_heading=initial_heading,
            position_filter=position_filter,
            beacon_gate_sigma=defenses.beacon_gate_sigma,
            beacon_gate_slack_m=defenses.beacon_gate_slack_m,
            watchdog=defenses.watchdog,
            anchor_expiry_s=defenses.anchor_expiry_s,
            constraint_cache=self.constraint_cache,
        )

    def _build_coordinator(
        self,
        node_id: int,
        clock: DriftingClock,
        interface: NetworkInterface,
        beaconer: Optional[AnchorBeaconer],
        estimator: Optional[PositionEstimator],
        multicast: Optional[OdmrpNode],
        is_sync: bool,
    ) -> Coordinator:
        config = self.config

        def window_open() -> None:
            if estimator is not None:
                estimator.on_window_open()

        def window_start() -> None:
            if beaconer is not None:
                beaconer.start_window()
            if is_sync and multicast is not None:
                self._sync_round(multicast, clock)

        telemetry = self.telemetry
        window_state = {"heard": 0}

        def window_close() -> None:
            if estimator is None:
                return
            fixes_before = estimator.fixes
            estimator.on_window_close()
            if telemetry is None:
                return
            registry = telemetry.registry
            heard = estimator.beacons_heard
            registry.histogram(
                "estimator_beacons_per_window", COUNT_EDGES
            ).observe(heard - window_state["heard"])
            window_state["heard"] = heard
            if (
                estimator.fixes > fixes_before
                and estimator.last_fix_std_m is not None
            ):
                registry.histogram(
                    "estimator_fix_std_m", DISTANCE_EDGES_M
                ).observe(estimator.last_fix_std_m)

        return Coordinator(
            self.sim,
            clock,
            interface,
            period_s=config.beacon_period_s,
            window_s=config.transmit_window_s,
            guard_s=config.guard_s,
            sync_slack_s=config.sync_slack_s,
            coordination=config.coordination,
            on_window_open=window_open,
            on_window_start=window_start,
            on_window_close=window_close,
            tracer=telemetry.tracer if telemetry is not None else None,
        )

    def _sync_round(self, source: OdmrpNode, clock: DriftingClock) -> None:
        """The Sync robot's per-period duties: refresh the mesh, send SYNC.

        The JOIN QUERY is flooded twice and the SYNC data sent twice, the
        same repetition-for-reliability principle as the ``k`` beacons.
        """
        source.send_join_query()
        self.sim.schedule(0.3, self._safe_jq, source, name="sync-jq-repeat")
        self.sim.schedule(0.8, self._send_sync, source, clock, name="sync-tx")
        self.sim.schedule(1.6, self._send_sync, source, clock, name="sync-tx")

    def _safe_jq(self, source: OdmrpNode) -> None:
        if source.is_source:
            source.send_join_query()

    def _send_sync(self, source: OdmrpNode, clock: DriftingClock) -> None:
        if not source.is_source:
            return  # demoted between scheduling and firing (failover)
        self._sync_seq += 1
        payload = SyncPayload(
            period_s=self.config.beacon_period_s,
            window_s=self.config.transmit_window_s,
            seq=self._sync_seq,
            reference_local_time=clock.local_time(self.sim.now),
            source_id=source.node_id,
        )
        source.send_data(payload, SYNC_BODY_BYTES)

    def _handle_sync(
        self,
        body: object,
        coordinator: Coordinator,
        beaconer: Optional[AnchorBeaconer],
    ) -> None:
        if not isinstance(body, SyncPayload):
            return
        coordinator.on_sync(body)
        if beaconer is not None:
            beaconer.set_window(body.window_s)

    # -- execution ------------------------------------------------------------

    def _measured_nodes(self) -> List[RobotNode]:
        return [n for n in self.nodes if n.estimator is not None]

    def _sample_metrics(self, _count: int) -> None:
        t = self.sim.now
        row = []
        world = self.world
        if world is not None:
            # Bulk path (soa_state kernel): advance every estimator
            # first — exactly the per-node draws the interleaved scalar
            # loop makes, in the same per-node order — then evaluate all
            # true positions in one vectorized pass.
            measured = self._measured_nodes()
            for node in measured:
                node.estimator.advance_to(t)
            xs, ys = world.positions_at(t)
            for node in measured:
                row.append(
                    node.localization_error_from(
                        xs[node.node_id], ys[node.node_id]
                    )
                )
        else:
            for node in self._measured_nodes():
                node.estimator.advance_to(t)
                row.append(node.localization_error(t))
        self._sample_times.append(t)
        self._sample_errors.append(row)

    def run(self) -> TeamResult:
        """Execute the scenario and collect the results."""
        config = self.config
        for node in self.nodes:
            if node.coordinator is not None:
                node.coordinator.start()
        PeriodicTimer(
            self.sim,
            config.metric_interval_s,
            self._sample_metrics,
            start_delay=config.metric_interval_s,
            name="metrics",
        )
        self.sim.run(until=config.duration_s)
        for node in self.nodes:
            node.interface.finalize()

        meters = [node.interface.meter for node in self.nodes]
        measured = self._measured_nodes()
        mc_stats = MulticastStats()
        syncs = 0
        for node in self.nodes:
            if node.multicast is not None:
                s = node.multicast.stats
                mc_stats.jq_originated += s.jq_originated
                mc_stats.jq_forwarded += s.jq_forwarded
                mc_stats.jr_sent += s.jr_sent
                mc_stats.data_originated += s.data_originated
                mc_stats.data_forwarded += s.data_forwarded
                mc_stats.data_delivered += s.data_delivered
                mc_stats.duplicates_dropped += s.duplicates_dropped
                mc_stats.forwards_suppressed += s.forwards_suppressed
            if node.coordinator is not None:
                syncs += node.coordinator.syncs_received
        errors = np.array(self._sample_errors, dtype=float).T
        if errors.size == 0:
            errors = np.zeros((len(measured), 0))
        result = TeamResult(
            config=config,
            times=np.array(self._sample_times, dtype=float),
            errors=errors,
            measured_ids=[n.node_id for n in measured],
            energy=aggregate_meters(
                meters,
                registry=(
                    self.telemetry.registry
                    if self.telemetry is not None
                    else None
                ),
            ),
            per_node_energy_j={
                node.node_id: node.interface.meter.total_j
                for node in self.nodes
            },
            channel_stats=self.channel.stats,
            multicast_stats=mc_stats,
            beacons_sent=sum(
                n.beaconer.beacons_sent
                for n in self.nodes
                if n.beaconer is not None
            ),
            fixes=sum(n.estimator.fixes for n in measured),
            windows_without_fix=sum(
                n.estimator.windows_without_fix for n in measured
            ),
            syncs_received=syncs,
            beacons_gated=sum(n.estimator.beacons_gated for n in measured),
            beacons_quarantined=sum(
                n.estimator.beacons_quarantined for n in measured
            ),
            watchdog_resets=sum(
                n.estimator.watchdog_resets for n in measured
            ),
        )
        result.telemetry = collect_team_snapshot(self, result)
        return result
