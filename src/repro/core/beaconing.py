"""Anchor beaconing (§2.2-§2.3).

Robots equipped with localization devices broadcast ``k`` RF beacons during
each transmit window.  Every beacon carries the sender's coordinates, as
provided by its localization device (laser ranger + SLAM in the paper's
testbed; here the mobility model's ground truth, optionally perturbed by a
configurable SLAM error).  The ``k`` copies "are used for increasing the
reliability of beacon delivery" — the MAC gives broadcast frames no
acknowledgements, so repetition is the only defence against fading and
collisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.mobility.base import MobilityModel
from repro.net.interface import NetworkInterface
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.util.geometry import Vec2
from repro.util.validation import check_non_negative, check_positive

BEACON_KIND = "beacon"
#: x and y coordinates as two 8-byte doubles — "the location (x and y
#: coordinates) of the sending robot" (§2.3); with the 40 header bytes this
#: makes each beacon 56 bytes on the wire.
BEACON_PAYLOAD_BYTES = 16


@dataclass(frozen=True)
class BeaconPayload:
    """A beacon's contents: where the sending anchor believes it is."""

    x: float
    y: float
    anchor_id: int

    @property
    def position(self) -> Vec2:
        return Vec2(self.x, self.y)


class AnchorBeaconer:
    """Sends ``k`` beacons spread across each transmit window.

    Args:
        sim: simulation engine.
        interface: the anchor's network attachment.
        mobility: the anchor's true mobility (its SLAM reading source).
        rng: random stream for transmit-time jitter and SLAM error.
        k: beacons per window (paper: 3).
        window_s: transmit window length ``t`` (paper: 3 s).
        slam_error_std_m: σ of the Gaussian error on the advertised
            coordinates (0 = the paper's assumption of exact SLAM).
        position_fn: optional override for the advertised position; the
            beacon-promotion extension passes a localized unknown's own
            estimate here instead of a localization device's output.
    """

    def __init__(
        self,
        sim: Simulator,
        interface: NetworkInterface,
        mobility: MobilityModel,
        rng: np.random.Generator,
        k: int = 3,
        window_s: float = 3.0,
        slam_error_std_m: float = 0.0,
        position_fn: Optional[Callable[[], Vec2]] = None,
    ) -> None:
        check_positive("k", k)
        check_positive("window_s", window_s)
        check_non_negative("slam_error_std_m", slam_error_std_m)
        self._sim = sim
        self._interface = interface
        self._mobility = mobility
        self._rng = rng
        self._k = k
        self._window_s = window_s
        self._slam_error_std_m = slam_error_std_m
        self._position_fn = position_fn
        self.beacons_sent = 0

    @property
    def k(self) -> int:
        return self._k

    def set_window(self, window_s: float) -> None:
        """Adopt a new transmit window length (from a SYNC update)."""
        check_positive("window_s", window_s)
        self._window_s = window_s

    def start_window(self) -> None:
        """Schedule this window's ``k`` beacons.

        Each beacon is placed in its own ``window/k`` slice at a uniformly
        random offset, which desynchronizes the anchors and spreads channel
        load across the window.
        """
        slice_s = self._window_s / self._k
        for i in range(self._k):
            offset = (i + float(self._rng.uniform(0.05, 0.95))) * slice_s
            self._sim.schedule(offset, self._send_beacon, name="beacon-tx")

    def _send_beacon(self) -> None:
        if not self._interface.is_awake:
            return
        position = self._slam_position()
        payload = BeaconPayload(
            x=position.x, y=position.y, anchor_id=self._interface.node_id
        )
        self._interface.send_broadcast(
            Packet(
                src=self._interface.node_id,
                kind=BEACON_KIND,
                payload=payload,
                payload_bytes=BEACON_PAYLOAD_BYTES,
            )
        )
        self.beacons_sent += 1

    def _slam_position(self) -> Vec2:
        """The advertised position: the localization device's output, or
        the configured override (promotion extension)."""
        if self._position_fn is not None:
            return self._position_fn()
        true = self._mobility.position(self._sim.now)
        if self._slam_error_std_m <= 0.0:
            return true
        return Vec2(
            true.x + float(self._rng.normal(0.0, self._slam_error_std_m)),
            true.y + float(self._rng.normal(0.0, self._slam_error_std_m)),
        )
