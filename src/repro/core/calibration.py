"""The offline calibration phase (§2.2).

    "Before running the algorithm, an offline calibration phase is
    necessary ... This phase constructs the PDF Table, which is stored at
    each node and maps every RSSI value to a Probability Distribution
    Function (PDF) versus distance."

The paper calibrates by driving robots around outdoors and recording
(distance, RSSI) pairs.  We reproduce the same procedure against the
simulated channel: draw many transmitter-receiver distances, sample the
channel's noisy RSSI for each, keep only the decodable samples (a real
receiver cannot log the RSSI of a frame it never received), bin by integer
dBm, and fit each bin's distance distribution — Gaussian in the near
regime, empirical beyond, per the paper's Figure 1 findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.pdf_table import DistanceDistribution, PdfTable
from repro.net.phy import PathLossModel, ReceiverModel
from repro.util.validation import check_positive


@dataclass(frozen=True)
class CalibrationResult:
    """The calibration output plus provenance for diagnostics.

    Attributes:
        table: the fitted PDF Table.
        n_samples_drawn: distances drawn in the measurement campaign.
        n_samples_decodable: samples that survived the sensitivity cut.
        n_gaussian_bins: bins represented as Gaussians (near regime).
        n_histogram_bins: bins represented as histograms (far regime).
    """

    table: PdfTable
    n_samples_drawn: int
    n_samples_decodable: int
    n_gaussian_bins: int
    n_histogram_bins: int

    @property
    def gaussian_fraction(self) -> float:
        """Fraction of populated bins that are Gaussian."""
        total = self.n_gaussian_bins + self.n_histogram_bins
        return self.n_gaussian_bins / total if total else 0.0


def build_pdf_table(
    path_loss: PathLossModel,
    rng: np.random.Generator,
    n_samples: int = 120_000,
    max_distance_m: float = 180.0,
    receiver: ReceiverModel = ReceiverModel(),
    min_samples_per_bin: int = 40,
    gaussian_limit_m: float = None,
) -> CalibrationResult:
    """Run the offline calibration campaign and fit the PDF Table.

    Args:
        path_loss: the channel being calibrated.
        rng: random stream for the campaign.
        n_samples: number of (distance, RSSI) measurements to draw.
        max_distance_m: largest distance visited by the campaign; should
            comfortably exceed the radio range so far-regime bins are
            populated.
        receiver: receiver whose sensitivity gates which samples a real
            logger could have captured.
        min_samples_per_bin: bins thinner than this are dropped (their
            RSSIs snap to the nearest populated neighbor at lookup time).
        gaussian_limit_m: near/far regime boundary for the Gaussian-vs-
            histogram decision; defaults to the channel's own
            ``far_threshold_m``.

    Returns:
        A :class:`CalibrationResult` with the fitted table.

    Raises:
        ValueError: if the campaign yields no populated bin (e.g. a
            sensitivity above every sampled RSSI).
    """
    check_positive("n_samples", n_samples)
    if max_distance_m <= 1.0:
        raise ValueError(
            "max_distance_m must exceed 1 m, got %r" % max_distance_m
        )
    if gaussian_limit_m is None:
        gaussian_limit_m = path_loss.far_threshold_m

    distances = rng.uniform(1.0, max_distance_m, size=n_samples)
    rssi = np.asarray(path_loss.sample_rssi(distances, rng))
    decodable = rssi >= receiver.sensitivity_dbm
    distances = distances[decodable]
    rssi = rssi[decodable]

    keys = np.round(rssi).astype(int)
    bins: Dict[int, DistanceDistribution] = {}
    n_gauss = 0
    n_hist = 0
    for key in np.unique(keys):
        samples = distances[keys == key]
        if samples.size < min_samples_per_bin:
            continue
        dist = DistanceDistribution.from_samples(
            samples,
            support_max_m=max_distance_m,
            gaussian_limit_m=gaussian_limit_m,
        )
        bins[int(key)] = dist
        if dist.is_gaussian:
            n_gauss += 1
        else:
            n_hist += 1

    if not bins:
        raise ValueError(
            "calibration produced no populated bins: check sensitivity "
            "(%r dBm) against the channel" % receiver.sensitivity_dbm
        )
    table = PdfTable(bins, support_max_m=max_distance_m)
    return CalibrationResult(
        table=table,
        n_samples_drawn=n_samples,
        n_samples_decodable=int(decodable.sum()),
        n_gaussian_bins=n_gauss,
        n_histogram_bins=n_hist,
    )
