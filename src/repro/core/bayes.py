"""The grid-based Bayesian localization filter (Equations 1-3).

The deployment area is discretized into square cells; the filter maintains
a probability mass per cell.  For every received beacon the filter

1. looks the beacon's RSSI up in the PDF Table to get a density over
   distance,
2. evaluates that density at every cell's distance to the beacon origin —
   the ``Constraint(x, y)`` of Equation (1),
3. multiplies the constraint into the posterior and renormalizes —
   Equation (2)'s Bayesian update.

The position estimate is the posterior mean — Equation (3)'s expectation —
and, per the paper, is only trusted once at least three beacons have been
incorporated.

All operations are vectorized numpy; a 100×100 grid update costs a few
hundred microseconds, which is what makes 30-minute 50-robot runs cheap.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.pdf_table import PdfTable
from repro.util.geometry import Rect, Vec2
from repro.util.validation import check_positive


class GridBayesFilter:
    """Posterior over positions on a regular grid.

    Args:
        area: the deployment rectangle (the paper's
            ``[x_min, x_max] x [y_min, y_max]`` bounds).
        resolution_m: cell side length.
    """

    def __init__(self, area: Rect, resolution_m: float = 2.0) -> None:
        check_positive("resolution_m", resolution_m)
        if resolution_m > min(area.width, area.height):
            raise ValueError("resolution exceeds the deployment area")
        self._area = area
        self._resolution = resolution_m
        nx = max(1, int(round(area.width / resolution_m)))
        ny = max(1, int(round(area.height / resolution_m)))
        xs = area.x_min + (np.arange(nx) + 0.5) * (area.width / nx)
        ys = area.y_min + (np.arange(ny) + 0.5) * (area.height / ny)
        self._cell_x, self._cell_y = np.meshgrid(xs, ys)
        self._posterior = np.full((ny, nx), 1.0 / (nx * ny))
        self._beacons_applied = 0
        self._annihilations = 0
        # Scratch buffers reused by apply_beacon's hot path.
        self._dist_buf = np.empty((ny, nx))
        self._constraint_buf = np.empty((ny, nx))
        self._cache = None

    @property
    def area(self) -> Rect:
        return self._area

    @property
    def resolution_m(self) -> float:
        return self._resolution

    @property
    def shape(self) -> Tuple[int, int]:
        """Grid shape as (rows, cols) = (ny, nx)."""
        return self._posterior.shape

    @property
    def grid_signature(self) -> str:
        """Exact identifier of this filter's grid geometry.

        Two filters with equal signatures index identical cell-center
        arrays, so they may share cached distance/constraint fields.
        Encoded from the exact area bounds (``float.hex`` — no rounding)
        plus the grid shape.
        """
        return "%s:%s:%s:%s:%dx%d" % (
            float(self._area.x_min).hex(),
            float(self._area.y_min).hex(),
            float(self._area.x_max).hex(),
            float(self._area.y_max).hex(),
            self._posterior.shape[0],
            self._posterior.shape[1],
        )

    def attach_constraint_cache(self, cache) -> None:
        """Share beacon fields with other filters on an identical grid.

        Args:
            cache: a :class:`~repro.core.constraint_cache.ConstraintFieldCache`
                (or anything with its ``bind_grid`` / ``distance_field`` /
                ``constraint_field`` protocol).  The cached path is
                bit-identical to the uncached one; see the cache module.
        """
        cache.bind_grid(self.grid_signature)
        self._cache = cache

    @property
    def posterior(self) -> np.ndarray:
        """The posterior mass grid (read-only view)."""
        view = self._posterior.view()
        view.flags.writeable = False
        return view

    @property
    def beacons_applied(self) -> int:
        """Beacons incorporated since the last reset."""
        return self._beacons_applied

    @property
    def annihilations(self) -> int:
        """Constraint annihilations (rescue restarts) since the last
        reset — mutually inconsistent evidence arrived this round."""
        return self._annihilations

    def reset_uniform(self) -> None:
        """Restart from the uniform prior (Equation 2's initial estimate:
        "a robot is equally likely to be in any position")."""
        self._posterior.fill(1.0 / self._posterior.size)
        self._beacons_applied = 0
        self._annihilations = 0

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self) -> dict:
        """The filter's evolving state as a picklable mapping.

        Captures exactly what :meth:`restore_state` needs to continue
        bit-identically: the posterior mass (copied, so later updates
        cannot mutate the checkpoint) and the per-round counters.  The
        grid geometry itself is *not* captured — it is construction
        state, and the ``grid_signature`` guard at restore refuses a
        mismatched geometry instead of silently resampling.
        """
        return {
            "grid_signature": self.grid_signature,
            "posterior": self._posterior.copy(),
            "beacons_applied": self._beacons_applied,
            "annihilations": self._annihilations,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`snapshot_state` mapping (bit-exact resume).

        Raises:
            ValueError: the snapshot came from a different grid geometry.
        """
        if state.get("grid_signature") != self.grid_signature:
            raise ValueError(
                "filter snapshot geometry %r does not match this grid %r"
                % (state.get("grid_signature"), self.grid_signature)
            )
        np.copyto(self._posterior, state["posterior"])
        self._beacons_applied = int(state["beacons_applied"])
        self._annihilations = int(state["annihilations"])

    def compute_distance_field(
        self, beacon: Vec2, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Cell-center distances to ``beacon`` (Equation 1's geometry).

        The exact same in-place operation sequence as the historical
        ``apply_beacon`` body, so results are bit-identical whether the
        output lands in a scratch buffer or a cacheable fresh array.
        """
        if out is None:
            distances = np.subtract(self._cell_x, beacon.x)
        else:
            distances = np.subtract(self._cell_x, beacon.x, out=out)
        np.square(distances, out=distances)
        dy = np.subtract(self._cell_y, beacon.y, out=self._constraint_buf)
        np.square(dy, out=dy)
        distances += dy
        np.sqrt(distances, out=distances)
        return distances

    def apply_beacon(
        self,
        beacon: Vec2,
        rssi_dbm: float,
        table: PdfTable,
        anchor_id: Optional[int] = None,
    ) -> None:
        """Incorporate one beacon: Equations (1) and (2).

        If the constraint annihilates the posterior (numerically zero mass
        everywhere — mutually inconsistent evidence), the filter restarts
        from the newest constraint alone rather than dividing by zero; the
        newest measurement is the one most consistent with the robot's
        current position.

        Args:
            beacon: the anchor's claimed position.
            rssi_dbm: measured signal strength.
            table: the calibrated PDF table.
            anchor_id: the claiming anchor; only used as part of the
                constraint-cache key when a cache is attached.
        """
        cache = self._cache
        if cache is None:
            distances = self.compute_distance_field(
                beacon, out=self._dist_buf
            )
            constraint = table.pdf(
                rssi_dbm, distances, out=self._constraint_buf
            )
        else:
            bin_key = table.bin_key_for(rssi_dbm)
            constraint = cache.constraint_field(
                anchor_id, beacon.x, beacon.y, bin_key
            )
            if constraint is None:
                distances = cache.distance_field(beacon.x, beacon.y)
                if distances is None:
                    distances = cache.store_distance(
                        beacon.x,
                        beacon.y,
                        self.compute_distance_field(beacon),
                    )
                if table.lut_enabled:
                    # Share the LUT index field across bins: the indices
                    # depend only on the distances and the LUT geometry,
                    # and pdf_from_index runs the identical np.take the
                    # direct evaluation would, so this is bit-identical
                    # to pdf_for_key while skipping the clip/cast pass
                    # for every bin after the first at this position.
                    params = table.lut_params
                    index = cache.index_field(beacon.x, beacon.y, params)
                    if index is None:
                        index = cache.store_index(
                            beacon.x,
                            beacon.y,
                            table.lut_index_for(distances),
                            params,
                        )
                    field = table.pdf_from_index(bin_key, index)
                else:
                    field = table.pdf_for_key(bin_key, distances)
                constraint = cache.store_constraint(
                    anchor_id, beacon.x, beacon.y, bin_key, field
                )
        self._posterior *= constraint
        total = self._posterior.sum()
        if total <= 1e-300 or not np.isfinite(total):
            self._annihilations += 1
            np.divide(constraint, constraint.sum(), out=self._posterior)
        else:
            self._posterior /= total
        self._beacons_applied += 1

    def estimate(self) -> Vec2:
        """Posterior-mean position — Equation (3)."""
        x_hat = float((self._posterior * self._cell_x).sum())
        y_hat = float((self._posterior * self._cell_y).sum())
        return Vec2(x_hat, y_hat)

    def mode(self) -> Vec2:
        """Maximum a-posteriori cell center (diagnostic alternative to
        the paper's expectation estimator)."""
        idx = np.unravel_index(
            int(np.argmax(self._posterior)), self._posterior.shape
        )
        return Vec2(
            float(self._cell_x[idx]), float(self._cell_y[idx])
        )

    def covariance(self) -> np.ndarray:
        """2x2 posterior covariance — a confidence measure for extensions
        (e.g. beacon promotion only trusts low-variance fixes)."""
        mean = self.estimate()
        dx = self._cell_x - mean.x
        dy = self._cell_y - mean.y
        w = self._posterior
        cxx = float((w * dx * dx).sum())
        cyy = float((w * dy * dy).sum())
        cxy = float((w * dx * dy).sum())
        return np.array([[cxx, cxy], [cxy, cyy]])

    def position_std_m(self) -> float:
        """Scalar spread: sqrt of the posterior's total variance."""
        cov = self.covariance()
        return float(np.sqrt(max(cov[0, 0] + cov[1, 1], 0.0)))

    def entropy_bits(self) -> float:
        """Shannon entropy of the posterior in bits (uniform = max)."""
        p = self._posterior[self._posterior > 0]
        return float(-(p * np.log2(p)).sum())

    def is_degenerate(self) -> bool:
        """Has the posterior stopped being a trustworthy distribution?

        Degeneracy means either the mass is no longer normalizable
        (NaN/inf crept in, or it no longer sums to one) or the round's
        evidence was mutually inconsistent (a constraint annihilated the
        posterior) *and* the surviving mass has collapsed to near-zero
        entropy — a confidently wrong spike.  The posterior-health
        watchdog resets to the prior in either case rather than adopting
        a junk fix.
        """
        total = float(self._posterior.sum())
        if not np.isfinite(total) or abs(total - 1.0) > 1e-6:
            return True
        return (
            self._beacons_applied >= 2
            and self._annihilations > 0
            and self.entropy_bits() < 1.0
        )
