"""Monte Carlo localization: a particle-filter alternative to the grid.

The paper stresses that CoCoA is an *architecture*, not one algorithm:

    "CoCoA is not tied to a specific localization technique.  In this
    paper, we have implemented a Bayesian technique in the CoCoA
    localization component.  Other approaches could be integrated in
    CoCoA as well."  (§5)

:class:`ParticleFilter` is exactly such another approach — the
sample-based Bayesian family the related work discusses (Monte Carlo
localization, Fox et al.).  It drops into
:class:`~repro.core.estimator.PositionEstimator` through the same
interface as :class:`~repro.core.bayes.GridBayesFilter`:
``reset_uniform`` / ``apply_beacon`` / ``estimate`` / ``position_std_m`` /
``beacons_applied``.

Compared to the grid, particles trade deterministic coverage for
constant-memory scaling with area size; the ``bench_filter_ablation``
benchmark quantifies the accuracy/runtime trade at the paper's scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.pdf_table import PdfTable
from repro.util.geometry import Rect, Vec2


class ParticleFilter:
    """Sample-based posterior over positions in the deployment area.

    Args:
        area: deployment rectangle.
        rng: random stream for sampling and resampling.
        n_particles: sample count (the accuracy/runtime knob).
        resample_ess_fraction: resample when the effective sample size
            falls below this fraction of ``n_particles``.
        roughening_std_m: σ of the Gaussian jitter added after each
            resampling — standard "roughening" that prevents particle
            impoverishment when many beacons arrive in one window.
    """

    def __init__(
        self,
        area: Rect,
        rng: np.random.Generator,
        n_particles: int = 1500,
        resample_ess_fraction: float = 0.5,
        roughening_std_m: float = 1.0,
    ) -> None:
        if n_particles < 10:
            raise ValueError(
                "n_particles must be at least 10, got %r" % n_particles
            )
        if not 0.0 < resample_ess_fraction <= 1.0:
            raise ValueError(
                "resample_ess_fraction must be in (0, 1], got %r"
                % resample_ess_fraction
            )
        if roughening_std_m < 0:
            raise ValueError(
                "roughening_std_m must be non-negative, got %r"
                % roughening_std_m
            )
        self._area = area
        self._rng = rng
        self._n = n_particles
        self._resample_ess = resample_ess_fraction * n_particles
        self._roughening = roughening_std_m
        self._xs = np.empty(n_particles)
        self._ys = np.empty(n_particles)
        self._weights = np.empty(n_particles)
        self._beacons_applied = 0
        self.resamplings = 0
        self.reset_uniform()

    @property
    def area(self) -> Rect:
        return self._area

    @property
    def n_particles(self) -> int:
        return self._n

    @property
    def beacons_applied(self) -> int:
        """Beacons incorporated since the last reset."""
        return self._beacons_applied

    @property
    def particles(self) -> np.ndarray:
        """(n, 2) array of particle positions (copy)."""
        return np.column_stack((self._xs, self._ys))

    @property
    def weights(self) -> np.ndarray:
        """Normalized particle weights (copy)."""
        return self._weights.copy()

    def reset_uniform(self) -> None:
        """Scatter particles uniformly — the paper's uniform initial
        estimate."""
        self._xs = self._rng.uniform(
            self._area.x_min, self._area.x_max, size=self._n
        )
        self._ys = self._rng.uniform(
            self._area.y_min, self._area.y_max, size=self._n
        )
        self._weights = np.full(self._n, 1.0 / self._n)
        self._beacons_applied = 0

    def effective_sample_size(self) -> float:
        """The usual ESS = 1 / sum(w^2) degeneracy measure."""
        return float(1.0 / np.square(self._weights).sum())

    def apply_beacon(
        self,
        beacon: Vec2,
        rssi_dbm: float,
        table: PdfTable,
        anchor_id: Optional[int] = None,
    ) -> None:
        """Weight particles by the beacon's ranging likelihood (Eq. 1-2).

        ``anchor_id`` is accepted for interface parity with the grid
        filter's constraint-cache keying and is unused here: particle
        positions are per-robot, so there is no cross-robot field to
        share.
        """
        distances = np.hypot(self._xs - beacon.x, self._ys - beacon.y)
        likelihood = table.pdf(rssi_dbm, distances)
        self._weights *= likelihood
        total = self._weights.sum()
        if total <= 1e-300 or not np.isfinite(total):
            # Same recovery policy as the grid: restart from the newest
            # constraint alone.
            self._weights = likelihood / likelihood.sum()
        else:
            self._weights /= total
        self._beacons_applied += 1
        if self.effective_sample_size() < self._resample_ess:
            self._resample()

    def _resample(self) -> None:
        """Systematic resampling plus roughening."""
        positions = (
            self._rng.random() + np.arange(self._n)
        ) / self._n
        cumulative = np.cumsum(self._weights)
        cumulative[-1] = 1.0
        indices = np.searchsorted(cumulative, positions)
        self._xs = self._xs[indices]
        self._ys = self._ys[indices]
        if self._roughening > 0.0:
            self._xs = self._xs + self._rng.normal(
                0.0, self._roughening, size=self._n
            )
            self._ys = self._ys + self._rng.normal(
                0.0, self._roughening, size=self._n
            )
            np.clip(self._xs, self._area.x_min, self._area.x_max, out=self._xs)
            np.clip(self._ys, self._area.y_min, self._area.y_max, out=self._ys)
        self._weights = np.full(self._n, 1.0 / self._n)
        self.resamplings += 1

    def estimate(self) -> Vec2:
        """Weighted-mean position — the sample analogue of Equation (3)."""
        x_hat = float(np.dot(self._weights, self._xs))
        y_hat = float(np.dot(self._weights, self._ys))
        return Vec2(x_hat, y_hat)

    def position_std_m(self) -> float:
        """Scalar spread: sqrt of the weighted total variance."""
        mean = self.estimate()
        var = float(
            np.dot(self._weights, np.square(self._xs - mean.x))
            + np.dot(self._weights, np.square(self._ys - mean.y))
        )
        return float(np.sqrt(max(var, 0.0)))

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self) -> dict:
        """The filter's evolving state as a picklable mapping.

        Captures the particle cloud, weights, counters and the sampling
        stream's generator state, so a restored filter continues the
        exact random sequence the snapshotted one would have drawn —
        resampling after restore is bit-identical to never pausing.
        """
        return {
            "n_particles": self._n,
            "xs": self._xs.copy(),
            "ys": self._ys.copy(),
            "weights": self._weights.copy(),
            "beacons_applied": self._beacons_applied,
            "resamplings": self.resamplings,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`snapshot_state` mapping (bit-exact resume).

        Raises:
            ValueError: the snapshot used a different particle count.
        """
        if int(state["n_particles"]) != self._n:
            raise ValueError(
                "filter snapshot has %d particles, this filter %d"
                % (state["n_particles"], self._n)
            )
        self._xs = state["xs"].copy()
        self._ys = state["ys"].copy()
        self._weights = state["weights"].copy()
        self._beacons_applied = int(state["beacons_applied"])
        self.resamplings = int(state["resamplings"])
        self._rng.bit_generator.state = state["rng_state"]
