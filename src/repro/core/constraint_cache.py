"""Shared constraint-field cache: one grid evaluation per beacon frame.

Every unknown robot in a team runs a :class:`~repro.core.bayes.GridBayesFilter`
on the *same* grid (same deployment area, same resolution), and every
robot that hears a given beacon frame evaluates the same two fields over
that grid: the distance from each cell to the beacon's claimed origin,
and — for robots whose RSSI snapped to the same PDF-table bin — the very
same constraint density.  With 50 robots and 25 anchors the team
recomputes each distance field up to ~25 times per beacon round.

:class:`ConstraintFieldCache` shares those fields across the team.  It is
**bit-identical** by construction: a cached field is the float-for-float
output of the same numpy operation sequence the uncached path runs, keyed
so that only *exactly* matching inputs can ever hit.

Key design (see also DESIGN.md):

- Distance fields are keyed by the beacon position quantized to 1 µm.
  Constraint fields add the anchor id and the resolved PDF-table bin key.
  Quantization only picks the *bucket*; every entry stores the exact
  coordinates it was computed from (as ``float.hex()`` tokens, an exact
  representation), and a lookup whose coordinates do not match the stored
  tokens is a miss — the entry is then recomputed and replaced.  A hash
  bucket can therefore never smuggle a neighbouring position's field into
  a result.
- Cached arrays are marked read-only.  The filter multiplies them into
  its posterior; nothing may mutate them in place.
- One cache serves one grid geometry.  The first filter to attach binds
  its grid signature; attaching a filter with a different signature is a
  programming error and raises.

Eviction is LRU with a shared budget over both stores; the counters the
telemetry snapshot exports make hit rates observable per run.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["ConstraintFieldCache"]

#: Position-key quantum (metres).  1 µm is far below any coordinate
#: difference the simulation can produce on purpose, so distinct beacon
#: origins land in distinct buckets; the exact-token check makes the
#: choice a pure performance knob, never a correctness one.
POSITION_QUANTUM_M = 1e-6

_DistKey = Tuple[int, int]
_ConstraintKey = Tuple[Optional[int], int, int, int]


def _position_token(x: float, y: float) -> Tuple[str, str]:
    """Exact, hashable representation of a beacon position."""
    return (float(x).hex(), float(y).hex())


def _quantize(value: float) -> int:
    return int(round(value / POSITION_QUANTUM_M))


class ConstraintFieldCache:
    """Per-team LRU cache of beacon distance and constraint fields.

    Args:
        capacity: maximum number of cached fields per store (distance
            and constraint fields are budgeted separately: the former
            are shared across RSSI bins, the latter are what robots in
            the same bin reuse directly).
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(
                "capacity must be >= 1, got %r" % capacity
            )
        self._capacity = int(capacity)
        self._signature: Optional[str] = None
        self._distance: "OrderedDict[_DistKey, tuple]" = OrderedDict()
        self._constraint: "OrderedDict[_ConstraintKey, tuple]" = (
            OrderedDict()
        )
        self._index: "OrderedDict[_DistKey, tuple]" = OrderedDict()
        # Memo of the last position's (key, token): one beacon frame
        # produces a run of cache calls at the same (x, y) — half a
        # dozen per apply_beacon, times every receiver of the frame —
        # and the quantize/hex work was visible in the hot-path profile.
        # Guarded against x or y == 0.0 because -0.0 == 0.0 compares
        # True while their hex tokens differ.
        self._pos_memo: Tuple[float, float, tuple, tuple] = (
            float("nan"), float("nan"), (), ()
        )
        self.hits = 0
        self.misses = 0
        self.distance_hits = 0
        self.distance_misses = 0
        self.index_hits = 0
        self.index_misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def bind_grid(self, signature: str) -> None:
        """Bind the cache to one grid geometry.

        The first filter to attach establishes the signature; later
        filters must match it exactly.

        Raises:
            ValueError: on a signature mismatch — the caller tried to
                share fields between incompatible grids.
        """
        if self._signature is None:
            self._signature = signature
            return
        if self._signature != signature:
            raise ValueError(
                "constraint cache is bound to grid %s, cannot attach a "
                "filter with grid %s" % (self._signature, signature)
            )

    def _pos_key_token(self, x: float, y: float) -> Tuple[tuple, tuple]:
        """Quantized key and exact token for a position, memoized."""
        memo = self._pos_memo
        # Bitwise equality is the memo contract (a tolerance would alias
        # distinct positions); 0.0 is excluded as the empty-memo sentinel.
        # repro: noqa[REP004] memo identity check needs exact comparison
        if x == memo[0] and y == memo[1] and x != 0.0 and y != 0.0:
            return memo[2], memo[3]
        key = (_quantize(x), _quantize(y))
        token = _position_token(x, y)
        self._pos_memo = (x, y, key, token)
        return key, token

    # -- distance fields ----------------------------------------------------

    def distance_field(self, x: float, y: float) -> Optional[np.ndarray]:
        """The cached cell-to-``(x, y)`` distance field, or ``None``."""
        key, token = self._pos_key_token(x, y)
        entry = self._distance.get(key)
        if entry is not None and entry[0] == token:
            self._distance.move_to_end(key)
            self.distance_hits += 1
            return entry[1]
        self.distance_misses += 1
        return None

    def store_distance(
        self, x: float, y: float, field: np.ndarray
    ) -> np.ndarray:
        """Cache a freshly computed distance field (made read-only)."""
        field.flags.writeable = False
        key, token = self._pos_key_token(x, y)
        self._put(self._distance, key, (token, field))
        return field

    # -- LUT index fields ---------------------------------------------------

    def index_field(
        self, x: float, y: float, params: tuple
    ) -> Optional[np.ndarray]:
        """The cached LUT index field for a beacon position, or ``None``.

        Index fields (:meth:`~repro.core.pdf_table.PdfTable.lut_index_for`
        results) depend on the position's distance field and the LUT
        geometry only — not the RSSI bin — so every bin evaluated at the
        same beacon position reuses one.  ``params`` is the table's
        ``lut_params``; an entry computed under different LUT geometry is
        a miss.
        """
        key, token = self._pos_key_token(x, y)
        entry = self._index.get(key)
        if (
            entry is not None
            and entry[0] == token
            and entry[1] == params
        ):
            self._index.move_to_end(key)
            self.index_hits += 1
            return entry[2]
        self.index_misses += 1
        return None

    def store_index(
        self, x: float, y: float, field: np.ndarray, params: tuple
    ) -> np.ndarray:
        """Cache a freshly computed LUT index field (made read-only)."""
        field.flags.writeable = False
        key, token = self._pos_key_token(x, y)
        self._put(self._index, key, (token, params, field))
        return field

    # -- constraint fields --------------------------------------------------

    def constraint_field(
        self,
        anchor_id: Optional[int],
        x: float,
        y: float,
        bin_key: int,
    ) -> Optional[np.ndarray]:
        """The cached constraint density for one (anchor, position, bin)."""
        pos_key, token = self._pos_key_token(x, y)
        key = (anchor_id, pos_key[0], pos_key[1], int(bin_key))
        entry = self._constraint.get(key)
        if entry is not None and entry[0] == token:
            self._constraint.move_to_end(key)
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def store_constraint(
        self,
        anchor_id: Optional[int],
        x: float,
        y: float,
        bin_key: int,
        field: np.ndarray,
    ) -> np.ndarray:
        """Cache a freshly computed constraint field (made read-only)."""
        field.flags.writeable = False
        pos_key, token = self._pos_key_token(x, y)
        self._put(
            self._constraint,
            (anchor_id, pos_key[0], pos_key[1], int(bin_key)),
            (token, field),
        )
        return field

    # -- bookkeeping --------------------------------------------------------

    def _put(self, store: OrderedDict, key, value) -> None:
        store[key] = value
        store.move_to_end(key)
        while len(store) > self._capacity:
            store.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every cached field (counters are kept)."""
        self._distance.clear()
        self._constraint.clear()
        self._index.clear()

    def __len__(self) -> int:
        return (
            len(self._distance) + len(self._constraint) + len(self._index)
        )

    def counters(self) -> Dict[str, int]:
        """The cache's accounting, keyed as telemetry exports it."""
        return {
            "kernel_cache_constraint_hits": self.hits,
            "kernel_cache_constraint_misses": self.misses,
            "kernel_cache_distance_hits": self.distance_hits,
            "kernel_cache_distance_misses": self.distance_misses,
            "kernel_cache_index_hits": self.index_hits,
            "kernel_cache_index_misses": self.index_misses,
            "kernel_cache_evictions": self.evictions,
        }
