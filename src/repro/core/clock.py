"""Drifting local clocks and their coarse synchronization.

CoCoA only requires "coarse-grained synchronization achievable through
wireless communication" (§2.3).  Each robot's local clock runs at a slightly
wrong rate; SYNC messages received over MRMM re-anchor the local clock to
the Sync robot's timeline.  The coordinator converts between local and true
(simulation) time when scheduling wake-ups, so a robot whose clock has
drifted genuinely wakes early or late — which is why the wake guard exists
and why it must cover twice the drift rate.
"""

from __future__ import annotations

import numpy as np


class DriftingClock:
    """A local clock with a constant rate error, re-anchored by SYNC.

    Local time evolves as::

        local(t) = anchor_local + (1 + rate) * (t - anchor_true)

    where ``rate`` is this robot's drift (e.g. +0.01 = runs 1% fast) and
    the anchor point moves whenever :meth:`synchronize` is called.

    Args:
        drift_rate: this clock's rate error; drawn by the caller, typically
            uniform in ``[-max_drift, +max_drift]``.
        start_true: true time at construction.
        start_local: local time at construction (defaults to ``start_true``
            — robots are synchronized at deployment).
    """

    def __init__(
        self,
        drift_rate: float,
        start_true: float = 0.0,
        start_local: float = None,
    ) -> None:
        if abs(drift_rate) >= 1.0:
            raise ValueError(
                "drift_rate must be a small fraction, got %r" % drift_rate
            )
        self._rate = drift_rate
        self._anchor_true = start_true
        self._anchor_local = (
            start_true if start_local is None else start_local
        )

    @property
    def drift_rate(self) -> float:
        return self._rate

    def local_time(self, true_time: float) -> float:
        """Local clock reading at a given true time."""
        return self._anchor_local + (1.0 + self._rate) * (
            true_time - self._anchor_true
        )

    def true_time_of(self, local_time: float) -> float:
        """Invert :meth:`local_time`: when (in true time) the local clock
        will read ``local_time``."""
        return self._anchor_true + (local_time - self._anchor_local) / (
            1.0 + self._rate
        )

    def offset(self, true_time: float) -> float:
        """Current error ``local - true`` in seconds."""
        return self.local_time(true_time) - true_time

    def synchronize(self, true_time: float, reference_local: float) -> None:
        """Re-anchor: at ``true_time`` the reference timeline reads
        ``reference_local``.

        Called when a SYNC message arrives; the reference value is the
        Sync robot's timestamp (propagation delay through the mesh is the
        residual synchronization error, which is what makes the
        synchronization "coarse").
        """
        self._anchor_true = true_time
        self._anchor_local = reference_local

    @staticmethod
    def random(
        rng: np.random.Generator, max_drift_rate: float, start_true: float = 0.0
    ) -> "DriftingClock":
        """Draw a clock with rate error uniform in ``[-max, +max]``."""
        if max_drift_rate < 0:
            raise ValueError(
                "max_drift_rate must be non-negative, got %r"
                % max_drift_rate
            )
        rate = float(rng.uniform(-max_drift_rate, max_drift_rate))
        return DriftingClock(rate, start_true)
