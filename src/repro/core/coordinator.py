"""The energy-efficient coordination layer (§2.3).

Time is divided into beacon periods ``T``; a transmit window ``t`` opens at
the start of each.  Every robot follows the schedule on its *own drifting
clock*:

- it wakes its radio a guard interval before its local window start (the
  guard covers worst-case relative clock drift — this is what makes the
  synchronization requirement "coarse-grained"),
- anchors transmit their ``k`` beacons inside the window and unknowns run
  the localization algorithm,
- the designated Sync robot refreshes the MRMM mesh and multicasts a SYNC
  message carrying the current ``T`` and ``t`` ("This allows a human
  operator to dynamically adjust these values"),
- after the window (plus a short slack for SYNC traffic) every radio goes
  to sleep until the next period.

With coordination disabled (the paper's §4.3.1 energy baseline) the same
schedule runs but radios stay idle instead of sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.clock import DriftingClock
from repro.net.interface import NetworkInterface
from repro.sim.engine import Simulator
from repro.telemetry.spans import Span, SpanTracer

#: SYNC body: T (8) + t (8) + seq (4) + reference timestamp (8).
SYNC_BODY_BYTES = 28
SYNC_KIND = "sync"


@dataclass(frozen=True)
class SyncPayload:
    """Contents of a SYNC message.

    Attributes:
        period_s: the beacon period ``T`` every robot should follow.
        window_s: the transmit window ``t``.
        seq: monotonically increasing per Sync robot.
        reference_local_time: the Sync robot's clock reading at send time;
            receivers re-anchor their clocks to it (the residual error is
            the mesh propagation delay — hence *coarse* synchronization).
        source_id: the sending Sync robot's node id; the failover
            extension uses it to resolve contention between would-be Sync
            robots (lowest id wins).
    """

    period_s: float
    window_s: float
    seq: int
    reference_local_time: float
    source_id: int = -1


class Coordinator:
    """One robot's wake/sleep and window schedule.

    The coordinator drives four callbacks:

    - ``on_window_open`` at radio wake-up (the localization filter resets
      here so that early beacons from fast-clocked anchors still count),
    - ``on_window_start`` at the nominal local window start (anchors begin
      beaconing; the Sync robot refreshes the mesh and sends SYNC),
    - ``on_window_close`` at window start + ``t`` (unknowns finalize their
      fix),
    - ``on_period_end`` right before the radio sleeps.

    Args:
        sim: simulation engine.
        clock: this robot's local clock.
        interface: the robot's network attachment (radio control).
        period_s: initial beacon period ``T``.
        window_s: initial transmit window ``t``.
        guard_s: how early (local time) to wake before the window.
        sync_slack_s: how long after window close the radio stays awake.
        coordination: sleep between windows (True) or stay idle (False).
        resync_after_silent_periods: if set, a node that has not heard a
            SYNC for this many consecutive periods stops sleeping and
            keeps its radio on until one arrives.  Without this, a node
            whose clock drifts past the guard during a SYNC outage (e.g.
            a dead Sync robot) can desynchronize *permanently* — its wake
            windows never overlap the team's again.  Costs idle energy
            only while desynchronized.
    """

    def __init__(
        self,
        sim: Simulator,
        clock: DriftingClock,
        interface: NetworkInterface,
        period_s: float,
        window_s: float,
        guard_s: float,
        sync_slack_s: float = 0.5,
        coordination: bool = True,
        on_window_open: Optional[Callable[[], None]] = None,
        on_window_start: Optional[Callable[[], None]] = None,
        on_window_close: Optional[Callable[[], None]] = None,
        on_period_end: Optional[Callable[[], None]] = None,
        resync_after_silent_periods: Optional[int] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        if window_s <= 0 or period_s <= window_s:
            raise ValueError(
                "need 0 < window_s < period_s, got %r / %r"
                % (window_s, period_s)
            )
        if guard_s < 0 or sync_slack_s < 0:
            raise ValueError("guard/slack must be non-negative")
        self._sim = sim
        self._clock = clock
        self._interface = interface
        self._period_s = period_s
        self._window_s = window_s
        self._guard_s = guard_s
        self._sync_slack_s = sync_slack_s
        self._coordination = coordination
        self._on_window_open = on_window_open
        self._on_window_start = on_window_start
        self._on_window_close = on_window_close
        self._on_period_end = on_period_end
        if (
            resync_after_silent_periods is not None
            and resync_after_silent_periods < 1
        ):
            raise ValueError(
                "resync_after_silent_periods must be >= 1 or None, got %r"
                % resync_after_silent_periods
            )
        self._resync_after = resync_after_silent_periods
        self._window_start_hooks: List[Callable[[], None]] = []
        self._window_close_hooks: List[Callable[[], None]] = []
        self._silent_periods = 0
        self._syncs_at_last_period = 0
        #: Set by a node that *is* the Sync source: its own silence is not
        #: desynchronization.
        self.suppress_resync = False
        self.resync_periods = 0
        self.windows_run = 0
        self.syncs_received = 0
        self._started = False
        self._stopped = False
        #: Optional rich-telemetry tracer; when set, each beacon period is
        #: recorded as a "beacon_round" span (wake to sleep, sim time) that
        #: per-node receive events parent to via :attr:`window_span`.
        self._tracer = tracer
        self.window_span: Optional[Span] = None

    @property
    def period_s(self) -> float:
        return self._period_s

    @property
    def window_s(self) -> float:
        return self._window_s

    @property
    def coordination(self) -> bool:
        return self._coordination

    @property
    def clock(self) -> DriftingClock:
        return self._clock

    @property
    def resync_after(self) -> Optional[int]:
        """Silent periods before the radio stops sleeping to re-acquire
        SYNC (``None`` disables resync mode)."""
        return self._resync_after

    @resync_after.setter
    def resync_after(self, periods: Optional[int]) -> None:
        if periods is not None and periods < 1:
            raise ValueError(
                "resync_after must be >= 1 or None, got %r" % periods
            )
        self._resync_after = periods

    def add_window_start_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` at every window start, after the primary
        ``on_window_start`` callback.

        This is the public extension point extensions (failover, beacon
        promotion, application traffic) attach to; hooks run in
        registration order and survive parameter changes via SYNC.
        """
        self._window_start_hooks.append(hook)

    def add_window_close_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` at every window close, after the primary
        ``on_window_close`` callback."""
        self._window_close_hooks.append(hook)

    def start(self) -> None:
        """Begin the schedule; the first window opens immediately.

        Raises:
            RuntimeError: if already started.
        """
        if self._started:
            raise RuntimeError("coordinator already started")
        self._started = True
        self._sim.schedule(0.0, self._window_open_phase, name="coord-start")

    def stop(self) -> None:
        """Halt the schedule permanently (robot failure).  Idempotent."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        return self._stopped

    def on_sync(self, payload: SyncPayload) -> None:
        """Handle a received SYNC message: re-synchronize and adopt T/t.

        Parameter changes take effect from the next period; the current
        period finishes on the old schedule.
        """
        self.syncs_received += 1
        self._clock.synchronize(self._sim.now, payload.reference_local_time)
        if payload.period_s > payload.window_s > 0:
            self._period_s = payload.period_s
            self._window_s = payload.window_s

    # -- schedule chain ------------------------------------------------------

    def _schedule_at_local(self, local_time: float, callback, name: str) -> None:
        true_time = self._clock.true_time_of(local_time)
        self._sim.schedule_at(max(true_time, self._sim.now), callback, name=name)

    def _current_window_start_local(self) -> float:
        """Local time of the window the robot is currently handling."""
        local_now = self._clock.local_time(self._sim.now)
        # Guard wake-ups land just before the boundary; round to nearest.
        index = round(local_now / self._period_s)
        return index * self._period_s

    def _window_open_phase(self) -> None:
        if self._stopped:
            return
        self._interface.wake()
        self.windows_run += 1
        if self._tracer is not None:
            self.window_span = self._tracer.start_span(
                "beacon_round",
                self._sim.now,
                node=self._interface.node_id,
                window=self.windows_run,
            )
        if self._on_window_open is not None:
            self._on_window_open()
        start_local = self._current_window_start_local()
        self._schedule_at_local(
            start_local, self._window_start_phase, "coord-window-start"
        )

    def _window_start_phase(self) -> None:
        if self._stopped:
            return
        if self._on_window_start is not None:
            self._on_window_start()
        for hook in self._window_start_hooks:
            hook()
        start_local = self._current_window_start_local()
        self._schedule_at_local(
            start_local + self._window_s,
            self._window_close_phase,
            "coord-window-close",
        )

    def _window_close_phase(self) -> None:
        if self._stopped:
            return
        if self._on_window_close is not None:
            self._on_window_close()
        for hook in self._window_close_hooks:
            hook()
        local_now = self._clock.local_time(self._sim.now)
        self._schedule_at_local(
            local_now + self._sync_slack_s,
            self._period_end_phase,
            "coord-period-end",
        )

    def _in_resync_mode(self) -> bool:
        """True when the node should skip sleeping to re-acquire SYNC."""
        if self._resync_after is None or self.suppress_resync:
            return False
        if self.syncs_received > self._syncs_at_last_period:
            self._silent_periods = 0
        else:
            self._silent_periods += 1
        self._syncs_at_last_period = self.syncs_received
        return self._silent_periods >= self._resync_after

    def _period_end_phase(self) -> None:
        if self._stopped:
            return
        if self._on_period_end is not None:
            self._on_period_end()
        if self._tracer is not None and self.window_span is not None:
            self._tracer.end_span(self.window_span, self._sim.now)
            self.window_span = None
        resyncing = self._in_resync_mode()
        if resyncing:
            self.resync_periods += 1
        if self._coordination and not resyncing:
            self._interface.sleep()
        local_now = self._clock.local_time(self._sim.now)
        next_start_local = (
            int(local_now / self._period_s) + 1
        ) * self._period_s
        wake_local = next_start_local - self._guard_s
        self._schedule_at_local(
            max(wake_local, local_now),
            self._window_open_phase,
            "coord-wake",
        )
