"""Configuration for a CoCoA deployment / simulation scenario.

:class:`CoCoAConfig` gathers every knob of the reproduction in one
validated, immutable object.  The defaults are the paper's §4 headline
scenario: 50 robots in a 40000 m² (200 m × 200 m) area, half of them
anchors, beacon period ``T = 100 s``, transmit window ``t = 3 s``, ``k = 3``
beacons, 30 simulated minutes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.energy.model import EnergyModel
from repro.faults.spec import DefenseConfig, FaultPlan
from repro.mobility.odometry import OdometryNoise
from repro.net.phy import PathLossModel, ReceiverModel
from repro.util.geometry import Rect
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
)


class LocalizationMode(enum.Enum):
    """Which localization strategy the non-anchor robots run.

    The paper evaluates three (§4.1-§4.3):

    - ``ODOMETRY_ONLY``: dead reckoning from a known initial position.
    - ``RF_ONLY``: the Bayesian beacon algorithm alone; the position
      estimate is frozen between beacon rounds.
    - ``COCOA``: RF fixes at every beacon round, odometry dead reckoning
      in between — the full system.
    """

    ODOMETRY_ONLY = "odometry_only"
    RF_ONLY = "rf_only"
    COCOA = "cocoa"


class MulticastProtocol(enum.Enum):
    """Which mesh multicast carries SYNC messages."""

    ODMRP = "odmrp"
    MRMM = "mrmm"


class LocalizationFilter(enum.Enum):
    """Which Bayesian representation the localization component uses.

    The paper implements the grid technique but stresses that "other
    approaches could be integrated in CoCoA as well" (§5); the particle
    filter is exactly such an alternative.
    """

    GRID = "grid"
    PARTICLE = "particle"


@dataclass(frozen=True)
class CoCoAConfig:
    """Complete scenario description.

    Attributes:
        area: deployment rectangle (paper: 200 m x 200 m = 40000 m²).
        n_robots: total team size (paper: 50).
        n_anchors: robots equipped with localization devices (paper
            default: half the team).
        beacon_period_s: the period ``T`` between beacon rounds.
        transmit_window_s: the window ``t`` at the start of each period in
            which anchors beacon and everyone is awake (paper: 3 s).
        beacons_per_window: ``k``, beacon copies per anchor per window
            (paper: 3).
        v_max: maximum robot speed in m/s (paper: 0.5 or 2.0).
        v_min: minimum robot speed in m/s (paper: 0.1).
        duration_s: simulated time (paper: 30 minutes).
        master_seed: seed of every random stream in the run.
        localization_mode: which estimator the unknown robots run.
        coordination: True puts radios to sleep between windows (CoCoA's
            coordination); False leaves them idle — the paper's
            "without coordination" energy baseline.
        multicast: protocol carrying SYNC messages.
        grid_resolution_m: Bayesian grid cell size.
        localization_filter: grid (the paper's technique) or particle
            (Monte Carlo localization, the pluggable alternative).
        n_particles: sample count for the particle filter.
        min_beacons_for_fix: beacons required before the filter output is
            trusted (paper: 3).
        clock_drift_rate: maximum magnitude of a robot's local clock drift
            (fraction of elapsed time); clocks re-synchronize on SYNC.
        guard_fraction: nodes wake this fraction of the beacon period early
            to tolerate clock drift (the coarse-synchronization guard).
        sync_slack_s: how long after the transmit window nodes stay awake
            to finish SYNC / mesh traffic.
        energy_model: radio energy constants.
        path_loss: RF channel model.
        receiver: receiver thresholds.
        odometry_noise: odometry error model.
        rest_time_max_s: maximum task/rest time at each waypoint.
        calibration_samples: Monte-Carlo samples for the offline PDF-Table
            calibration phase.
        slam_error_std_m: σ of the anchors' own (SLAM-provided) position
            error; the paper treats SLAM output as exact (0.0).
        metric_interval_s: how often localization error is sampled.
        faults: injected RF/sensor faults (default: none — a provable
            no-op that reproduces the unfaulted simulation bit-identically).
        defenses: graceful-degradation defenses (default: all off).
    """

    area: Rect = field(default_factory=lambda: Rect.square(200.0))
    n_robots: int = 50
    n_anchors: int = 25
    beacon_period_s: float = 100.0
    transmit_window_s: float = 3.0
    beacons_per_window: int = 3
    v_max: float = 2.0
    v_min: float = 0.1
    duration_s: float = 1800.0
    master_seed: int = 1
    localization_mode: LocalizationMode = LocalizationMode.COCOA
    coordination: bool = True
    multicast: MulticastProtocol = MulticastProtocol.MRMM
    grid_resolution_m: float = 2.0
    localization_filter: LocalizationFilter = LocalizationFilter.GRID
    n_particles: int = 1500
    min_beacons_for_fix: int = 3
    clock_drift_rate: float = 0.02
    guard_fraction: float = 0.04
    sync_slack_s: float = 0.5
    energy_model: EnergyModel = field(
        default_factory=EnergyModel.wavelan_2mbps
    )
    path_loss: PathLossModel = field(default_factory=PathLossModel)
    receiver: ReceiverModel = field(default_factory=ReceiverModel)
    odometry_noise: OdometryNoise = field(default_factory=OdometryNoise)
    rest_time_max_s: float = 0.0
    calibration_samples: int = 120_000
    slam_error_std_m: float = 0.0
    metric_interval_s: float = 1.0
    faults: FaultPlan = field(default_factory=FaultPlan)
    defenses: DefenseConfig = field(default_factory=DefenseConfig)

    def __post_init__(self) -> None:
        check_positive("n_robots", self.n_robots)
        check_in_range("n_anchors", self.n_anchors, 0, self.n_robots)
        check_positive("beacon_period_s", self.beacon_period_s)
        check_positive("transmit_window_s", self.transmit_window_s)
        if self.transmit_window_s >= self.beacon_period_s:
            raise ValueError(
                "transmit_window_s (%r) must be smaller than "
                "beacon_period_s (%r)"
                % (self.transmit_window_s, self.beacon_period_s)
            )
        check_positive("beacons_per_window", self.beacons_per_window)
        check_positive("v_min", self.v_min)
        if self.v_min > self.v_max:
            raise ValueError(
                "need v_min <= v_max, got %r / %r"
                % (self.v_min, self.v_max)
            )
        check_positive("duration_s", self.duration_s)
        check_positive("grid_resolution_m", self.grid_resolution_m)
        check_in_range("n_particles", self.n_particles, 10, 1_000_000)
        check_positive("min_beacons_for_fix", self.min_beacons_for_fix)
        check_in_range("clock_drift_rate", self.clock_drift_rate, 0.0, 0.2)
        check_in_range("guard_fraction", self.guard_fraction, 0.0, 0.5)
        if self.clock_drift_rate * 2.0 > self.guard_fraction and (
            self.coordination
        ):
            raise ValueError(
                "guard_fraction (%r) must cover twice the clock drift rate "
                "(%r) or beacon windows will be missed"
                % (self.guard_fraction, self.clock_drift_rate)
            )
        check_non_negative("sync_slack_s", self.sync_slack_s)
        check_non_negative("rest_time_max_s", self.rest_time_max_s)
        check_positive("calibration_samples", self.calibration_samples)
        check_non_negative("slam_error_std_m", self.slam_error_std_m)
        check_positive("metric_interval_s", self.metric_interval_s)
        if (
            self.area.width < self.grid_resolution_m
            or self.area.height < self.grid_resolution_m
        ):
            raise ValueError("grid resolution exceeds the deployment area")

    @property
    def n_unknowns(self) -> int:
        """Robots without localization devices."""
        return self.n_robots - self.n_anchors

    @property
    def n_beacon_periods(self) -> int:
        """Complete beacon periods within the simulation duration."""
        return int(math.floor(self.duration_s / self.beacon_period_s))

    @property
    def guard_s(self) -> float:
        """Early-wake guard interval in seconds."""
        return self.guard_fraction * self.beacon_period_s

    def paper_scenario(self, **overrides) -> "CoCoAConfig":
        """Return a copy with selected fields overridden."""
        from dataclasses import replace

        return replace(self, **overrides)
