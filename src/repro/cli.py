"""Command-line interface: run scenarios and regenerate paper figures.

Usage (installed package):

    python -m repro run --robots 50 --anchors 25 --period 100 --duration 600
    python -m repro run --mode rf_only --period 50
    python -m repro figure fig9 --duration 600 --jobs 4 --cache
    python -m repro sweep --num-seeds 8 --jobs 4 --duration 600
    python -m repro resilience --duration 600 --jobs 4
    python -m repro report --cache-dir .repro_cache
    python -m repro calibrate
    python -m repro lint src tests --json
    python -m repro bench --quick
    python -m repro serve --port 7707 --shards 4

``bench`` times the pinned Fig.-7 scenario with the hot-path kernels on
and off plus each kernel's inner loop in isolation, and writes
``BENCH_hotpath.json``; ``--min-speedup`` turns it into a CI gate.

Every command prints plain-text tables; nothing is plotted, so the tool
works in any terminal and its output can be diffed in CI.  ``sweep`` and
``figure`` accept ``--jobs N`` to fan independent scenario runs out over
worker processes and ``--cache`` to memoize finished runs on disk under
``.repro_cache/`` (wipe with ``--clear-cache``).  All sweep-style
commands accept ``--telemetry out.jsonl`` to run with rich telemetry and
dump per-job metric snapshots; ``repro report`` renders the
per-subsystem summary of a cached sweep or such a JSONL dump.
``repro lint`` statically enforces the determinism contract
(REP001-REP007, see DESIGN.md) and exits nonzero on findings so it can
gate CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import (
    CoCoAConfig,
    LocalizationFilter,
    LocalizationMode,
    MulticastProtocol,
)
from repro.core.team import CoCoATeam
from repro.experiments.metrics import summarize_errors
from repro.experiments.runner import SharedCalibration
from repro.orchestrator.cache import DEFAULT_CACHE_DIR, ResultCache


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    """Scenario flags shared by ``run`` and ``sweep``."""
    parser.add_argument("--mode", choices=[m.value for m in LocalizationMode],
                        default="cocoa", help="localization strategy")
    parser.add_argument("--robots", type=int, default=50, help="team size")
    parser.add_argument("--anchors", type=int, default=25,
                        help="robots with localization devices")
    parser.add_argument("--period", type=float, default=100.0,
                        help="beacon period T (s)")
    parser.add_argument("--window", type=float, default=3.0,
                        help="transmit window t (s)")
    parser.add_argument("--beacons", type=int, default=3,
                        help="beacons per window k")
    parser.add_argument("--vmax", type=float, default=2.0,
                        help="maximum robot speed (m/s)")
    parser.add_argument("--duration", type=float, default=1800.0,
                        help="simulated seconds")
    parser.add_argument("--no-coordination", action="store_true",
                        help="keep radios idle instead of sleeping")
    parser.add_argument("--multicast",
                        choices=[m.value for m in MulticastProtocol],
                        default="mrmm", help="SYNC multicast protocol")
    parser.add_argument("--filter",
                        choices=[f.value for f in LocalizationFilter],
                        default="grid", help="Bayesian representation")
    parser.add_argument("--area", type=float, default=200.0,
                        help="square deployment area side (m)")


def _positive_int(text: str) -> int:
    """argparse type for flags that require an integer >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_orchestration_args(parser: argparse.ArgumentParser) -> None:
    """Parallelism and cache flags shared by ``figure`` and ``sweep``."""
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for independent runs")
    parser.add_argument("--cache", action="store_true",
                        help="memoize finished runs on disk")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="result cache directory (implies --cache)")
    parser.add_argument("--clear-cache", action="store_true",
                        help="wipe the result cache before running")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="run with rich telemetry and write per-job "
                             "snapshots to this JSONL file")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "CoCoA (ICDCS 2006) reproduction: coordinated cooperative "
            "localization for mobile multi-robot ad hoc networks."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario and print a summary")
    _add_scenario_args(run)
    run.add_argument("--seed", type=int, default=1, help="master seed")

    figure = sub.add_parser(
        "figure", help="regenerate one of the paper's evaluation figures"
    )
    figure.add_argument(
        "name",
        choices=[
            "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "mrmm",
        ],
        help="which figure to regenerate",
    )
    figure.add_argument("--duration", type=float, default=600.0,
                        help="simulated seconds per run")
    figure.add_argument("--seed", type=int, default=1, help="master seed")
    _add_orchestration_args(figure)

    sweep = sub.add_parser(
        "sweep",
        help="re-run one scenario under many master seeds, in parallel",
    )
    _add_scenario_args(sweep)
    seeds = sweep.add_mutually_exclusive_group()
    seeds.add_argument("--seeds", default=None,
                       help="comma-separated master seeds (e.g. 1,2,3)")
    seeds.add_argument("--num-seeds", type=int, default=None,
                       help="sweep seeds 1..N")
    _add_orchestration_args(sweep)

    resilience = sub.add_parser(
        "resilience",
        help="error vs fault intensity, with and without defenses",
    )
    _add_scenario_args(resilience)
    resilience.add_argument("--seed", type=int, default=1,
                            help="master seed")
    resilience.add_argument("--intensities", default="0,0.5,1",
                            help="comma-separated fault intensities")
    _add_orchestration_args(resilience)

    report = sub.add_parser(
        "report",
        help="render the per-subsystem telemetry summary of past runs",
    )
    source = report.add_mutually_exclusive_group()
    source.add_argument("--from", dest="from_path", metavar="PATH",
                        default=None,
                        help="read job snapshots from a --telemetry JSONL "
                             "file instead of the result cache")
    source.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="result cache to summarize")
    report.add_argument("--prometheus", action="store_true",
                        help="emit Prometheus exposition text instead of "
                             "the human-readable report")

    lint = sub.add_parser(
        "lint",
        help="statically enforce the determinism (REP) and async-safety "
             "(ASY) contracts",
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--json", action="store_true",
                      help="emit findings as JSON instead of text")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated codes or families to run "
                           "(e.g. REP001,ASY or ASY001,ASY002)")
    lint.add_argument("--ignore", default=None, metavar="CODES",
                      help="comma-separated codes or families to skip")
    lint.add_argument("--async", dest="async_only", action="store_true",
                      help="run only the async-safety family "
                           "(shorthand for --select ASY)")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="suppress findings recorded in this baseline file")
    lint.add_argument("--write-baseline", default=None, metavar="PATH",
                      help="record current findings as the grandfathered "
                           "baseline and exit 0 (zero findings remove a "
                           "stale baseline file)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every rule code with its summary and exit")
    lint.add_argument("--sanitize", action="store_true",
                      help="run the asyncio test suites under debug mode "
                           "with the slow-callback threshold and fail on "
                           "blocked-loop / lost-task diagnostics")
    lint.add_argument("--sanitize-out", default=None, metavar="PATH",
                      help="write the sanitizer's JSON findings artifact "
                           "here (same schema as --json)")
    lint.add_argument("--slow-callback-ms", type=float, default=None,
                      metavar="MS",
                      help="sanitizer blocked-loop threshold in "
                           "milliseconds (default 250)")

    bench = sub.add_parser(
        "bench",
        help="benchmark the hot-path kernels on the pinned Fig.-7 scenario",
    )
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke shape: shorter scenario, fewer repeats")
    bench.add_argument("--seed", type=int, default=1, help="master seed")
    bench.add_argument("--repeats", type=_positive_int, default=None,
                       help="end-to-end repeats per kernel variant")
    bench.add_argument("--out", default="BENCH_hotpath.json",
                       help="report path (BENCH_hotpath.json)")
    bench.add_argument("--min-speedup", type=float, default=None,
                       help="exit 1 if the end-to-end kernel speedup "
                            "falls below this ratio")
    bench.add_argument("--profile", action="store_true",
                       help="also cProfile one end-to-end run per kernel "
                            "variant; the cumtime top table is written "
                            "next to the JSON report")
    bench.add_argument("--profile-top", type=_positive_int, default=40,
                       metavar="N", help="rows per profile table (40)")

    serve = sub.add_parser(
        "serve",
        help="run the streaming localization service (NDJSON over TCP, "
             "plus GET /metrics on the same port)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=7707,
                       help="bind port (0 picks an ephemeral port)")
    serve.add_argument("--shards", type=_positive_int, default=4,
                       help="worker event loops (tenants hash across them)")
    serve.add_argument("--queue-limit", type=_positive_int, default=256,
                       help="bounded request queue depth per shard")
    serve.add_argument("--tenant-inflight", type=_positive_int, default=32,
                       help="max queued requests per tenant before shedding")
    serve.add_argument("--session-ttl", type=float, default=300.0,
                       help="seconds of idleness before a tenant session "
                            "is evicted (0 disables)")
    serve.add_argument("--warm-cache", metavar="DIR", default=None,
                       help="use this result-cache directory as the "
                            "calibration warm-start store AND the "
                            "checkpoint persistence layer")
    serve.add_argument("--no-checkpointing", action="store_true",
                       help="disable session checkpointing (crashes and "
                            "evictions lose sessions)")
    serve.add_argument("--no-supervise", action="store_true",
                       help="disable shard-worker supervision (a dead "
                            "worker stays dead)")
    serve.add_argument("--smoke", action="store_true",
                       help="start, run a 2-tenant round trip plus "
                            "/metrics, /healthz and /readyz scrapes "
                            "against itself, then exit")
    serve.add_argument("--trace-mode",
                       choices=["off", "sampled", "always"],
                       default="sampled",
                       help="request tracing: off, sampled (head-sample "
                            "1-in-N plus slow requests) or always")
    serve.add_argument("--trace-sample-every", type=_positive_int,
                       default=128, metavar="N",
                       help="head-sample one request in N (sampled mode)")
    serve.add_argument("--trace-slow-ms", type=float, default=25.0,
                       help="tail-sample requests slower than this "
                            "(sampled mode)")
    serve.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write recorded spans as trace JSONL on "
                            "shutdown (feed to 'repro trace')")
    serve.add_argument("--trace-perfetto", metavar="PATH", default=None,
                       help="write recorded spans as Perfetto/Chrome "
                            "trace_event JSON on shutdown")
    serve.add_argument("--ops-out", metavar="PATH", default=None,
                       help="write the structured ops log (shard "
                            "restarts, evictions, rehydrations) as "
                            "JSONL on shutdown")

    chaos = sub.add_parser(
        "chaos",
        help="record a batch scenario, replay it through a live server "
             "while a seeded fault schedule kills shards, severs "
             "connections and evicts sessions; fail unless every fix "
             "still matches the batch run byte-for-byte",
    )
    chaos.add_argument("--seed", type=int, default=1,
                       help="scenario + schedule seed")
    chaos.add_argument("--seeds", default=None, metavar="LIST",
                       help="comma-separated seeds overriding --seed "
                            "(e.g. 1,2,3)")
    chaos.add_argument("--robots", type=_positive_int, default=10,
                       help="scenario robots")
    chaos.add_argument("--anchors", type=_positive_int, default=5,
                       help="scenario anchors")
    chaos.add_argument("--area", type=float, default=80.0,
                       help="deployment square side (m)")
    chaos.add_argument("--duration", type=float, default=60.0,
                       help="scenario duration (s)")
    chaos.add_argument("--samples", type=_positive_int, default=4000,
                       help="calibration samples (paper fidelity: 120000)")
    chaos.add_argument("--kills", type=int, default=1,
                       help="kill_shard faults per run")
    chaos.add_argument("--severs", type=int, default=2,
                       help="connection-sever faults per run")
    chaos.add_argument("--evicts", type=int, default=1,
                       help="TTL-eviction faults per run")
    chaos.add_argument("--delays", type=int, default=1,
                       help="clock-delay faults per run")
    chaos.add_argument("--log", metavar="PATH", default=None,
                       help="write the chaos journal (JSONL) here; with "
                            "multiple seeds, the seed is appended")
    chaos.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write the run's recorded spans as trace "
                            "JSONL; with multiple seeds, the seed is "
                            "appended")

    trace = sub.add_parser(
        "trace",
        help="inspect a recorded trace JSONL (from serve --trace-out, "
             "bench_serve.py or repro chaos --trace-out)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="per-hop latency attribution table (queue wait, shard "
             "service, estimator ingest, checkpoint)",
    )
    summarize.add_argument("path", help="trace JSONL file")
    slowest = trace_sub.add_parser(
        "slowest", help="the N slowest requests with per-hop breakdown"
    )
    slowest.add_argument("path", help="trace JSONL file")
    slowest.add_argument("-n", type=_positive_int, default=10,
                         help="how many traces to show")
    export = trace_sub.add_parser(
        "export", help="convert trace JSONL to Perfetto/Chrome "
                       "trace_event JSON (load in ui.perfetto.dev)"
    )
    export.add_argument("path", help="trace JSONL file")
    export.add_argument("--out", required=True,
                        help="Perfetto JSON output path")

    calibrate = sub.add_parser(
        "calibrate", help="run the offline calibration and print the table"
    )
    calibrate.add_argument("--samples", type=int, default=120_000,
                           help="measurement campaign size")
    calibrate.add_argument("--seed", type=int, default=1, help="master seed")

    return parser


def _config_from_args(args: argparse.Namespace) -> CoCoAConfig:
    from repro.util.geometry import Rect

    mode = LocalizationMode(args.mode)
    anchors = args.anchors
    coordination = not args.no_coordination
    if mode is LocalizationMode.ODOMETRY_ONLY:
        anchors = 0
        coordination = False
    return CoCoAConfig(
        area=Rect.square(args.area),
        n_robots=args.robots,
        n_anchors=anchors,
        beacon_period_s=args.period,
        transmit_window_s=args.window,
        beacons_per_window=args.beacons,
        v_max=args.vmax,
        duration_s=args.duration,
        master_seed=getattr(args, "seed", 1),
        localization_mode=mode,
        coordination=coordination,
        multicast=MulticastProtocol(args.multicast),
        localization_filter=LocalizationFilter(args.filter),
    )


def _cache_from_args(args: argparse.Namespace) -> Optional[ResultCache]:
    """Build (and optionally wipe) the result cache the flags describe."""
    wants_cache = (
        args.cache
        or args.clear_cache
        or args.cache_dir != DEFAULT_CACHE_DIR
    )
    if not wants_cache:
        return None
    cache = ResultCache(root=args.cache_dir)
    if args.clear_cache:
        cache.clear()
    return cache


def cmd_run(args: argparse.Namespace, out) -> int:
    config = _config_from_args(args)
    print("scenario: %d robots (%d anchors), %s, T=%.0fs t=%.0fs k=%d, "
          "v_max=%.1f, %.0fs, seed=%d"
          % (config.n_robots, config.n_anchors,
             config.localization_mode.value, config.beacon_period_s,
             config.transmit_window_s, config.beacons_per_window,
             config.v_max, config.duration_s, config.master_seed),
          file=out)
    result = CoCoATeam(config).run()
    skip = min(config.beacon_period_s * 1.1 + 5.0, config.duration_s / 2)
    summary = summarize_errors(result.errors, skip_first_s=skip)
    print("", file=out)
    print("localization error (after %.0fs warm-up):" % skip, file=out)
    print("  time-average %.2f m   median %.2f m   p90 %.2f m   final %.2f m"
          % (summary.time_average_m, summary.median_m, summary.p90_m,
             summary.final_m), file=out)
    print("  fixes %d   windows without fix %d"
          % (result.fixes, result.windows_without_fix), file=out)
    print("", file=out)
    print("energy:", file=out)
    print("  team total %.1f J   mean/node %.2f J   max/node %.2f J"
          % (result.total_energy_j(), result.energy.mean_per_node_j,
             result.energy.max_per_node_j), file=out)
    for key, value in result.energy.breakdown.as_dict().items():
        print("  %-14s %10.2f J" % (key, value), file=out)
    print("", file=out)
    stats = result.channel_stats
    print("network: beacons %d, delivered %d, collided %d, syncs %d"
          % (result.beacons_sent, stats.frames_delivered,
             stats.frames_collided, result.syncs_received), file=out)
    return 0


def cmd_figure(args: argparse.Namespace, out) -> int:
    from repro.experiments import figures

    cal = SharedCalibration()
    cache = _cache_from_args(args)
    sweep_kw = dict(
        jobs=args.jobs, cache=cache, telemetry_path=args.telemetry
    )
    name = args.name
    duration = args.duration
    seed = args.seed
    if name == "fig1":
        result = figures.run_fig1(master_seed=seed)
        for key, data in sorted(result["bins"].items()):
            print("RSSI %d dBm: %s, mean %.1f m, std %.2f m, skew %.2f"
                  % (key, "gaussian" if data["is_gaussian"] else "histogram",
                     data["mean_m"], data["std_m"],
                     data["sample_skewness"]), file=out)
    elif name == "fig4":
        result = figures.run_fig4(
            duration_s=duration, master_seed=seed, **sweep_kw
        )
        for v_max, data in result.items():
            print("v_max=%.1f: avg %.1f m, final %.1f m"
                  % (v_max, data["summary"].time_average_m,
                     data["summary"].final_m), file=out)
    elif name == "fig5":
        result = figures.run_fig5(master_seed=seed)
        print("path %.0f m, final odometry error %.1f m"
              % (result["path_length_m"], result["final_error_m"]), file=out)
    elif name == "fig6":
        result = figures.run_fig6(
            duration_s=duration, master_seed=seed, calibration=cal, **sweep_kw
        )
        for period, data in sorted(result.items()):
            print("T=%-4.0f avg %.2f m" % (period,
                  data["summary"].time_average_m), file=out)
    elif name == "fig7":
        result = figures.run_fig7(
            duration_s=duration, master_seed=seed, calibration=cal, **sweep_kw
        )
        for v_max, modes in result.items():
            row = "  ".join("%s %.1f m" % (m, d["summary"].time_average_m)
                            for m, d in modes.items())
            print("v_max=%.1f: %s" % (v_max, row), file=out)
    elif name == "fig8":
        result = figures.run_fig8(
            duration_s=duration, master_seed=seed, calibration=cal
        )
        for instant, data in result.items():
            print("%-26s t=%.0fs median %.2f m p90 %.2f m"
                  % (instant, data["time_s"], data["median_m"],
                     data["p90_m"]), file=out)
    elif name == "fig9":
        result = figures.run_fig9(
            duration_s=duration, master_seed=seed, calibration=cal, **sweep_kw
        )
        for period, data in sorted(result.items()):
            print("T=%-4.0f avg %.2f m  E %.0f J vs %.0f J (%.1fx)"
                  % (period, data["summary"].time_average_m,
                     data["energy_coordinated_j"],
                     data["energy_uncoordinated_j"],
                     data["energy_ratio"]), file=out)
    elif name == "fig10":
        result = figures.run_fig10(
            duration_s=duration, master_seed=seed, calibration=cal, **sweep_kw
        )
        for count, data in sorted(result.items()):
            print("anchors=%-3d avg %.2f m (no-fix windows %d)"
                  % (count, data["summary"].time_average_m,
                     data["windows_without_fix"]), file=out)
    elif name == "mrmm":
        result = figures.run_mrmm_ablation(
            duration_s=duration, master_seed=seed, calibration=cal,
            **sweep_kw
        )
        for protocol, data in result.items():
            print("%-6s ctrl %d  data_fwd %d  syncs %d  err %.2f m"
                  % (protocol, data["control_packets"],
                     data["data_forwarded"], data["syncs_received"],
                     data["error_summary"].time_average_m), file=out)
    _print_cache_summary(cache, out)
    return 0


def _print_cache_summary(cache: Optional[ResultCache], out) -> None:
    if cache is None:
        return
    stats = cache.stats
    print("cache: %d hit%s, %d miss%s, %d stored (%s)"
          % (stats.hits, "" if stats.hits == 1 else "s",
             stats.misses, "" if stats.misses == 1 else "es",
             stats.stores, cache.root), file=out)


def cmd_sweep(args: argparse.Namespace, out) -> int:
    from repro.analysis.seeds import run_seed_sweep
    from repro.orchestrator.progress import ProgressPrinter

    if args.seeds is not None:
        try:
            seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
        except ValueError:
            print("invalid --seeds list %r" % args.seeds, file=out)
            return 2
    elif args.num_seeds is not None:
        seeds = list(range(1, args.num_seeds + 1))
    else:
        seeds = [1, 2, 3, 4, 5]
    if len(seeds) < 2:
        print("need at least 2 seeds, got %d" % len(seeds), file=out)
        return 2

    config = _config_from_args(args)
    cache = _cache_from_args(args)
    print("sweep: %d robots (%d anchors), %s, T=%.0fs, %.0fs, "
          "%d seeds, %d worker%s"
          % (config.n_robots, config.n_anchors,
             config.localization_mode.value, config.beacon_period_s,
             config.duration_s, len(seeds), args.jobs,
             "" if args.jobs == 1 else "s"), file=out)
    result = run_seed_sweep(
        config,
        seeds=seeds,
        jobs=args.jobs,
        cache=cache,
        progress=ProgressPrinter(out=out),
        telemetry_path=args.telemetry,
    )
    print("", file=out)
    print("%-8s %-14s %-14s" % ("seed", "avg error (m)", "energy (J)"),
          file=out)
    for seed, error, energy in zip(
        result.seeds, result.error_time_averages_m, result.energy_totals_j
    ):
        print("%-8d %-14.2f %-14.1f" % (seed, error, energy), file=out)
    print("", file=out)
    print("error  %s   spread %.1f%%"
          % (result.error_ci, 100.0 * result.relative_spread), file=out)
    print("energy %s" % result.energy_ci, file=out)
    _print_cache_summary(cache, out)
    return 0


def cmd_resilience(args: argparse.Namespace, out) -> int:
    from repro.experiments.resilience import run_resilience_sweep
    from repro.orchestrator.progress import ProgressPrinter

    try:
        intensities = [
            float(s) for s in args.intensities.split(",") if s.strip()
        ]
    except ValueError:
        print("invalid --intensities list %r" % args.intensities, file=out)
        return 2
    if not intensities:
        print("need at least one intensity", file=out)
        return 2

    config = _config_from_args(args)
    cache = _cache_from_args(args)
    print("resilience: %d robots (%d anchors), T=%.0fs, %.0fs, "
          "intensities %s"
          % (config.n_robots, config.n_anchors, config.beacon_period_s,
             config.duration_s,
             ", ".join("%g" % i for i in intensities)), file=out)
    result = run_resilience_sweep(
        intensities=intensities,
        base_config=config,
        jobs=args.jobs,
        cache=cache,
        progress=ProgressPrinter(out=out),
        telemetry_path=args.telemetry,
    )
    print("", file=out)
    print("%-10s %-16s %-16s %s"
          % ("intensity", "undefended (m)", "defended (m)",
             "gated/quarantined/resets"), file=out)
    for intensity in intensities:
        cells = result[intensity]
        plain = cells["undefended"]["summary"].time_average_m
        hard = cells["defended"]["summary"].time_average_m
        print("%-10g %-16.2f %-16.2f %d/%d/%d"
              % (intensity, plain, hard,
                 cells["defended"]["beacons_gated"],
                 cells["defended"]["beacons_quarantined"],
                 cells["defended"]["watchdog_resets"]), file=out)
    _print_cache_summary(cache, out)
    return 0


def cmd_report(args: argparse.Namespace, out) -> int:
    from repro.telemetry import (
        TelemetrySnapshot,
        merge_snapshots,
        prometheus_text,
        read_jsonl,
        render_report,
    )

    snapshots = []
    sweep = None
    if args.from_path is not None:
        try:
            records = read_jsonl(args.from_path)
        except OSError as exc:
            print("cannot read %s: %s" % (args.from_path, exc), file=out)
            return 2
        for record in records:
            kind = record.get("record")
            if kind == "job" and isinstance(record.get("metrics"), dict):
                snapshots.append(TelemetrySnapshot.from_mapping(
                    record["metrics"],
                    n_runs=int(record.get("n_runs", 1)),
                ))
            elif kind == "sweep":
                sweep = record  # newest wins; files are append-ordered
        title = "telemetry report — %s" % args.from_path
    else:
        # Cached TeamResults carry their base snapshot, so a report over
        # a finished sweep needs no re-simulation.
        cache = ResultCache(root=args.cache_dir)
        seen = set()
        for entry in cache.entries():
            if entry.fingerprint in seen:
                continue
            seen.add(entry.fingerprint)
            result = cache.get(entry.fingerprint)
            snapshot = getattr(result, "telemetry", None)
            if snapshot is not None:
                snapshots.append(snapshot)
        sweeps = cache.sweep_records()
        if sweeps:
            sweep = sweeps[-1]
        title = "telemetry report — cache %s" % cache.root
    if not snapshots:
        print("no telemetry snapshots found (run a sweep with --cache, "
              "or a --telemetry JSONL)", file=out)
        return 1
    merged = merge_snapshots(snapshots)
    if args.prometheus:
        out.write(prometheus_text(merged))
        return 0
    out.write(render_report(merged, sweep=sweep, title=title))
    return 0


def cmd_lint(args: argparse.Namespace, out) -> int:
    from repro.lint import (
        FRAMEWORK_CODES,
        SANITIZER_CODES,
        LintUsageError,
        all_rules,
        format_human,
        format_json,
        lint_paths,
        parse_code_list,
        write_baseline,
    )

    if args.list_rules:
        for code, cls in all_rules().items():
            print("%s  %-22s %s" % (code, cls.name, cls.summary), file=out)
        for code, summary in sorted(FRAMEWORK_CODES.items()):
            print("%s  %-22s %s" % (code, "(framework)", summary), file=out)
        for code, summary in sorted(SANITIZER_CODES.items()):
            print("%s  %-22s %s" % (code, "(sanitizer)", summary), file=out)
        return 0
    if args.sanitize:
        from repro.lint.sanitize import run_gate

        return run_gate(
            slow_callback_ms=args.slow_callback_ms,
            json_out=args.sanitize_out,
            out=out,
        )
    select = args.select
    if args.async_only:
        if select is not None:
            print("lint: --async conflicts with --select", file=out)
            return 2
        select = "ASY"
    try:
        report = lint_paths(
            args.paths,
            select=parse_code_list(select, "--select"),
            ignore=parse_code_list(args.ignore, "--ignore"),
            baseline_path=args.baseline,
        )
    except LintUsageError as exc:
        print("lint: %s" % exc, file=out)
        return 2
    if args.write_baseline is not None:
        if write_baseline(args.write_baseline, report.findings):
            print("wrote %d finding%s to baseline %s"
                  % (len(report.findings),
                     "" if len(report.findings) == 1 else "s",
                     args.write_baseline), file=out)
        else:
            print("no findings: removed any stale baseline at %s"
                  % args.write_baseline, file=out)
        return 0
    if args.json:
        print(format_json(report), file=out)
    else:
        print(format_human(report), file=out)
    return report.exit_code


def cmd_bench(args: argparse.Namespace, out) -> int:
    from repro.experiments.bench import run_hotpath_bench

    report = run_hotpath_bench(
        seed=args.seed,
        quick=args.quick,
        repeats=args.repeats,
        out_path=args.out,
        profile=args.profile,
        profile_top_n=args.profile_top,
    )
    scenario = report["scenario"]
    end = report["end_to_end"]
    print("bench: %s, %d robots (%d anchors), %.0fs, seed=%d%s"
          % (scenario["preset"], scenario["n_robots"],
             scenario["n_anchors"], scenario["duration_s"], report["seed"],
             " (quick)" if report["quick"] else ""), file=out)
    print("scenario fingerprint: %s" % scenario["fingerprint"][:16],
          file=out)
    print("", file=out)
    for label, key in (("kernels off", "kernels_off"),
                       ("kernels on", "kernels_on")):
        row = end[key]
        print("  %-12s p50 %.3fs  p90 %.3fs  %.0f events/s"
              % (label, row["wall_p50_s"], row["wall_p90_s"],
                 row["events_per_s"]), file=out)
    print("  end-to-end speedup: %.2fx" % end["speedup"], file=out)
    print("", file=out)
    print("components:", file=out)
    for name, comp in report["components"].items():
        print("  %-18s %.2fx" % (name, comp["speedup"]), file=out)
    print("  hot-path speedup (geometric mean): %.2fx"
          % report["hotpath_speedup"], file=out)
    print("", file=out)
    print("report written to %s" % args.out, file=out)
    if "profile_path" in report:
        print("profile written to %s" % report["profile_path"], file=out)
    if args.min_speedup is not None and end["speedup"] < args.min_speedup:
        print("FAIL: end-to-end speedup %.2fx below required %.2fx"
              % (end["speedup"], args.min_speedup), file=out)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace, out) -> int:
    import asyncio

    from repro.serve import LocalizationServer, ServeConfig, ServiceCore

    warm_store = None
    if args.warm_cache is not None:
        warm_store = ResultCache(root=args.warm_cache)
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            n_shards=args.shards,
            queue_limit=args.queue_limit,
            tenant_inflight_limit=args.tenant_inflight,
            session_ttl_s=args.session_ttl,
            checkpointing=not args.no_checkpointing,
            supervise=not args.no_supervise,
            trace_mode=args.trace_mode,
            trace_sample_every=args.trace_sample_every,
            trace_slow_ms=args.trace_slow_ms,
        )
    except ValueError as exc:
        print("serve: %s" % exc, file=out)
        return 2

    async def _run() -> int:
        core = ServiceCore(config, warm_store=warm_store)
        server = LocalizationServer(core)
        try:
            await server.start()
        except OSError as exc:
            # Unbindable host/port is a config error, same exit code as
            # an invalid ServeConfig: scripts branch on 2, not on text.
            print("serve: cannot bind %s:%d: %s"
                  % (config.host, config.port, exc), file=out)
            return 2
        print("serving on %s:%d (%d shards%s%s); GET /metrics /healthz "
              "/readyz on the same port"
              % (config.host, server.port, config.n_shards,
                 "" if config.checkpointing else ", checkpointing off",
                 ", warm cache %s" % args.warm_cache
                 if args.warm_cache else ""), file=out)
        if args.smoke:
            code = await _serve_smoke(server, out)
            await server.drain()
            _export_traces(core, args, out)
            return code
        try:
            await server.serve_forever()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            # Graceful drain: shed new work, flush checkpoints, stop.
            await server.drain()
            _export_traces(core, args, out)
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted", file=out)
        return 0


def _export_traces(core, args, out) -> None:
    """Write the core's recorded spans/ops to the paths the flags named."""
    trace_out = getattr(args, "trace_out", None)
    perfetto_out = getattr(args, "trace_perfetto", None)
    ops_out = getattr(args, "ops_out", None)
    if trace_out is None and perfetto_out is None and ops_out is None:
        return
    from repro.obs import write_perfetto_json, write_trace_jsonl

    records = core.tracer.records()
    if trace_out is not None:
        count = write_trace_jsonl(trace_out, records)
        print("trace: %d span%s -> %s"
              % (count, "" if count == 1 else "s", trace_out), file=out)
    if perfetto_out is not None:
        count = write_perfetto_json(perfetto_out, records)
        print("trace: %d event%s -> %s (Perfetto)"
              % (count, "" if count == 1 else "s", perfetto_out),
              file=out)
    if ops_out is not None:
        count = core.ops.write_jsonl(ops_out)
        print("ops: %d event%s -> %s"
              % (count, "" if count == 1 else "s", ops_out), file=out)


def cmd_trace(args: argparse.Namespace, out) -> int:
    from repro.obs import (
        read_trace_jsonl,
        render_slowest,
        render_summary,
        write_perfetto_json,
    )

    try:
        records = read_trace_jsonl(args.path)
    except OSError as exc:
        print("trace: cannot read %s: %s" % (args.path, exc), file=out)
        return 2
    except ValueError as exc:
        print("trace: %s is not trace JSONL: %s" % (args.path, exc),
              file=out)
        return 2
    if args.trace_command == "summarize":
        print(render_summary(records), file=out)
        return 0
    if args.trace_command == "slowest":
        print(render_slowest(records, n=args.n), file=out)
        return 0
    if args.trace_command == "export":
        count = write_perfetto_json(args.out, records)
        print("wrote %d event%s to %s"
              % (count, "" if count == 1 else "s", args.out), file=out)
        return 0
    print("trace: unknown subcommand %r" % args.trace_command, file=out)
    return 2


def cmd_chaos(args: argparse.Namespace, out) -> int:
    import asyncio

    from repro.core.config import CoCoAConfig
    from repro.serve import ChaosSchedule, record_replay_log, run_chaos
    from repro.util.geometry import Rect

    if args.seeds:
        try:
            seeds = [int(token) for token in args.seeds.split(",") if token]
        except ValueError:
            print("chaos: --seeds must be comma-separated integers",
                  file=out)
            return 2
    else:
        seeds = [args.seed]
    if min(args.kills, args.severs, args.evicts, args.delays) < 0:
        print("chaos: fault counts must be >= 0", file=out)
        return 2

    failures = 0
    for seed in seeds:
        config = CoCoAConfig(
            area=Rect.square(args.area),
            n_robots=args.robots,
            n_anchors=args.anchors,
            beacon_period_s=20.0,
            duration_s=args.duration,
            master_seed=seed,
            calibration_samples=args.samples,
            localization_mode=LocalizationMode.RF_ONLY,
        )
        log, result = record_replay_log(config)
        if result.fixes == 0:
            print("chaos: seed %d scenario produced no fixes; widen "
                  "--duration or --anchors" % seed, file=out)
            return 2
        schedule = ChaosSchedule.for_log(
            log, seed,
            kills=args.kills, severs=args.severs,
            evicts=args.evicts, delays=args.delays,
        )
        log_path = None
        if args.log is not None:
            log_path = (args.log if len(seeds) == 1
                        else "%s.seed%d" % (args.log, seed))
        trace_path = None
        if args.trace_out is not None:
            trace_path = (args.trace_out if len(seeds) == 1
                          else "%s.seed%d" % (args.trace_out, seed))
        report = asyncio.run(run_chaos(
            log, schedule, chaos_log_path=log_path,
            trace_log_path=trace_path,
        ))
        print(report.summary(), file=out)
        for problem in report.problems[:10]:
            print("  divergence: %s" % problem, file=out)
        if len(report.problems) > 10:
            print("  ... and %d more" % (len(report.problems) - 10),
                  file=out)
        if report.divergent_trace is not None:
            # Forensics: the first diverging fix's end-to-end timeline.
            print("  first divergent fix: trace %s"
                  % report.divergent_trace, file=out)
            for span in report.divergent_spans:
                duration_ms = (
                    (span["end_s"] - span["start_s"]) * 1e3
                    if span.get("end_s") is not None else 0.0
                )
                print("    %-18s %8.3f ms  %s"
                      % (span["name"], duration_ms, span.get("attrs") or ""),
                      file=out)
        if log_path is not None:
            print("  journal: %s" % log_path, file=out)
        if trace_path is not None:
            print("  traces: %s" % trace_path, file=out)
        if not report.ok:
            failures += 1
    if failures:
        print("chaos: %d/%d seeds FAILED the byte-identical recovery "
              "gate" % (failures, len(seeds)), file=out)
        return 1
    print("chaos: all %d seed(s) recovered byte-identically"
          % len(seeds), file=out)
    return 0


async def _serve_smoke(server, out) -> int:
    """Two-tenant round trip plus a metrics scrape against ourselves."""
    import asyncio

    from repro.serve import ServeClient

    port = server.port
    for tenant in ("smoke-a", "smoke-b"):
        async with ServeClient(server.core.config.host, port) as client:
            hello = await client.hello(
                tenant, calibration_samples=2000, area_side_m=80.0
            )
            if not hello.ok:
                print("smoke FAIL: hello %s" % hello.error, file=out)
                return 1
            await client.window_open(tenant, robot=0)
            beacons = [(10.0, 10.0, -60.0), (70.0, 10.0, -72.0),
                       (40.0, 70.0, -68.0), (20.0, 40.0, -64.0)]
            for seq, (x, y, rssi) in enumerate(beacons):
                await client.observe(tenant, 0, seq=seq, x=x, y=y,
                                     rssi_dbm=rssi)
            close = await client.window_close(tenant, robot=0)
            if not (close.ok and close.payload.get("fixed")):
                print("smoke FAIL: no fix for %s (%r)" % (tenant, close),
                      file=out)
                return 1
            print("smoke: %s fix at (%.2f, %.2f)"
                  % (tenant, close.payload["x"], close.payload["y"]),
                  file=out)
    async def _scrape(path: bytes) -> bytes:
        reader, writer = await asyncio.open_connection(
            server.core.config.host, port
        )
        writer.write(b"GET " + path + b" HTTP/1.1\r\nHost: smoke\r\n\r\n")
        await writer.drain()
        body = await reader.read(-1)
        writer.close()
        await writer.wait_closed()
        return body

    scrape = await _scrape(b"/metrics")
    if b"200 OK" not in scrape or b"serve_fixes_total" not in scrape:
        print("smoke FAIL: bad /metrics scrape", file=out)
        return 1
    print("smoke: /metrics scrape ok (%d bytes)" % len(scrape), file=out)
    for path, want in ((b"/healthz", b"ok"), (b"/readyz", b"ready")):
        scrape = await _scrape(path)
        if b"200 OK" not in scrape or want not in scrape:
            print("smoke FAIL: bad %s probe" % path.decode(), file=out)
            return 1
    print("smoke: /healthz and /readyz probes ok", file=out)
    return 0


def cmd_calibrate(args: argparse.Namespace, out) -> int:
    from repro.core.calibration import build_pdf_table
    from repro.net.phy import PathLossModel
    from repro.sim.rng import RandomStreams

    result = build_pdf_table(
        PathLossModel(),
        RandomStreams(args.seed).get("calibration"),
        n_samples=args.samples,
    )
    table = result.table
    print("samples: %d drawn, %d decodable"
          % (result.n_samples_drawn, result.n_samples_decodable), file=out)
    print("bins: %d (%d gaussian, %d histogram), RSSI [%d, %d] dBm"
          % (table.n_bins, result.n_gaussian_bins, result.n_histogram_bins,
             *table.rssi_range), file=out)
    print("%-8s %-10s %-10s %-8s" % ("RSSI", "kind", "mean d", "std"),
          file=out)
    for rssi, dist in table.items():
        kind = "gaussian" if dist.is_gaussian else "histogram"
        print("%-8d %-10s %-10.1f %-8.2f"
              % (rssi, kind, dist.mean_m, dist.std_m), file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    if out is None:
        out = sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return cmd_run(args, out)
    if args.command == "figure":
        return cmd_figure(args, out)
    if args.command == "sweep":
        return cmd_sweep(args, out)
    if args.command == "resilience":
        return cmd_resilience(args, out)
    if args.command == "report":
        return cmd_report(args, out)
    if args.command == "lint":
        return cmd_lint(args, out)
    if args.command == "bench":
        return cmd_bench(args, out)
    if args.command == "serve":
        return cmd_serve(args, out)
    if args.command == "chaos":
        return cmd_chaos(args, out)
    if args.command == "trace":
        return cmd_trace(args, out)
    if args.command == "calibrate":
        return cmd_calibrate(args, out)
    parser.error("unknown command %r" % args.command)
    return 2


if __name__ == "__main__":
    sys.exit(main())
