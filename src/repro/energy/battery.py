"""Battery model and team-lifetime projection.

The paper motivates coordination by energy, but never converts joules to
mission time.  This module closes that loop: given each node's measured
consumption *rate* and a battery capacity, project how long the team
survives — with the usual fleet-level definitions (first death, half
dead, communication-energy-only vs whole-robot budgets).

A WaveLAN-era laptop battery stores on the order of 100-200 kJ; the
defaults model a 2000 mAh pack at 11.1 V ≈ 80 kJ, of which a share is
budgeted to communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class Battery:
    """An energy budget for one robot's radio.

    Attributes:
        capacity_j: usable pack energy in joules.
        radio_share: fraction of the pack budgeted to communication (the
            rest drives motors and compute).
    """

    capacity_j: float = 80_000.0
    radio_share: float = 0.25

    def __post_init__(self) -> None:
        check_positive("capacity_j", self.capacity_j)
        check_in_range("radio_share", self.radio_share, 0.01, 1.0)

    @property
    def radio_budget_j(self) -> float:
        """Joules available for the wireless interface."""
        return self.capacity_j * self.radio_share


@dataclass(frozen=True)
class LifetimeProjection:
    """Projected team lifetime under a measured consumption profile.

    Attributes:
        node_lifetimes_s: per-node projected radio lifetime, seconds.
        first_death_s: when the first robot's radio budget runs out —
            the conservative "mesh starts degrading" point.
        half_team_s: when half the team is out.
        last_death_s: when the last robot dies.
    """

    node_lifetimes_s: Dict[int, float]
    first_death_s: float
    half_team_s: float
    last_death_s: float

    @property
    def mean_lifetime_s(self) -> float:
        values = list(self.node_lifetimes_s.values())
        return sum(values) / len(values) if values else 0.0


def project_lifetime(
    per_node_energy_j: Dict[int, float],
    measured_duration_s: float,
    battery: Battery = Battery(),
) -> LifetimeProjection:
    """Extrapolate measured consumption to battery exhaustion.

    Assumes the measured interval is representative steady state (true
    for CoCoA once the periodic schedule is running).

    Args:
        per_node_energy_j: joules each node consumed during the run.
        measured_duration_s: length of the measured run.
        battery: the per-robot energy budget.

    Raises:
        ValueError: on an empty profile or non-positive duration.
    """
    if not per_node_energy_j:
        raise ValueError("per_node_energy_j is empty")
    check_positive("measured_duration_s", measured_duration_s)
    lifetimes: Dict[int, float] = {}
    for node_id, consumed in per_node_energy_j.items():
        if consumed <= 0.0:
            lifetimes[node_id] = float("inf")
            continue
        rate_w = consumed / measured_duration_s
        lifetimes[node_id] = battery.radio_budget_j / rate_w
    ordered: List[float] = sorted(lifetimes.values())
    return LifetimeProjection(
        node_lifetimes_s=lifetimes,
        first_death_s=ordered[0],
        half_team_s=ordered[len(ordered) // 2],
        last_death_s=ordered[-1],
    )
