"""Team-level energy aggregation for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.energy.meter import EnergyBreakdown, EnergyMeter


@dataclass(frozen=True)
class TeamEnergyReport:
    """Aggregated energy figures over a robot team.

    Attributes:
        node_totals_j: per-node total energy, in node order.
        breakdown: element-wise sum of every node's breakdown.
    """

    node_totals_j: List[float]
    breakdown: EnergyBreakdown

    @property
    def total_j(self) -> float:
        """Team-wide total energy in joules."""
        return self.breakdown.total_j

    @property
    def mean_per_node_j(self) -> float:
        """Average energy per node in joules."""
        if not self.node_totals_j:
            return 0.0
        return sum(self.node_totals_j) / len(self.node_totals_j)

    @property
    def max_per_node_j(self) -> float:
        """The hungriest node's total — a proxy for team lifetime."""
        if not self.node_totals_j:
            return 0.0
        return max(self.node_totals_j)


def aggregate_meters(meters: Iterable[EnergyMeter]) -> TeamEnergyReport:
    """Sum per-node meters into a :class:`TeamEnergyReport`."""
    totals: List[float] = []
    agg = EnergyBreakdown()
    for meter in meters:
        b = meter.breakdown
        totals.append(b.total_j)
        agg.tx_j += b.tx_j
        agg.rx_j += b.rx_j
        agg.idle_j += b.idle_j
        agg.sleep_j += b.sleep_j
        agg.packet_send_j += b.packet_send_j
        agg.packet_recv_j += b.packet_recv_j
        agg.transition_j += b.transition_j
    return TeamEnergyReport(node_totals_j=totals, breakdown=agg)
