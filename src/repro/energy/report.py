"""Team-level energy aggregation for the evaluation harness.

Aggregation is driven by each meter's own :meth:`EnergyMeter.metrics`
mapping, accumulated through a telemetry
:class:`~repro.telemetry.registry.MetricsRegistry` — one generic loop
instead of a hand-maintained field-by-field sum, so a new breakdown
category shows up in team reports (and in ``repro report``) without
touching this module.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, List, Optional

from repro.energy.meter import EnergyBreakdown, EnergyMeter
from repro.telemetry.registry import MetricsRegistry


@dataclass(frozen=True)
class TeamEnergyReport:
    """Aggregated energy figures over a robot team.

    Attributes:
        node_totals_j: per-node total energy, in node order.
        breakdown: element-wise sum of every node's breakdown.
    """

    node_totals_j: List[float]
    breakdown: EnergyBreakdown

    @property
    def total_j(self) -> float:
        """Team-wide total energy in joules."""
        return self.breakdown.total_j

    @property
    def mean_per_node_j(self) -> float:
        """Average energy per node in joules."""
        if not self.node_totals_j:
            return 0.0
        return sum(self.node_totals_j) / len(self.node_totals_j)

    @property
    def max_per_node_j(self) -> float:
        """The hungriest node's total — a proxy for team lifetime."""
        if not self.node_totals_j:
            return 0.0
        return max(self.node_totals_j)


def aggregate_meters(
    meters: Iterable[EnergyMeter],
    registry: Optional[MetricsRegistry] = None,
) -> TeamEnergyReport:
    """Sum per-node meters into a :class:`TeamEnergyReport`.

    Args:
        meters: the team's per-node meters.
        registry: optional telemetry registry to accumulate into; when
            given, every ``energy_*`` / ``radio_*`` meter metric lands in
            it (so rich-mode runs see team energy in their registry dump).
            A private registry is used otherwise.
    """
    # The caller's registry may be the no-op shim, so the report always
    # accumulates through its own live registry and mirrors outward.
    acc = MetricsRegistry()
    totals: List[float] = []
    for meter in meters:
        totals.append(meter.total_j)
        for name, value in meter.metrics().items():
            acc.counter(name).inc(value)
            if registry is not None:
                registry.counter(name).inc(value)
    breakdown = EnergyBreakdown(**{
        f.name: acc.counter("energy_%s" % f.name).value
        for f in fields(EnergyBreakdown)
    })
    return TeamEnergyReport(node_totals_j=totals, breakdown=breakdown)
