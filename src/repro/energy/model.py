"""The Feeney–Nilsson linear energy model for 802.11 interfaces.

Feeney & Nilsson measured per-packet energy as ``cost = m * size + b``
(separately for sending and receiving broadcast traffic) on a Lucent
WaveLAN 802.11 card at 2 Mbps — the same card family the paper's testbed
uses.  On top of the per-packet costs the interface draws a baseline power
that depends on its state; the paper quotes the two numbers that matter for
CoCoA's coordination argument: ~900 mW when idle versus ~50 mW asleep.

All constants are configurable so the benchmark harness can run energy
sensitivity studies, but :meth:`EnergyModel.wavelan_2mbps` reproduces the
paper's configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.validation import check_non_negative


class RadioState(enum.Enum):
    """Power states of the wireless interface."""

    OFF = "off"
    SLEEP = "sleep"
    IDLE = "idle"
    RX = "rx"
    TX = "tx"


@dataclass(frozen=True)
class EnergyModel:
    """Power and per-packet energy constants for one radio type.

    Attributes:
        tx_power_mw: power drawn while the transmitter is active.
        rx_power_mw: power drawn while actively decoding a frame.
        idle_power_mw: power drawn while awake but not sending/receiving
            (the paper: ~900 mW — "typical 802.11 radios consume as much
            energy being idle as when receiving packets").
        sleep_power_mw: power drawn in sleep mode (the paper: ~50 mW).
        off_power_mw: power drawn when powered off (0).
        send_cost_per_byte_uj: linear coefficient of the broadcast-send
            per-packet cost, in microjoules per byte.
        send_cost_fixed_uj: fixed component of the broadcast-send cost.
        recv_cost_per_byte_uj: linear coefficient of the broadcast-receive
            per-packet cost.
        recv_cost_fixed_uj: fixed component of the broadcast-receive cost.
        wake_transition_s: time to go from SLEEP (or OFF) to IDLE.
        wake_transition_uj: additional energy burned by that transition
            ("energy spent in powering the card on and off", §3).
        sleep_transition_uj: energy burned entering sleep.
    """

    tx_power_mw: float = 1400.0
    rx_power_mw: float = 1000.0
    idle_power_mw: float = 900.0
    sleep_power_mw: float = 50.0
    off_power_mw: float = 0.0
    send_cost_per_byte_uj: float = 1.9
    send_cost_fixed_uj: float = 266.0
    recv_cost_per_byte_uj: float = 0.5
    recv_cost_fixed_uj: float = 56.0
    wake_transition_s: float = 0.1
    wake_transition_uj: float = 1000.0
    sleep_transition_uj: float = 500.0

    def __post_init__(self) -> None:
        for field_name in (
            "tx_power_mw",
            "rx_power_mw",
            "idle_power_mw",
            "sleep_power_mw",
            "off_power_mw",
            "send_cost_per_byte_uj",
            "send_cost_fixed_uj",
            "recv_cost_per_byte_uj",
            "recv_cost_fixed_uj",
            "wake_transition_s",
            "wake_transition_uj",
            "sleep_transition_uj",
        ):
            check_non_negative(field_name, getattr(self, field_name))

    @staticmethod
    def wavelan_2mbps() -> "EnergyModel":
        """The paper's configuration (Feeney–Nilsson WaveLAN constants)."""
        return EnergyModel()

    def state_power_mw(self, state: RadioState) -> float:
        """Baseline power drawn in ``state``, in milliwatts."""
        if state is RadioState.TX:
            return self.tx_power_mw
        if state is RadioState.RX:
            return self.rx_power_mw
        if state is RadioState.IDLE:
            return self.idle_power_mw
        if state is RadioState.SLEEP:
            return self.sleep_power_mw
        return self.off_power_mw

    def send_cost_j(self, size_bytes: int) -> float:
        """Incremental energy (joules) to broadcast a frame of this size."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0, got %r" % size_bytes)
        return (
            self.send_cost_per_byte_uj * size_bytes + self.send_cost_fixed_uj
        ) * 1e-6

    def recv_cost_j(self, size_bytes: int) -> float:
        """Incremental energy (joules) to receive a frame of this size."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0, got %r" % size_bytes)
        return (
            self.recv_cost_per_byte_uj * size_bytes + self.recv_cost_fixed_uj
        ) * 1e-6
