"""Energy modelling for 802.11 radios.

Implements the measurement-based linear energy model of Feeney & Nilsson
(INFOCOM 2001), which the paper adopts (§3, "Energy Model"): every packet
send/receive costs a linear function of its size, and the radio additionally
draws a state-dependent power while transmitting, receiving, idling or
sleeping.  The paper's key constants — 900 mW idle versus 50 mW sleep — are
what make CoCoA's coordinated sleeping profitable.
"""

from repro.energy.battery import Battery, LifetimeProjection, project_lifetime
from repro.energy.model import EnergyModel, RadioState
from repro.energy.meter import EnergyBreakdown, EnergyMeter
from repro.energy.report import TeamEnergyReport, aggregate_meters

__all__ = [
    "EnergyModel",
    "RadioState",
    "EnergyMeter",
    "EnergyBreakdown",
    "TeamEnergyReport",
    "aggregate_meters",
    "Battery",
    "LifetimeProjection",
    "project_lifetime",
]
