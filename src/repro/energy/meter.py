"""Per-node energy accounting.

An :class:`EnergyMeter` integrates a radio's state timeline against an
:class:`~repro.energy.model.EnergyModel` and accumulates per-packet costs.
The meter is driven by the radio (state changes) and the MAC (packet
events); the experiment harness reads the final :class:`EnergyBreakdown`.

The paper's energy metric (§3) "includes energy spent during sending and
receiving both data and control packets as well as energy spent when the
wireless device is idle or in sleep mode" — the breakdown mirrors exactly
those categories plus on/off transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.energy.model import EnergyModel, RadioState


@dataclass
class EnergyBreakdown:
    """Joules consumed, split by cause."""

    tx_j: float = 0.0
    rx_j: float = 0.0
    idle_j: float = 0.0
    sleep_j: float = 0.0
    packet_send_j: float = 0.0
    packet_recv_j: float = 0.0
    transition_j: float = 0.0

    @property
    def total_j(self) -> float:
        """Total energy across all categories."""
        return (
            self.tx_j
            + self.rx_j
            + self.idle_j
            + self.sleep_j
            + self.packet_send_j
            + self.packet_recv_j
            + self.transition_j
        )

    def as_dict(self) -> Dict[str, float]:
        """Return the breakdown as a plain dict (stable key order)."""
        return {
            "tx_j": self.tx_j,
            "rx_j": self.rx_j,
            "idle_j": self.idle_j,
            "sleep_j": self.sleep_j,
            "packet_send_j": self.packet_send_j,
            "packet_recv_j": self.packet_recv_j,
            "transition_j": self.transition_j,
            "total_j": self.total_j,
        }


class EnergyMeter:
    """Integrates radio state durations and per-packet costs into joules."""

    def __init__(self, model: EnergyModel) -> None:
        self._model = model
        self._breakdown = EnergyBreakdown()
        self._packets_sent = 0
        self._packets_received = 0
        self._transitions = 0
        # Per-state duration scalars instead of an enum-keyed dict:
        # charge_state runs once per radio transition (tens of thousands
        # per run) and enum hashing dominated its profile.
        self._dur_tx = 0.0
        self._dur_rx = 0.0
        self._dur_idle = 0.0
        self._dur_sleep = 0.0
        self._dur_off = 0.0
        # Baseline power per state in watts.  ``mw * 1e-3`` is exactly the
        # first multiplication the expression
        # ``state_power_mw(state) * 1e-3 * duration_s`` performs (Python
        # evaluates left to right), so hoisting it preserves the charged
        # joules bit for bit.
        self._w_tx = model.state_power_mw(RadioState.TX) * 1e-3
        self._w_rx = model.state_power_mw(RadioState.RX) * 1e-3
        self._w_idle = model.state_power_mw(RadioState.IDLE) * 1e-3
        self._w_sleep = model.state_power_mw(RadioState.SLEEP) * 1e-3
        self._w_off = model.state_power_mw(RadioState.OFF) * 1e-3
        # Per-size packet cost memos: frames come in a handful of fixed
        # sizes, so the linear cost model runs once per distinct size.
        self._send_costs: Dict[int, float] = {}
        self._recv_costs: Dict[int, float] = {}

    @property
    def model(self) -> EnergyModel:
        return self._model

    @property
    def breakdown(self) -> EnergyBreakdown:
        return self._breakdown

    @property
    def total_j(self) -> float:
        return self._breakdown.total_j

    @property
    def packets_sent(self) -> int:
        return self._packets_sent

    @property
    def packets_received(self) -> int:
        return self._packets_received

    @property
    def transitions(self) -> int:
        """Number of sleep/wake (and on/off) transitions charged."""
        return self._transitions

    @property
    def state_durations_s(self) -> Dict[RadioState, float]:
        """Seconds charged per radio state (a copy; all states present)."""
        return {
            RadioState.OFF: self._dur_off,
            RadioState.SLEEP: self._dur_sleep,
            RadioState.IDLE: self._dur_idle,
            RadioState.RX: self._dur_rx,
            RadioState.TX: self._dur_tx,
        }

    def metrics(self) -> Dict[str, float]:
        """Flat metric mapping for telemetry collection."""
        out = {
            "radio_%s_s" % state.value: duration
            for state, duration in self.state_durations_s.items()
        }
        out["radio_transitions"] = float(self._transitions)
        out["radio_packets_sent"] = float(self._packets_sent)
        out["radio_packets_received"] = float(self._packets_received)
        for key, value in self._breakdown.as_dict().items():
            out["energy_%s" % key] = value
        return out

    def charge_state(self, state: RadioState, duration_s: float) -> None:
        """Charge baseline power for spending ``duration_s`` in ``state``.

        Branch order follows billing frequency: receive/idle intervals
        alternate on every reception, so those two states take the bulk
        of the calls.
        """
        if duration_s < 0:
            raise ValueError(
                "duration_s must be non-negative, got %r" % duration_s
            )
        breakdown = self._breakdown
        if state is RadioState.IDLE:
            self._dur_idle += duration_s
            breakdown.idle_j += self._w_idle * duration_s
        elif state is RadioState.RX:
            self._dur_rx += duration_s
            breakdown.rx_j += self._w_rx * duration_s
        elif state is RadioState.TX:
            self._dur_tx += duration_s
            breakdown.tx_j += self._w_tx * duration_s
        elif state is RadioState.SLEEP:
            self._dur_sleep += duration_s
            breakdown.sleep_j += self._w_sleep * duration_s
        else:
            self._dur_off += duration_s
            energy_j = self._w_off * duration_s
            # OFF draws nothing by default; if a nonzero off power is
            # configured it is folded into idle for reporting purposes.
            if energy_j > 0.0:
                breakdown.idle_j += energy_j

    def charge_send(self, size_bytes: int) -> None:
        """Charge the per-packet broadcast-send cost."""
        cost = self._send_costs.get(size_bytes)
        if cost is None:
            cost = self._model.send_cost_j(size_bytes)
            self._send_costs[size_bytes] = cost
        self._breakdown.packet_send_j += cost
        self._packets_sent += 1

    def charge_recv(self, size_bytes: int) -> None:
        """Charge the per-packet broadcast-receive cost."""
        cost = self._recv_costs.get(size_bytes)
        if cost is None:
            cost = self._model.recv_cost_j(size_bytes)
            self._recv_costs[size_bytes] = cost
        self._breakdown.packet_recv_j += cost
        self._packets_received += 1

    def charge_wake_transition(self) -> None:
        """Charge the fixed energy of a SLEEP/OFF -> IDLE transition."""
        self._breakdown.transition_j += self._model.wake_transition_uj * 1e-6
        self._transitions += 1

    def charge_sleep_transition(self) -> None:
        """Charge the fixed energy of an IDLE -> SLEEP transition."""
        self._breakdown.transition_j += (
            self._model.sleep_transition_uj * 1e-6
        )
        self._transitions += 1
