"""Per-hop latency attribution over recorded trace spans.

Turns a flat list of span records into the two views the ``repro
trace`` CLI prints:

- :func:`hop_table` / :func:`render_summary` — per-hop count, total,
  mean, p50/p99 and share-of-request-time, answering "where does the
  latency go?" across a whole recording.
- :func:`slowest_traces` / :func:`render_slowest` — the N slowest
  requests with their per-hop breakdown, answering "what happened to
  *that* request?".

Span records are the dicts produced by
:meth:`~repro.obs.trace.WallSpan.as_record` (or read back from trace
JSONL) — this module never touches live tracer state.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "hop_table",
    "slowest_traces",
    "render_summary",
    "render_slowest",
]

#: Root span name — everything else is a hop beneath it.
ROOT = "request"


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    low = int(pos)
    high = min(low + 1, len(sorted_values) - 1)
    frac = pos - low
    return sorted_values[low] * (1.0 - frac) + sorted_values[high] * frac


def _durations_by_name(
    records: Iterable[Dict[str, Any]],
) -> Dict[str, List[float]]:
    byname: Dict[str, List[float]] = {}
    for record in records:
        end_s = record.get("end_s")
        if end_s is None:
            continue
        byname.setdefault(record["name"], []).append(
            max(0.0, end_s - record["start_s"])
        )
    return byname


def hop_table(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-hop aggregate rows, root first then hops by total time.

    Each row: ``name, count, total_ms, mean_ms, p50_ms, p99_ms,
    share`` — ``share`` being the hop's total as a fraction of the
    total root-span time (the root's own share is 1.0).
    """
    byname = _durations_by_name(records)
    root_total = sum(byname.get(ROOT, []))
    rows: List[Dict[str, Any]] = []
    for name, durations in byname.items():
        durations.sort()
        total = sum(durations)
        rows.append({
            "name": name,
            "count": len(durations),
            "total_ms": total * 1e3,
            "mean_ms": total / len(durations) * 1e3,
            "p50_ms": _percentile(durations, 0.50) * 1e3,
            "p99_ms": _percentile(durations, 0.99) * 1e3,
            "share": (total / root_total) if root_total > 0 else 0.0,
        })
    rows.sort(key=lambda row: (row["name"] != ROOT, -row["total_ms"]))
    return rows


def slowest_traces(
    records: Iterable[Dict[str, Any]],
    n: int = 10,
) -> List[Dict[str, Any]]:
    """The ``n`` slowest requests, each with a per-hop breakdown.

    Each entry: ``trace, duration_ms, attrs`` (the root span's attrs —
    op/tenant/rid/error) and ``hops`` mapping hop name → total ms
    inside that trace.
    """
    roots: Dict[str, Dict[str, Any]] = {}
    hops: Dict[str, Dict[str, float]] = {}
    for record in records:
        end_s = record.get("end_s")
        if end_s is None:
            continue
        trace_id = record["trace"]
        duration_ms = max(0.0, end_s - record["start_s"]) * 1e3
        if record["name"] == ROOT:
            roots[trace_id] = {
                "trace": trace_id,
                "duration_ms": duration_ms,
                "attrs": dict(record.get("attrs") or {}),
            }
        else:
            bucket = hops.setdefault(trace_id, {})
            bucket[record["name"]] = (
                bucket.get(record["name"], 0.0) + duration_ms
            )
    entries = sorted(
        roots.values(), key=lambda entry: -entry["duration_ms"]
    )[:n]
    for entry in entries:
        entry["hops"] = hops.get(entry["trace"], {})
    return entries


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_summary(records: List[Dict[str, Any]]) -> str:
    """The ``repro trace summarize`` view."""
    rows = hop_table(records)
    if not rows:
        return "no closed spans recorded"
    n_traces = len({record["trace"] for record in records})
    body = _format_table(
        ["hop", "count", "total ms", "mean ms", "p50 ms", "p99 ms", "share"],
        [
            [
                row["name"],
                str(row["count"]),
                "%.2f" % row["total_ms"],
                "%.3f" % row["mean_ms"],
                "%.3f" % row["p50_ms"],
                "%.3f" % row["p99_ms"],
                "%.1f%%" % (row["share"] * 100.0),
            ]
            for row in rows
        ],
    )
    return "%d spans across %d traces\n\n%s" % (len(records), n_traces, body)


def render_slowest(records: List[Dict[str, Any]], n: int = 10) -> str:
    """The ``repro trace slowest`` view."""
    entries = slowest_traces(records, n=n)
    if not entries:
        return "no closed spans recorded"
    lines: List[str] = []
    for rank, entry in enumerate(entries, start=1):
        attrs = entry["attrs"]
        descriptor = " ".join(
            "%s=%s" % (key, attrs[key])
            for key in ("op", "tenant", "rid", "error")
            if key in attrs
        )
        lines.append(
            "%2d. %s  %.3f ms  %s"
            % (rank, entry["trace"], entry["duration_ms"], descriptor)
        )
        for hop, hop_ms in sorted(
            entry["hops"].items(), key=lambda item: -item[1]
        ):
            lines.append("      %-18s %8.3f ms" % (hop, hop_ms))
    return "\n".join(lines)
