"""repro.obs — wall-clock observability for the serving stack.

Everything in this package lives **outside** the deterministic
simulation core: it reads relative wall-clock timers (legal under
REP002 outside the sim packages), mints trace ids, and records spans
whose timestamps are real elapsed time — none of which may ever touch a
science payload.  The serve layer threads an optional
:class:`RequestTracer` through its request path exactly the way it
threads a :class:`~repro.telemetry.registry.MetricsRegistry`: a no-op
by construction when disabled, and proven byte-inert when enabled by
the replay gate (``tests/test_serve_replay.py`` runs the 3-seed
service-vs-batch comparison with tracing off, always-on and sampled).

Pieces:

- :mod:`~repro.obs.trace` — trace ids, parent-linked wall-clock spans
  (:class:`WallSpan`), per-request :class:`ActiveTrace` accumulation
  and the head/tail-sampling :class:`RequestTracer`.
- :mod:`~repro.obs.buffer` — the bounded :class:`SpanBuffer` finished
  spans land in.
- :mod:`~repro.obs.oplog` — the structured ops event log
  (:class:`OpsLog`): supervisor restarts, evictions, rehydrations,
  each tagged with trace/rid/tenant correlation ids when known.
- :mod:`~repro.obs.export` — trace JSONL round-trip plus the
  Perfetto/Chrome ``trace_event`` JSON exporter.
- :mod:`~repro.obs.summary` — per-hop latency attribution tables and
  the ``repro trace summarize`` / ``slowest`` views.
"""

from repro.obs.buffer import SpanBuffer
from repro.obs.export import (
    perfetto_trace_events,
    read_trace_jsonl,
    write_perfetto_json,
    write_trace_jsonl,
)
from repro.obs.oplog import OpsEvent, OpsLog
from repro.obs.summary import (
    hop_table,
    render_slowest,
    render_summary,
    slowest_traces,
)
from repro.obs.trace import (
    ActiveTrace,
    NULL_TRACER,
    RequestTracer,
    TraceConfig,
    WallSpan,
)

__all__ = [
    "ActiveTrace",
    "NULL_TRACER",
    "OpsEvent",
    "OpsLog",
    "RequestTracer",
    "SpanBuffer",
    "TraceConfig",
    "WallSpan",
    "hop_table",
    "perfetto_trace_events",
    "read_trace_jsonl",
    "render_slowest",
    "render_summary",
    "slowest_traces",
    "write_perfetto_json",
    "write_trace_jsonl",
]
