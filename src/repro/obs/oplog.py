"""Structured ops event log.

Operational state changes — supervisor restarts, session rehydrations,
idle evictions, shed decisions — are invisible to per-request spans:
they happen *between* requests or *to* many requests at once.  The
:class:`OpsLog` records them as flat, JSON-serializable events stamped
with whatever correlation ids are known at the emit site (``trace``,
``rid``, ``tenant``, ``shard``), so an operator can pivot from a slow
trace to the restart that explains it.

Timestamps reuse the tracer's relative clock, putting ops events and
spans on one timeline.  Like the span buffer, the log is bounded and
loop-confined.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["OpsEvent", "OpsLog"]


class OpsEvent:
    """One operational event: a kind, a relative timestamp, and fields."""

    __slots__ = ("kind", "at_s", "fields")

    def __init__(self, kind: str, at_s: float, fields: Dict[str, Any]) -> None:
        self.kind = kind
        self.at_s = at_s
        self.fields = fields

    def as_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"kind": self.kind, "at_s": self.at_s}
        record.update(self.fields)
        return record

    def __repr__(self) -> str:
        return "OpsEvent(%s @%.6fs %r)" % (self.kind, self.at_s, self.fields)


class OpsLog:
    """Bounded structured event log sharing the tracer's clock."""

    __slots__ = ("_events", "_clock", "dropped")

    def __init__(
        self,
        max_events: int = 10_000,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self._events = deque(maxlen=max_events)
        self._clock = clock if clock is not None else time.perf_counter
        self.dropped = 0

    def emit(self, kind: str, **fields: Any) -> OpsEvent:
        """Record one event; ``None``-valued fields are dropped so emit
        sites can pass correlation ids unconditionally."""
        event = OpsEvent(
            kind,
            self._clock(),
            {key: value for key, value in fields.items() if value is not None},
        )
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[OpsEvent]:
        return iter(self._events)

    def records(self) -> List[Dict[str, Any]]:
        return [event.as_record() for event in self._events]

    def write_jsonl(self, path) -> int:
        """Append-free JSONL dump; returns the number of lines written."""
        records = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


class _NullOpsLog:
    """No-op ops log for cores constructed without observability."""

    dropped = 0

    def emit(self, kind: str, **fields: Any) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def records(self) -> List[Dict[str, Any]]:
        return []

    def write_jsonl(self, path) -> int:
        return 0


#: Shared no-op instance (mirrors NULL_REGISTRY / NULL_TRACER).
NULL_OPS_LOG = _NullOpsLog()
