"""Wall-clock request tracing: ids, spans, head/tail sampling.

A **trace** is one request's journey through the serving stack.  The
trace id is minted at the client (or at the server's TCP edge for raw
peers that did not stamp one), travels in the optional ``trace`` field
of the NDJSON protocol, and is echoed on the reply line so a client can
correlate the retries of a request whose first reply was lost.

Inside the server each traced request accumulates parent-linked
:class:`WallSpan` records — ``request`` (the root, submit to reply),
``queue`` (shard queue wait), ``shard_service`` (the worker's handling
slot), ``estimator_ingest`` (applying a window's observations) and
``checkpoint`` (the durability write) — giving queue-wait vs.
service-time attribution per hop.  Timestamps come from an injectable
*relative* clock (``time.perf_counter`` by default): REP002 bans
absolute wall timestamps everywhere, and bans even relative timers in
the sim packages, which is exactly why this module lives in
``repro.obs`` and is threaded only through the serve layer.

Sampling keeps the always-on cost bounded:

- ``mode="always"`` keeps every trace (benchmarks, chaos forensics);
- ``mode="sampled"`` (the serving default) head-samples one request in
  ``head_sample_every`` *and* tail-keeps any request slower than
  ``slow_ms`` — the slow outliers are precisely the traces worth
  keeping, and the head sample keeps the baseline shape visible;
- ``mode="off"`` makes every hook a cheap ``None`` check.

The tracer is loop-confined like everything else in the serve stack
(one asyncio loop owns it), so the span buffer needs no locks; see
:class:`~repro.obs.buffer.SpanBuffer`.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.obs.buffer import SpanBuffer
from repro.telemetry.registry import NULL_REGISTRY

__all__ = [
    "TraceConfig",
    "WallSpan",
    "ActiveTrace",
    "RequestTracer",
    "NULL_TRACER",
    "TRACE_MODES",
]

TRACE_MODES = ("off", "sampled", "always")

#: Maximum accepted length of a wire ``trace`` field (protocol guard).
MAX_TRACE_ID_CHARS = 128


@dataclass(frozen=True)
class TraceConfig:
    """Tracing knobs.

    Attributes:
        mode: ``off`` / ``sampled`` / ``always``.
        head_sample_every: in ``sampled`` mode, keep one request in N
            regardless of latency (N=1 keeps everything).
        slow_ms: in ``sampled`` mode, also keep any request whose total
            latency reaches this many milliseconds (tail sampling);
            0 keeps everything.
        max_spans: bounded span-buffer capacity (oldest evicted first).
    """

    mode: str = "sampled"
    head_sample_every: int = 128
    slow_ms: float = 25.0
    max_spans: int = 50_000

    def __post_init__(self) -> None:
        if self.mode not in TRACE_MODES:
            raise ValueError(
                "trace mode must be one of %r, got %r" % (TRACE_MODES, self.mode)
            )
        if self.head_sample_every < 1:
            raise ValueError("head_sample_every must be >= 1")
        if self.slow_ms < 0:
            raise ValueError("slow_ms must be >= 0")
        if self.max_spans < 1:
            raise ValueError("max_spans must be >= 1")


class WallSpan:
    """One named wall-clock interval inside a trace.

    ``start_s`` / ``end_s`` are offsets on the tracer's relative clock
    (a shared process origin), so spans from one process compose into
    one timeline; they are *not* absolute timestamps.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name",
                 "start_s", "end_s", "attrs")

    def __init__(
        self,
        trace_id: str,
        span_id: int,
        name: str,
        start_s: float,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def as_record(self) -> Dict[str, Any]:
        """JSON-serializable form (the trace-JSONL line)."""
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return "WallSpan(%s#%d %s %.6fs)" % (
            self.trace_id, self.span_id, self.name, self.duration_s,
        )


class ActiveTrace:
    """One in-flight request's span accumulation.

    Spans collect in a small private list first; only
    :meth:`RequestTracer.finish` — where the sampling decision is made
    — moves them into the shared buffer.  A sampled-out request
    therefore costs a handful of small allocations and nothing else.
    """

    __slots__ = ("trace_id", "keep_head", "root", "queue_span",
                 "_spans", "_ids", "_clock")

    def __init__(
        self,
        trace_id: str,
        clock: Callable[[], float],
        keep_head: bool,
        op: str,
        tenant: str,
        rid: Optional[int],
    ) -> None:
        self.trace_id = trace_id
        self._clock = clock
        self.keep_head = keep_head
        self._ids = itertools.count(1)
        self._spans: List[WallSpan] = []
        attrs: Dict[str, Any] = {"op": op, "tenant": tenant}
        if rid is not None:
            attrs["rid"] = rid
        self.root = self._open("request", parent_id=None, attrs=attrs)
        self.queue_span: Optional[WallSpan] = self._open(
            "queue", parent_id=self.root.span_id, attrs=None
        )

    def _open(self, name, parent_id, attrs) -> WallSpan:
        span = WallSpan(
            self.trace_id, next(self._ids), name, self._clock(),
            parent_id=parent_id, attrs=attrs,
        )
        self._spans.append(span)
        return span

    # -- hop recording -------------------------------------------------------

    def open_span(self, name: str, **attrs: Any) -> WallSpan:
        """Open a child span of the request root at *now*."""
        return self._open(name, parent_id=self.root.span_id,
                          attrs=attrs or None)

    def close_span(self, span: Optional[WallSpan]) -> None:
        """Close ``span`` at *now* (no-op for ``None`` / already closed)."""
        if span is not None and span.end_s is None:
            span.end_s = self._clock()

    def dequeued(self) -> Optional[WallSpan]:
        """Mark the shard worker picking this request up: the queue span
        closes and the ``shard_service`` span opens.  Returns the
        service span (the worker closes it after handling)."""
        self.close_span(self.queue_span)
        return self.open_span("shard_service")

    class _Hop:
        __slots__ = ("_trace", "_span")

        def __init__(self, trace: "ActiveTrace", span: WallSpan) -> None:
            self._trace = trace
            self._span = span

        def __enter__(self) -> WallSpan:
            return self._span

        def __exit__(self, *exc_info) -> None:
            self._trace.close_span(self._span)

    def hop(self, name: str, **attrs: Any) -> "ActiveTrace._Hop":
        """Context manager recording one synchronous hop."""
        return self._Hop(self, self.open_span(name, **attrs))

    # -- completion ----------------------------------------------------------

    def seal(self, error: Optional[str]) -> float:
        """Close the root (and any span left open) at *now*; returns the
        request's total wall duration in seconds."""
        now = self._clock()
        for span in self._spans:
            if span.end_s is None:
                span.end_s = now
        if error is not None:
            self.root.attrs["error"] = error
        return self.root.end_s - self.root.start_s

    @property
    def spans(self) -> List[WallSpan]:
        return self._spans


class RequestTracer:
    """Mints trace ids, accumulates request spans, samples, buffers.

    Args:
        config: sampling knobs (:class:`TraceConfig`).
        clock: relative wall clock (injectable so tests never sleep).
        registry: telemetry registry for trace accounting counters.
        id_entropy: hex prefix distinguishing this process's minted ids
            (defaults to 4 random bytes; injectable for deterministic
            test output).
    """

    def __init__(
        self,
        config: Optional[TraceConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        registry=NULL_REGISTRY,
        id_entropy: Optional[str] = None,
    ) -> None:
        self.config = config if config is not None else TraceConfig()
        self._clock = clock if clock is not None else time.perf_counter
        self._registry = registry
        if id_entropy is None:
            id_entropy = os.urandom(4).hex()
        self._id_prefix = id_entropy
        self._ids = itertools.count(1)
        self._head_countdown = 0
        self.buffer = SpanBuffer(max_spans=self.config.max_spans)

    @property
    def enabled(self) -> bool:
        return self.config.mode != "off"

    def mint(self) -> str:
        """A fresh trace id (server-edge minting for raw TCP peers)."""
        return "%s-%06x" % (self._id_prefix, next(self._ids))

    # -- request lifecycle ---------------------------------------------------

    def begin(self, request) -> Optional[ActiveTrace]:
        """Start tracing one request; ``None`` when tracing is off.

        Adopts the request's ``trace`` field when the client stamped
        one, mints otherwise.  The head-sampling decision is made here
        (cheap, before any work); the tail decision waits for the
        latency measured at :meth:`finish`.
        """
        if self.config.mode == "off":
            return None
        trace_id = getattr(request, "trace", None)
        if trace_id is None:
            trace_id = self.mint()
        if self.config.mode == "always":
            keep_head = True
        else:
            self._head_countdown -= 1
            keep_head = self._head_countdown <= 0
            if keep_head:
                self._head_countdown = self.config.head_sample_every
        return ActiveTrace(
            trace_id,
            clock=self._clock,
            keep_head=keep_head,
            op=getattr(request, "op", "?"),
            tenant=getattr(request, "tenant", ""),
            rid=getattr(request, "rid", None),
        )

    def finish(self, active: ActiveTrace, response) -> None:
        """Seal the request's spans and apply the keep/drop decision."""
        error = None
        if response is not None and not getattr(response, "ok", True):
            error = getattr(response, "error", None)
        duration_s = active.seal(error)
        slow = duration_s * 1000.0 >= self.config.slow_ms
        if not (active.keep_head or slow):
            self._registry.counter("obs_traces_sampled_out").inc()
            return
        if slow and not active.keep_head:
            self._registry.counter("obs_traces_tail_kept").inc()
        self._registry.counter("obs_traces_recorded").inc()
        self.buffer.extend(active.spans)

    # -- draining ------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Every buffered span as a JSON-serializable record."""
        return [span.as_record() for span in self.buffer]

    def spans_for(self, trace_id: str) -> List[Dict[str, Any]]:
        """The buffered spans of one trace (forensics: chaos divergence)."""
        return [
            span.as_record() for span in self.buffer
            if span.trace_id == trace_id
        ]


class _NullTracer:
    """Disabled-tracing shim sharing :class:`RequestTracer`'s surface."""

    enabled = False
    config = TraceConfig(mode="off")
    buffer = SpanBuffer(max_spans=1)

    def mint(self) -> str:  # pragma: no cover - never sensible when off
        return "off"

    def begin(self, request) -> None:
        return None

    def finish(self, active, response) -> None:
        pass

    def records(self) -> List[Dict[str, Any]]:
        return []

    def spans_for(self, trace_id: str) -> List[Dict[str, Any]]:
        return []


#: Shared no-op tracer for code paths constructed without tracing.
NULL_TRACER = _NullTracer()
