"""Trace exporters: JSONL round-trip and Perfetto ``trace_event`` JSON.

Two formats, two audiences:

- **Trace JSONL** is the machine format — one span record per line,
  written at capture time and re-read by ``repro trace summarize`` /
  ``slowest`` / ``export``.  Lines are exactly
  :meth:`~repro.obs.trace.WallSpan.as_record` dicts.
- **Perfetto JSON** is the human format — the Chrome/Perfetto
  ``trace_event`` schema (``{"traceEvents": [...]}`` with complete
  ``"ph": "X"`` events, microsecond timestamps), loadable in
  ``ui.perfetto.dev`` or ``chrome://tracing``.  Traces render as tracks
  (one ``tid`` per trace id) so the queue-wait / service-time split is
  visible per request.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

__all__ = [
    "write_trace_jsonl",
    "read_trace_jsonl",
    "perfetto_trace_events",
    "write_perfetto_json",
]


def write_trace_jsonl(path, records: Iterable[Dict[str, Any]]) -> int:
    """Write span records one-per-line; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def read_trace_jsonl(path) -> List[Dict[str, Any]]:
    """Read span records back (blank lines tolerated)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def perfetto_trace_events(
    records: Iterable[Dict[str, Any]],
    process_name: str = "repro.serve",
) -> Dict[str, Any]:
    """Span records → a Chrome/Perfetto ``trace_event`` document.

    Each span becomes one complete event (``"ph": "X"``); each trace id
    gets its own ``tid`` track so concurrent requests stack instead of
    overlapping.  Open spans (truncated by buffer eviction) are skipped.
    """
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    for record in records:
        end_s = record.get("end_s")
        if end_s is None:
            continue
        trace_id = record["trace"]
        tid = tids.setdefault(trace_id, len(tids) + 1)
        start_us = record["start_s"] * 1e6
        args = dict(record.get("attrs") or {})
        args["trace"] = trace_id
        args["span"] = record["span"]
        if record.get("parent") is not None:
            args["parent"] = record["parent"]
        events.append({
            "name": record["name"],
            "ph": "X",
            "ts": start_us,
            "dur": max(0.0, end_s * 1e6 - start_us),
            "pid": 1,
            "tid": tid,
            "cat": "serve",
            "args": args,
        })
    # Metadata events name the process and label each trace's track.
    metadata: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 0,
        "args": {"name": process_name},
    }]
    for trace_id, tid in tids.items():
        metadata.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": "trace %s" % trace_id},
        })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_perfetto_json(
    path,
    records: Iterable[Dict[str, Any]],
    process_name: str = "repro.serve",
) -> int:
    """Write the Perfetto document; returns the non-metadata event count."""
    document = perfetto_trace_events(records, process_name=process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")
    return sum(1 for event in document["traceEvents"] if event["ph"] == "X")
