"""Bounded span buffer.

Finished, sampled-in spans land here.  The buffer is a ring: when
capacity is reached the oldest spans are evicted first, so a
long-running service keeps the most recent window of traces and the
memory bound is hard.  Eviction can split a trace (its earliest spans
fall out first) — consumers treat a trace with no root span as
truncated rather than erroring.

The serve stack is single-loop asyncio, so no locking is needed; the
structure is "lock-free" by confinement, not by atomics.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, List

__all__ = ["SpanBuffer"]


class SpanBuffer:
    """Bounded FIFO of finished spans with an eviction counter."""

    __slots__ = ("_spans", "dropped")

    def __init__(self, max_spans: int) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self._spans = deque(maxlen=max_spans)
        self.dropped = 0

    @property
    def max_spans(self) -> int:
        return self._spans.maxlen

    def append(self, span) -> None:
        if len(self._spans) == self._spans.maxlen:
            self.dropped += 1
        self._spans.append(span)

    def extend(self, spans: Iterable) -> None:
        for span in spans:
            self.append(span)

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator:
        return iter(self._spans)

    def snapshot(self) -> List:
        """The buffered spans, oldest first, as a plain list."""
        return list(self._spans)
