"""Hot-path kernel switches: batched delivery, LUT densities, field cache.

The simulator's wall-clock is dominated by three inner loops — offering a
frame to every receiver, evaluating a distance density over every grid
cell, and recomputing identical constraint fields for every robot that
heard the same beacon.  Each loop has a *kernel*: a vectorized/cached
implementation that produces the same results as the straightforward one.

:class:`KernelConfig` selects which kernels a run uses.  The contract per
kernel:

- ``batched_delivery`` (:meth:`~repro.net.channel.BroadcastChannel`),
  ``constraint_cache`` (:class:`~repro.core.constraint_cache.ConstraintFieldCache`),
  ``pose_memo``, and the engine-core kernels ``time_wheel``,
  ``coalesced_delivery``, and ``soa_state`` are **bit-identical** to the
  scalar paths: same RNG stream consumption, same float operations,
  byte-equal results.  The regression suite enforces this.
- ``lut_pdf`` (:class:`~repro.core.pdf_table.PdfTable`) quantizes the
  distance axis, so it is *tolerance-identical*: per-figure metrics stay
  within 0.1 % relative of the exact path (pinned by a test).  Runs that
  need byte-equality against historical results disable it.

The kernel selection deliberately lives **outside**
:class:`~repro.core.config.CoCoAConfig`: like telemetry, kernels never
change what a scenario *is*, so they must not change orchestrator cache
fingerprints.  Resolution order for a run's kernels:

1. an explicit ``kernels=`` argument to :class:`~repro.core.team.CoCoATeam`,
2. a process-local override installed with :func:`use_kernels` /
   :func:`set_default_kernels` (tests, benchmarks),
3. the ``REPRO_KERNELS`` environment variable (``on`` / ``off`` /
   ``bitexact``), which also reaches process-pool workers because
   children inherit the environment,
4. :data:`KERNELS_ON` (the default: everything enabled).

``bitexact`` selects :data:`KERNELS_BITEXACT` — every bit-identical
kernel on, the tolerance-identical LUT off — for runs that want the
speed but must stay byte-equal to the reference paths.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "KernelConfig",
    "KERNELS_ON",
    "KERNELS_OFF",
    "KERNELS_BITEXACT",
    "default_kernels",
    "resolve_kernels",
    "set_default_kernels",
    "use_kernels",
]

#: Environment variable consulted when no explicit/process-local override
#: is installed.  ``off`` selects :data:`KERNELS_OFF`, ``bitexact``
#: selects :data:`KERNELS_BITEXACT`; anything else (or unset) selects
#: :data:`KERNELS_ON`.
KERNELS_ENV_VAR = "REPRO_KERNELS"


@dataclass(frozen=True)
class KernelConfig:
    """Which hot-path kernels a run uses.

    Attributes:
        batched_delivery: vectorize per-frame receiver delivery in
            :class:`~repro.net.channel.BroadcastChannel` (bit-identical).
        lut_pdf: evaluate RSSI-bin densities through a precomputed
            distance lookup table (tolerance-identical; < 0.1 % on
            figure metrics).
        lut_entries: LUT resolution (nodes over twice the table support).
        constraint_cache: share per-beacon constraint fields between
            robots with identical grids (bit-identical).
        cache_capacity: LRU capacity, in constraint fields, of the
            shared cache.
        pose_memo: memoize each robot's last computed pose, so the
            several subsystems that query the same robot at the same
            instant within one event reuse it (bit-identical: a pose is
            a pure function of the query time once the trajectory legs
            are drawn, and repeat same-time queries draw no randomness).
        time_wheel: back the event queue with the slotted time wheel in
            :class:`~repro.sim.engine.Simulator` instead of a single
            binary heap (bit-identical: pops merge the active slot and
            the heap by the exact ``(time, seq)`` key, so the firing
            sequence is unchanged — a property test pins this).
        coalesced_delivery: end all receptions of a frame inside the
            frame's own delivery event instead of scheduling one rx-end
            event per receiver (bit-identical: radios leave RX at the
            same instants in the same order, with the same energy
            billing, but ~80 % of the engine's events disappear).
        soa_state: mirror node kinematics and radio power state into
            shared structure-of-arrays blocks
            (:class:`~repro.sim.world.WorldState`) so the channel and
            the metric sampler evaluate whole-team positions in one
            vectorized pass (bit-identical: elementwise float64 leg
            interpolation matches the scalar arithmetic bit for bit,
            and distances stay scalar ``math.hypot``).
    """

    batched_delivery: bool = True
    lut_pdf: bool = True
    lut_entries: int = 16384
    constraint_cache: bool = True
    cache_capacity: int = 128
    pose_memo: bool = True
    time_wheel: bool = True
    coalesced_delivery: bool = True
    soa_state: bool = True

    def __post_init__(self) -> None:
        if self.lut_entries < 2:
            raise ValueError(
                "lut_entries must be >= 2, got %r" % self.lut_entries
            )
        if self.cache_capacity < 1:
            raise ValueError(
                "cache_capacity must be >= 1, got %r" % self.cache_capacity
            )

    @property
    def any_enabled(self) -> bool:
        """True if at least one kernel is switched on."""
        return (
            self.batched_delivery
            or self.lut_pdf
            or self.constraint_cache
            or self.pose_memo
            or self.time_wheel
            or self.coalesced_delivery
            or self.soa_state
        )


#: Every kernel enabled — the default for new runs.
KERNELS_ON = KernelConfig()
#: Every kernel disabled — the scalar reference paths, byte-equal to the
#: pre-kernel implementation.
KERNELS_OFF = KernelConfig(
    batched_delivery=False,
    lut_pdf=False,
    constraint_cache=False,
    pose_memo=False,
    time_wheel=False,
    coalesced_delivery=False,
    soa_state=False,
)
#: Every bit-identical kernel on, the tolerance-identical LUT off: runs
#: under this selection are byte-equal to :data:`KERNELS_OFF` runs.
KERNELS_BITEXACT = KernelConfig(lut_pdf=False)

_process_override: Optional[KernelConfig] = None


def default_kernels() -> KernelConfig:
    """The kernels a run gets when none are passed explicitly."""
    if _process_override is not None:
        return _process_override
    value = os.environ.get(KERNELS_ENV_VAR, "on").strip().lower()
    if value == "off":
        return KERNELS_OFF
    if value == "bitexact":
        return KERNELS_BITEXACT
    return KERNELS_ON


def resolve_kernels(kernels: Optional[KernelConfig]) -> KernelConfig:
    """Resolve an optional explicit selection against the defaults."""
    return kernels if kernels is not None else default_kernels()


def set_default_kernels(kernels: Optional[KernelConfig]) -> None:
    """Install (or with ``None`` clear) the process-local default."""
    global _process_override
    _process_override = kernels


@contextmanager
def use_kernels(kernels: Optional[KernelConfig]) -> Iterator[None]:
    """Temporarily override the process-local kernel default.

    Note: the override is process-local; sweeps fanned out over a
    process pool follow the ``REPRO_KERNELS`` environment variable
    instead.
    """
    global _process_override
    previous = _process_override
    _process_override = kernels
    try:
        yield
    finally:
        _process_override = previous
