"""Runtime async sanitizer: blocked-loop and lost-task detection.

The ASY rules (:mod:`repro.lint.asyncrules`) prove what they can see in
the AST; this module catches what only shows up at runtime.  It runs
code under asyncio **debug mode** with a configurable slow-callback
threshold and converts the loop's own diagnostics into the same
:class:`~repro.lint.findings.Finding` records the static linter emits:

- ``SAN001`` — "Executing <Handle ...> took N seconds": a callback
  (or the synchronous section of a coroutine step) blocked the event
  loop past the threshold, stalling every other task on it.
- ``SAN002`` — "Task was destroyed but it is pending!": a task handle
  was dropped and garbage-collected mid-flight; its exceptions (and
  its work) are gone.  The runtime twin of ASY002.
- ``SAN003`` — "Task exception was never retrieved": a task failed and
  nobody awaited it, so the traceback surfaced only at GC time.

Two entry points:

- :func:`loop_sanitizer` — a context manager installing an event-loop
  policy whose loops run in debug mode, plus a handler on the
  ``asyncio`` logger collecting findings.  The pytest hook in
  ``tests/conftest.py`` wraps every test in it when
  ``REPRO_ASYNC_SANITIZE=1`` and fails tests that produced findings.
- :func:`run_gate` — the ``repro lint --sanitize`` surface: re-runs
  the serve/chaos suites in a child pytest with the sanitizer armed
  and writes a JSON findings artifact in the same schema as
  ``repro lint --json`` (:data:`repro.lint.runner.FINDINGS_SCHEMA`),
  so CI can diff the two with one tool.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import re
import subprocess
import sys
from typing import List, Optional, Sequence

from repro.lint.findings import Finding

__all__ = [
    "DEFAULT_SLOW_CALLBACK_S",
    "DEFAULT_SUITES",
    "ENV_ENABLE",
    "ENV_OUT",
    "ENV_THRESHOLD_MS",
    "SANITIZER_CODES",
    "LoopSanitizer",
    "loop_sanitizer",
    "run_gate",
    "threshold_from_env",
]

SLOW_CALLBACK_CODE = "SAN001"
PENDING_TASK_CODE = "SAN002"
UNRETRIEVED_EXC_CODE = "SAN003"

#: Runtime-only codes: not AST rules (nothing to ``--select``), but they
#: share the finding schema and appear in ``--list-rules`` output.
SANITIZER_CODES = {
    SLOW_CALLBACK_CODE: (
        "a callback blocked the event loop past the slow-callback "
        "threshold (runtime twin of ASY001)"
    ),
    PENDING_TASK_CODE: (
        "a task was destroyed while still pending; its work and "
        "exceptions are lost (runtime twin of ASY002)"
    ),
    UNRETRIEVED_EXC_CODE: (
        "a task exception was never retrieved; the failure surfaced "
        "only at garbage collection"
    ),
}

DEFAULT_SLOW_CALLBACK_S = 0.25

#: Environment contract between ``run_gate`` (parent) and the pytest
#: hook in tests/conftest.py (child process).
ENV_ENABLE = "REPRO_ASYNC_SANITIZE"
ENV_THRESHOLD_MS = "REPRO_SLOW_CALLBACK_MS"
ENV_OUT = "REPRO_SANITIZE_OUT"

#: The asyncio suites the ``--sanitize`` gate runs (service, crash
#: recovery, chaos, replay determinism, and the obs layer they report
#: through).
DEFAULT_SUITES = (
    "tests/test_serve.py",
    "tests/test_serve_durability.py",
    "tests/test_serve_chaos.py",
    "tests/test_serve_replay.py",
    "tests/test_obs.py",
)

_EXECUTING_RE = re.compile(
    r"Executing <(?P<what>.+?)> took (?P<seconds>[\d.]+) seconds"
)
_CREATED_AT_RE = re.compile(r"created at (?P<path>[^\s:]+):(?P<line>\d+)")


def threshold_from_env() -> float:
    """Slow-callback threshold in seconds, from the env contract."""
    raw = os.environ.get(ENV_THRESHOLD_MS)
    if not raw:
        return DEFAULT_SLOW_CALLBACK_S
    try:
        return max(float(raw) / 1000.0, 0.001)
    except ValueError:
        return DEFAULT_SLOW_CALLBACK_S


def _source_anchor(message: str) -> tuple:
    """(path, line) a diagnostic points at, or a runtime placeholder.

    Debug-mode handle/task reprs carry ``created at file:line``; when
    present the finding anchors there (and the path is relativized so
    artifacts diff across machines).
    """
    match = _CREATED_AT_RE.search(message)
    if match is None:
        return "<event-loop>", 0
    path = match.group("path").replace("\\", "/")
    try:
        rel = os.path.relpath(path)
    except ValueError:
        rel = path
    if not rel.startswith(".."):
        path = rel.replace("\\", "/")
    return path, int(match.group("line"))


class _AsyncioLogHandler(logging.Handler):
    """Collects the asyncio logger's diagnostics as findings."""

    def __init__(self, sanitizer: "LoopSanitizer") -> None:
        super().__init__(level=logging.WARNING)
        self._sanitizer = sanitizer

    def emit(self, record: logging.LogRecord) -> None:
        message = record.getMessage()
        executing = _EXECUTING_RE.search(message)
        if executing is not None:
            path, line = _source_anchor(message)
            self._sanitizer._add(Finding(
                path=path, line=line, col=0, code=SLOW_CALLBACK_CODE,
                message=(
                    "event loop blocked for %ss (threshold %.3fs) "
                    "executing %s" % (
                        executing.group("seconds"),
                        self._sanitizer.slow_callback_s,
                        executing.group("what").split(" created at")[0],
                    )
                ),
            ))
            return
        if "Task was destroyed but it is pending" in message:
            path, line = _source_anchor(message)
            self._sanitizer._add(Finding(
                path=path, line=line, col=0, code=PENDING_TASK_CODE,
                message="task destroyed while pending: %s"
                        % _task_label(message),
            ))
            return
        if "exception was never retrieved" in message:
            path, line = _source_anchor(message)
            self._sanitizer._add(Finding(
                path=path, line=line, col=0, code=UNRETRIEVED_EXC_CODE,
                message="task exception was never retrieved: %s"
                        % _task_label(message),
            ))


def _task_label(message: str) -> str:
    """A compact, stable label for the task named in a diagnostic."""
    match = re.search(r"name=(?P<name>'[^']*'|[^\s>]+)", message)
    if match is not None:
        return match.group("name").strip("'")
    coro = re.search(r"coro=<(?P<coro>[^\s>]+)", message)
    if coro is not None:
        return coro.group("coro")
    return "<task>"


class _SanitizedPolicy(asyncio.DefaultEventLoopPolicy):
    """Event-loop policy whose loops run in debug mode with the
    sanitizer's slow-callback threshold."""

    def __init__(self, slow_callback_s: float) -> None:
        super().__init__()
        self._slow_callback_s = slow_callback_s

    def new_event_loop(self):
        loop = super().new_event_loop()
        loop.set_debug(True)
        loop.slow_callback_duration = self._slow_callback_s
        return loop


class LoopSanitizer:
    """Armed sanitizer state: install/uninstall plus the finding list."""

    def __init__(
        self, slow_callback_s: float = DEFAULT_SLOW_CALLBACK_S
    ) -> None:
        self.slow_callback_s = slow_callback_s
        self.findings: List[Finding] = []
        self._handler = _AsyncioLogHandler(self)
        self._previous_policy = None
        self._logger = logging.getLogger("asyncio")
        self._previous_level: Optional[int] = None

    def _add(self, finding: Finding) -> None:
        self.findings.append(finding)
        out_path = os.environ.get(ENV_OUT)
        if out_path:
            # Append-as-you-go so findings survive even if the test
            # process dies before teardown.
            with open(out_path, "a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(finding.to_dict(), sort_keys=True) + "\n"
                )

    def install(self) -> None:
        self._previous_policy = asyncio.get_event_loop_policy()
        asyncio.set_event_loop_policy(
            _SanitizedPolicy(self.slow_callback_s)
        )
        self._previous_level = self._logger.level
        if self._logger.level > logging.WARNING or self._logger.level == 0:
            self._logger.setLevel(logging.WARNING)
        self._logger.addHandler(self._handler)

    def uninstall(self) -> None:
        self._logger.removeHandler(self._handler)
        if self._previous_level is not None:
            self._logger.setLevel(self._previous_level)
        if self._previous_policy is not None:
            asyncio.set_event_loop_policy(self._previous_policy)

    def __enter__(self) -> "LoopSanitizer":
        self.install()
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstall()


def loop_sanitizer(
    slow_callback_s: float = DEFAULT_SLOW_CALLBACK_S,
) -> LoopSanitizer:
    """Context manager arming the sanitizer for a ``with`` block."""
    return LoopSanitizer(slow_callback_s=slow_callback_s)


def _read_findings_jsonl(path: str) -> List[Finding]:
    findings: List[Finding] = []
    if not os.path.exists(path):
        return findings
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            findings.append(Finding(
                path=raw["path"], line=raw["line"], col=raw["col"],
                code=raw["code"], message=raw["message"],
            ))
    return findings


def run_gate(
    suites: Sequence[str] = DEFAULT_SUITES,
    slow_callback_ms: Optional[float] = None,
    json_out: Optional[str] = None,
    out=None,
) -> int:
    """Run the asyncio suites under the sanitizer; 0 clean, 1 dirty.

    Spawns a child pytest with the env contract armed (the conftest
    hook does the per-test install), collects the findings it streamed
    to a JSONL side channel, and writes the shared-schema JSON payload
    to ``json_out`` for the CI artifact.
    """
    from repro.lint.runner import findings_payload

    out = out if out is not None else sys.stdout
    threshold_ms = (
        slow_callback_ms
        if slow_callback_ms is not None
        else DEFAULT_SLOW_CALLBACK_S * 1000.0
    )
    stream_path = (json_out or "sanitize-findings.json") + ".jsonl"
    if os.path.exists(stream_path):
        os.remove(stream_path)
    env = dict(os.environ)
    env[ENV_ENABLE] = "1"
    env[ENV_THRESHOLD_MS] = "%g" % threshold_ms
    env[ENV_OUT] = stream_path
    env.setdefault("PYTHONPATH", "src")
    missing = [s for s in suites if not os.path.exists(s)]
    if missing:
        print("sanitize: missing suites: %s" % ", ".join(missing),
              file=out)
        return 1
    command = [sys.executable, "-m", "pytest", "-q"] + list(suites)
    print("sanitize: running %s (slow-callback %.0fms)"
          % (" ".join(suites), threshold_ms), file=out)
    proc = subprocess.run(command, env=env)
    findings = _read_findings_jsonl(stream_path)
    if os.path.exists(stream_path):
        os.remove(stream_path)
    payload = findings_payload(findings, tool="sanitize")
    payload.update({
        "suites": list(suites),
        "slow_callback_ms": threshold_ms,
        "pytest_exit": proc.returncode,
    })
    if json_out is not None:
        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    for finding in findings:
        print(finding.format(), file=out)
    clean = proc.returncode == 0 and not findings
    print("sanitize: %s (pytest exit %d, %d finding%s)"
          % ("clean" if clean else "dirty", proc.returncode,
             len(findings), "" if len(findings) == 1 else "s"),
          file=out)
    return 0 if clean else 1
