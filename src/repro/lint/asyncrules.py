"""Async-safety rules ASY001-ASY006: the serve concurrency contract.

The asyncio service layer (``repro.serve``, ``repro.obs``) rests on
invariants the determinism family (REP001-REP008) never looks at:

- ASY001: a coroutine must never block the event loop.  A stray
  ``time.sleep``, synchronous file/socket I/O, or subprocess call inside
  an ``async def`` stalls *every* shard worker sharing the loop and
  silently destroys the tail latencies BENCH_serve.json tracks.
  Deliberate offload points hand the callable to a worker thread
  (``await asyncio.to_thread(fn, ...)`` — legal because ``fn`` is
  passed by reference, never called on the loop) or carry a justified
  ``# repro: noqa[ASY001]``.
- ASY002: a spawned task or coroutine whose result is neither awaited,
  gathered, nor retained loses its exceptions: asyncio only keeps a
  weak reference to tasks, so a dropped ``create_task`` handle can be
  garbage-collected mid-flight and its traceback evaporates.
- ASY003: ``await`` while holding a synchronous ``threading`` lock
  parks the coroutine with the lock held; any other thread (or, after
  a reentrant call, the loop itself) that wants the lock deadlocks.
- ASY004: module-global mutable state written from function scope in
  the serve/obs packages bypasses the asyncio-queue shard boundary
  that makes concurrent workers safe; shared state must ride the queue
  or live on the owning object.
- ASY005: host timers (``time.monotonic`` &c.) called in ``repro.serve``
  break replay determinism and hide latency from the injectable clocks;
  serve code takes a ``clock`` parameter instead (holding a *reference*
  like ``clock or time.monotonic`` as the production default is the
  carve-out, and ``repro.obs`` owns real-time measurement outright).
- ASY006: loop-ambient APIs (``asyncio.get_event_loop`` &c.) are
  deprecated and bind code to a magic global loop; use
  ``asyncio.get_running_loop`` inside coroutines and ``asyncio.run``
  at the edges.

See DESIGN.md, "Concurrency contract for repro.serve".
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.driver import LintContext
from repro.lint.rules import Rule, register

#: repro subpackages whose code runs inside the service event loop.
ASYNC_PACKAGES = frozenset({"serve", "obs"})

#: Resolved call origins that block the calling thread.  Inside an
#: ``async def`` that thread is the event loop.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.system", "os.popen", "os.wait", "os.waitpid",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname", "socket.gethostbyaddr",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.delete",
    "requests.head", "requests.patch", "requests.request",
    "requests.Session",
})

#: Builtins that block (file open, terminal read).
BLOCKING_BUILTINS = frozenset({"open", "input"})

#: repro-internal helpers known to hit the disk (trace exports, cache
#: writers).  Calling one from a coroutine blocks the loop exactly like
#: stdlib file I/O; offload with ``asyncio.to_thread``.
BLOCKING_INTERNAL = frozenset({
    "repro.obs.export.write_trace_jsonl",
    "repro.obs.export.write_perfetto_json",
})

#: Deliberate always-on-the-loop escape hatch: resolved origins here are
#: exempt from ASY001 everywhere.  Deliberately empty — one-off offload
#: decisions belong next to the call site as a justified
#: ``# repro: noqa[ASY001] reason``, where review can see them; add an
#: origin here only when an idiom is repo-wide.
ASY001_ALLOWLIST: frozenset = frozenset()


def _blocking_origin(node: ast.Call, ctx: LintContext) -> Optional[str]:
    """The blocking origin a call resolves to, or None if harmless."""
    resolved = ctx.resolve_name(node.func)
    if resolved is None:
        return None
    if resolved in ASY001_ALLOWLIST:
        return None
    if resolved in BLOCKING_CALLS or resolved in BLOCKING_INTERNAL:
        return resolved
    if resolved in BLOCKING_BUILTINS:
        return resolved
    return None


@register
class BlockingCallInCoroutineRule(Rule):
    """ASY001: blocking call on the event loop."""

    code = "ASY001"
    name = "blocking-in-coroutine"
    summary = (
        "blocking calls (time.sleep, sync file/socket I/O, subprocess) "
        "inside async def stall every task on the loop; offload with "
        "asyncio.to_thread or justify with a noqa"
    )

    def __init__(self) -> None:
        # name of a module-level *sync* function -> (origin, lineno) of
        # the first blocking call in its body, for one-hop propagation.
        self._sync_blockers: Dict[str, Tuple[str, int]] = {}

    def visit_Module(self, node: ast.Module, ctx: LintContext) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.FunctionDef):
                continue
            parent = ctx.parent(sub)
            if not isinstance(parent, ast.Module):
                continue
            for inner in _walk_function_body(sub):
                if isinstance(inner, ast.Call):
                    origin = _blocking_origin(inner, ctx)
                    if origin is not None:
                        self._sync_blockers[sub.name] = (
                            origin, inner.lineno
                        )
                        break

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        function = ctx.enclosing_function(node)
        if not isinstance(function, ast.AsyncFunctionDef):
            return
        origin = _blocking_origin(node, ctx)
        if origin is not None:
            ctx.report(node, self.code, (
                "%s blocks the event loop inside 'async def %s'; offload "
                "with 'await asyncio.to_thread(...)' or justify the "
                "stall with a noqa" % (origin, function.name)
            ))
            return
        # One-hop propagation: calling a same-file sync helper that
        # itself blocks (the helper's own body is not in async scope,
        # so the direct check above cannot see it).
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._sync_blockers:
            origin, lineno = self._sync_blockers[func.id]
            ctx.report(node, self.code, (
                "%s() blocks the event loop inside 'async def %s' (it "
                "calls %s at line %d); offload with "
                "'await asyncio.to_thread(%s, ...)'"
                % (func.id, function.name, origin, lineno, func.id)
            ))


@register
class DroppedAwaitableRule(Rule):
    """ASY002: coroutine/task result dropped on the floor."""

    code = "ASY002"
    name = "dropped-awaitable"
    summary = (
        "a coroutine or task whose result is neither awaited, gathered, "
        "nor retained loses its exceptions (asyncio holds tasks weakly); "
        "keep the handle or await it"
    )

    TASK_SPAWNERS = frozenset({
        "asyncio.create_task", "asyncio.ensure_future",
    })
    SPAWNER_ATTRS = frozenset({"create_task", "ensure_future"})
    AWAITABLE_FACTORIES = frozenset({
        "asyncio.gather", "asyncio.wait", "asyncio.wait_for",
        "asyncio.shield", "asyncio.sleep", "asyncio.to_thread",
        "asyncio.open_connection", "asyncio.start_server",
    })

    def __init__(self) -> None:
        self._module_coros: Set[str] = set()
        self._class_coros: Dict[ast.ClassDef, Set[str]] = {}

    def visit_Module(self, node: ast.Module, ctx: LintContext) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.AsyncFunctionDef):
                continue
            parent = ctx.parent(sub)
            if isinstance(parent, ast.Module):
                self._module_coros.add(sub.name)
            elif isinstance(parent, ast.ClassDef):
                self._class_coros.setdefault(parent, set()).add(sub.name)

    def visit_Expr(self, node: ast.Expr, ctx: LintContext) -> None:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        func = call.func
        resolved = ctx.resolve_name(func)
        if resolved in self.TASK_SPAWNERS or (
            resolved not in self.TASK_SPAWNERS
            and isinstance(func, ast.Attribute)
            and func.attr in self.SPAWNER_ATTRS
        ):
            ctx.report(call, self.code, (
                "task handle from %s is dropped; asyncio keeps tasks "
                "weakly, so the task can be garbage-collected mid-flight "
                "and its exception lost — retain the handle and await or "
                "supervise it" % (resolved or func.attr)
            ))
            return
        if resolved in self.AWAITABLE_FACTORIES:
            ctx.report(call, self.code, (
                "%s(...) result is never awaited; the awaitable is "
                "discarded before it runs" % resolved
            ))
            return
        # A bare statement-position call of a same-file coroutine
        # function: the coroutine object is created and dropped, and
        # its body never executes.
        name: Optional[str] = None
        if isinstance(func, ast.Name) and func.id in self._module_coros:
            name = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            cls = ctx.enclosing_class(node)
            if cls is not None and func.attr in self._class_coros.get(
                cls, set()
            ):
                name = func.attr
        if name is not None:
            ctx.report(call, self.code, (
                "coroutine %s(...) is never awaited; the call creates a "
                "coroutine object and drops it without running the body"
                % name
            ))


@register
class AwaitUnderSyncLockRule(Rule):
    """ASY003: await while holding a synchronous lock."""

    code = "ASY003"
    name = "await-under-sync-lock"
    summary = (
        "awaiting while holding a sync threading lock parks the "
        "coroutine with the lock held and invites deadlock; use "
        "asyncio.Lock with 'async with'"
    )

    THREAD_LOCKS = frozenset({
        "threading.Lock", "threading.RLock", "threading.Condition",
        "threading.Semaphore", "threading.BoundedSemaphore",
    })
    LOCKISH_NAMES = frozenset({"lock", "mutex"})

    def visit_With(self, node: ast.With, ctx: LintContext) -> None:
        if not isinstance(
            ctx.enclosing_function(node), ast.AsyncFunctionDef
        ):
            return
        held = None
        for item in node.items:
            held = self._lockish(item.context_expr, ctx)
            if held is not None:
                break
        if held is None:
            return
        for sub in _walk_statements(node.body):
            if isinstance(sub, ast.Await):
                ctx.report(sub, self.code, (
                    "await while holding sync lock %s; the lock stays "
                    "held across the suspension — use asyncio.Lock with "
                    "'async with' instead" % held
                ))
                return

    def _lockish(
        self, expr: ast.AST, ctx: LintContext
    ) -> Optional[str]:
        if isinstance(expr, ast.Call):
            resolved = ctx.resolve_name(expr.func)
            if resolved in self.THREAD_LOCKS:
                return resolved + "()"
            return None
        resolved = ctx.resolve_name(expr)
        if resolved is None:
            return None
        leaf = resolved.split(".")[-1].lstrip("_").lower()
        if leaf in self.LOCKISH_NAMES:
            return resolved
        return None


@register
class SharedMutableStateRule(Rule):
    """ASY004: module-global mutable state crossing the shard boundary."""

    code = "ASY004"
    name = "shared-mutable-state"
    summary = (
        "module-global mutable state written from function scope in "
        "serve/obs bypasses the asyncio-queue shard boundary; route "
        "shared state through the queue or the owning object"
    )

    MUTABLE_CALLS = frozenset({
        "list", "dict", "set", "bytearray",
        "defaultdict", "deque", "Counter", "OrderedDict",
    })
    _MUTABLE_LITERALS = (
        ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
        ast.SetComp,
    )
    MUTATORS = frozenset({
        "append", "extend", "add", "update", "insert", "pop", "popitem",
        "remove", "discard", "clear", "setdefault", "appendleft",
        "extendleft",
    })

    def visit_Module(self, node: ast.Module, ctx: LintContext) -> None:
        if not ctx.in_packages(ASYNC_PACKAGES):
            return
        shared = self._module_mutables(node)
        for sub in ast.walk(node):
            if not isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for stmt in ast.walk(sub):
                if isinstance(stmt, ast.Global):
                    ctx.report(stmt, self.code, (
                        "'global %s' rebinds module state from function "
                        "scope; shard workers run concurrently — pass "
                        "state through the shard queue or keep it on the "
                        "owning object" % ", ".join(stmt.names)
                    ))
                elif isinstance(stmt, ast.Call):
                    func = stmt.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in self.MUTATORS
                        and isinstance(func.value, ast.Name)
                        and func.value.id in shared
                    ):
                        ctx.report(stmt, self.code, (
                            "mutates module-global %r from function "
                            "scope; shared state must ride the shard "
                            "queue boundary" % func.value.id
                        ))
                elif isinstance(stmt, (ast.Assign, ast.AugAssign)):
                    targets = (
                        stmt.targets
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in shared
                        ):
                            ctx.report(stmt, self.code, (
                                "stores into module-global %r from "
                                "function scope; shared state must ride "
                                "the shard queue boundary"
                                % target.value.id
                            ))

    def _module_mutables(self, module: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for stmt in module.body:
            value = None
            targets: List[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            if value is None or not self._is_mutable(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _is_mutable(self, expr: ast.AST) -> bool:
        if isinstance(expr, self._MUTABLE_LITERALS):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            return name in self.MUTABLE_CALLS
        return False


@register
class ServeWallClockRule(Rule):
    """ASY005: host timers called in the serve tree."""

    code = "ASY005"
    name = "serve-wall-clock"
    summary = (
        "repro.serve reads time through injected clocks only (replay "
        "and chaos gates step them deterministically); host timer "
        "*calls* are banned there while repro.obs owns real-time "
        "measurement"
    )

    #: Same relative-timer set REP002 bans inside SIM_PACKAGES; ASY005
    #: tightens the package scoping to the serve tree.  Absolute
    #: timestamps are already banned everywhere by REP002.
    RELATIVE = frozenset({
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "time.localtime", "time.gmtime", "time.ctime", "time.asctime",
    })

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if not ctx.in_packages(frozenset({"serve"})):
            return
        resolved = ctx.resolve_name(node.func)
        if resolved in self.RELATIVE:
            ctx.report(node, self.code, (
                "%s called in repro.serve; read time through the "
                "injected clock (holding the function as a default "
                "reference, 'clock or time.monotonic', stays legal)"
                % resolved
            ))


@register
class LoopAmbientApiRule(Rule):
    """ASY006: deprecated loop-ambient asyncio APIs."""

    code = "ASY006"
    name = "loop-ambient-api"
    summary = (
        "asyncio.get_event_loop and friends bind code to a deprecated "
        "ambient loop; use asyncio.get_running_loop inside coroutines "
        "and asyncio.run at the edges"
    )

    BANNED = frozenset({
        "asyncio.get_event_loop", "asyncio.events.get_event_loop",
        "asyncio.get_child_watcher", "asyncio.set_child_watcher",
        "asyncio.coroutine",
    })

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        resolved = ctx.resolve_name(node.func)
        if resolved in self.BANNED:
            ctx.report(node, self.code, (
                "%s is a deprecated loop-ambient API; use "
                "asyncio.get_running_loop() inside coroutines and "
                "asyncio.run(...) at the entry points" % resolved
            ))


def _walk_function_body(function: ast.AST):
    """Walk a function body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (
            ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
        )):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _walk_statements(body):
    """Walk a statement list without descending into nested scopes."""
    stack = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (
            ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
        )):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
