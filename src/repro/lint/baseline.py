"""Committed baseline of grandfathered findings.

A baseline lets the lint gate turn on while a violation backlog still
exists: known findings are recorded once (``repro lint --write-baseline
lint-baseline.json``) and suppressed on subsequent runs, so only *new*
violations fail CI.  Keys are line-independent (path + code + message)
with an occurrence count, so unrelated edits that shift line numbers do
not invalidate entries — but any *new* instance of a baselined message
in the same file still surfaces once the count is exceeded.

The tree is currently clean, so no baseline file is committed; the
mechanism exists for future grandfathering and for downstream forks.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import LintUsageError

BASELINE_VERSION = 1


def write_baseline(path: str, findings: Sequence[Finding]) -> bool:
    """Record the given findings as the grandfathered set.

    With zero findings there is nothing to grandfather: any stale
    baseline file at ``path`` is *removed* (an empty-but-present
    baseline would silently keep suppressing nothing while looking
    load-bearing in review).  Returns True when a file was written,
    False when the clean tree left none behind.
    """
    if not findings:
        if os.path.exists(path):
            os.remove(path)
        return False
    counts = Counter(f.baseline_key for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "entries": {key: counts[key] for key in sorted(counts)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return True


def load_baseline(path: str) -> Dict[str, int]:
    """Load a baseline file; raises LintUsageError on any defect."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise LintUsageError("cannot read baseline %s: %s" % (path, exc))
    except ValueError as exc:
        raise LintUsageError("baseline %s is not JSON: %s" % (path, exc))
    if not isinstance(payload, dict) or payload.get(
        "version"
    ) != BASELINE_VERSION:
        raise LintUsageError(
            "baseline %s has unsupported format (want version %d)"
            % (path, BASELINE_VERSION)
        )
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        raise LintUsageError("baseline %s is missing 'entries'" % path)
    cleaned: Dict[str, int] = {}
    for key, count in entries.items():
        if not isinstance(key, str) or not isinstance(count, int):
            raise LintUsageError(
                "baseline %s has a malformed entry: %r" % (path, key)
            )
        cleaned[key] = count
    return cleaned


def apply_baseline(
    findings: Sequence[Finding], entries: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (surviving, number suppressed by baseline)."""
    remaining = dict(entries)
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = finding.baseline_key
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
