"""Rule framework: base class, registry, and code selection.

A rule is a class with ``visit_<NodeType>`` methods, mirroring how real
lint frameworks (pyflakes checkers, ruff plugins) structure their
checks.  Rules never traverse the tree themselves: the driver parses
each file once, walks the AST once, and dispatches every node to every
interested rule, so adding a rule never adds a parse or a traversal.

Rules register themselves with the :func:`register` decorator; the
registry maps codes (``REP001``, ``ASY001``...) to rule classes and
backs the CLI's ``--select`` / ``--ignore`` flags and ``--list-rules``
output.  Codes group into *families* by their three-letter prefix:
``REP`` is the determinism contract, ``ASY`` the async-safety contract,
and ``SAN`` the runtime sanitizer's reserved range.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Optional, Type

#: Framework-level codes that are emitted by the driver itself rather
#: than by a registered rule, but participate in select/ignore.
PARSE_ERROR_CODE = "REP000"
BAD_NOQA_CODE = "REP008"

FRAMEWORK_CODES: Dict[str, str] = {
    PARSE_ERROR_CODE: "file could not be parsed as Python",
    BAD_NOQA_CODE: (
        "a '# repro: noqa[...]' suppression is missing its justification"
    ),
}

_CODE_RE = re.compile(r"^[A-Z]{3}\d{3}$")


def code_family(code: str) -> str:
    """Three-letter family prefix of a rule code (``REP001`` -> ``REP``)."""
    return code[:3]


class LintUsageError(Exception):
    """A bad invocation: unknown code, missing path, unreadable baseline.

    Maps to exit code 2, distinct from exit code 1 (findings present).
    """


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes below and implement one or more
    ``visit_<NodeType>(self, node, ctx)`` methods, where ``<NodeType>``
    is an :mod:`ast` class name (``Call``, ``Compare``, ...) and ``ctx``
    is the per-file :class:`~repro.lint.driver.LintContext`.  Report
    violations with ``ctx.report(node, self.code, message)``.

    Rules are instantiated once per linted file, so per-file caches may
    live on ``self``.
    """

    code: str = ""
    name: str = ""
    summary: str = ""


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry."""
    if not _CODE_RE.match(cls.code):
        raise ValueError(
            "rule code must match a three-letter family plus three "
            "digits (REPnnn, ASYnnn, ...), got %r" % cls.code
        )
    if cls.code in FRAMEWORK_CODES:
        raise ValueError("code %s is reserved for the framework" % cls.code)
    if cls.code in _REGISTRY:
        raise ValueError("duplicate rule code %s" % cls.code)
    if not cls.name or not cls.summary:
        raise ValueError("rule %s needs a name and a summary" % cls.code)
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Registered rules, keyed and ordered by code."""
    return {code: _REGISTRY[code] for code in sorted(_REGISTRY)}


def known_codes() -> FrozenSet[str]:
    """Every selectable code: registered rules plus framework codes."""
    return frozenset(_REGISTRY) | frozenset(FRAMEWORK_CODES)


def parse_code_list(text: Optional[str], flag: str) -> Optional[FrozenSet[str]]:
    """Parse a ``--select`` / ``--ignore`` comma list, validating codes.

    A bare three-letter family prefix selects every known code in that
    family: ``--select ASY`` is shorthand for ``ASY001,...,ASY006``.
    """
    if text is None:
        return None
    tokens = frozenset(c.strip().upper() for c in text.split(",") if c.strip())
    if not tokens:
        raise LintUsageError("%s needs at least one code" % flag)
    codes = set()
    for token in tokens:
        if re.fullmatch(r"[A-Z]{3}", token):
            family = frozenset(
                c for c in known_codes() if code_family(c) == token
            )
            if not family:
                raise LintUsageError(
                    "unknown rule family for %s: %s" % (flag, token)
                )
            codes |= family
        else:
            codes.add(token)
    codes = frozenset(codes)
    unknown = sorted(codes - known_codes())
    if unknown:
        raise LintUsageError(
            "unknown code%s for %s: %s (known: %s)"
            % ("" if len(unknown) == 1 else "s", flag, ", ".join(unknown),
               ", ".join(sorted(known_codes())))
        )
    return codes


def selected_rules(
    select: Optional[FrozenSet[str]] = None,
    ignore: Optional[FrozenSet[str]] = None,
) -> List[Type[Rule]]:
    """Rule classes active under a select/ignore pair."""
    active = []
    for code, cls in all_rules().items():
        if select is not None and code not in select:
            continue
        if ignore is not None and code in ignore:
            continue
        active.append(cls)
    return active


def code_enabled(
    code: str,
    select: Optional[FrozenSet[str]] = None,
    ignore: Optional[FrozenSet[str]] = None,
) -> bool:
    """Is a (possibly framework-level) code active under select/ignore?"""
    if select is not None and code not in select:
        return False
    if ignore is not None and code in ignore:
        return False
    return True
