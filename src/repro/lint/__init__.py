"""repro.lint — AST-based determinism & async-safety linter.

Statically enforces the simulation contract the reproduction's results
rest on (see DESIGN.md, "Determinism contract"): seeded named RNG
streams only (REP001), no wall-clock reads in sim code (REP002), no
unsorted set iteration in result-producing code (REP003), no exact
float equality (REP004), no mutable default arguments (REP005), frozen
specs mutated only in ``__post_init__`` (REP006), and no blanket
``except`` in the engine/channel hot paths (REP007).

The ``ASY`` family enforces the serve stack's concurrency contract
(see DESIGN.md, "Concurrency contract for repro.serve"): no blocking
calls on the event loop (ASY001), no dropped task/coroutine handles
(ASY002), no ``await`` under a sync lock (ASY003), no module-global
mutable state crossing the shard queue boundary (ASY004), injected
clocks only in ``repro.serve`` (ASY005), and no deprecated
loop-ambient asyncio APIs (ASY006).  :mod:`repro.lint.sanitize` is the
runtime counterpart: ``repro lint --sanitize`` re-runs the asyncio
suites in debug mode and promotes blocked-loop / lost-task warnings
(SAN001-SAN003) to failures.

Run it as ``python -m repro lint src tests`` or programmatically::

    from repro.lint import lint_paths
    report = lint_paths(["src"])
    assert report.exit_code == 0, [f.format() for f in report.findings]

Suppress a deliberate deviation inline, justification mandatory::

    rng = random.Random(seed)  # repro: noqa[REP001] seeded backoff jitter
"""

from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.driver import FileLintResult, LintContext, lint_source
from repro.lint.findings import Finding
from repro.lint.rules import (
    BAD_NOQA_CODE,
    FRAMEWORK_CODES,
    PARSE_ERROR_CODE,
    LintUsageError,
    Rule,
    all_rules,
    code_family,
    known_codes,
    parse_code_list,
    register,
)
from repro.lint.runner import (
    FINDINGS_SCHEMA,
    LintReport,
    findings_payload,
    format_human,
    format_json,
    iter_python_files,
    lint_paths,
    lint_text,
)
from repro.lint.sanitize import (
    SANITIZER_CODES,
    LoopSanitizer,
    loop_sanitizer,
)

__all__ = [
    "BAD_NOQA_CODE",
    "FINDINGS_SCHEMA",
    "FRAMEWORK_CODES",
    "PARSE_ERROR_CODE",
    "SANITIZER_CODES",
    "FileLintResult",
    "Finding",
    "LintContext",
    "LintReport",
    "LintUsageError",
    "LoopSanitizer",
    "Rule",
    "all_rules",
    "apply_baseline",
    "code_family",
    "findings_payload",
    "format_human",
    "format_json",
    "iter_python_files",
    "known_codes",
    "lint_paths",
    "lint_source",
    "lint_text",
    "load_baseline",
    "loop_sanitizer",
    "parse_code_list",
    "register",
    "write_baseline",
]
