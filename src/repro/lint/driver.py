"""Single-parse multi-visitor lint driver.

One :func:`lint_source` call parses a file exactly once, builds one
parent map and one import table, then walks the AST exactly once,
dispatching each node to every rule that declared a ``visit_<NodeType>``
method.  Inline suppressions use::

    risky_call()  # repro: noqa[REP001] one-line justification

or, when the line has no room (or the statement spans lines), a
standalone comment applying to the line directly below it::

    # repro: noqa[REP001] one-line justification
    risky_call()

The justification is mandatory: a bare ``# repro: noqa[REP001]`` does
*not* suppress and additionally raises :data:`~repro.lint.rules.BAD_NOQA_CODE`,
so every deviation from the determinism contract is documented at the
offending line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.lint.findings import Finding
from repro.lint.rules import BAD_NOQA_CODE, PARSE_ERROR_CODE, Rule

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]([^\r\n]*)"
)

#: Path components marking the sim-facing packages whose code runs under
#: simulated time (REP002/REP003 scope).
SIM_PACKAGES = frozenset(
    {"core", "sim", "net", "multicast", "mobility", "energy", "faults"}
)

_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _parts_after_repro(path: str) -> Optional[Tuple[str, ...]]:
    """Path components after the last ``repro`` package directory.

    ``src/repro/core/config.py`` -> ``("core", "config.py")``;
    ``tests/test_x.py`` -> ``None`` (not inside the package).
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return tuple(parts[index + 1:])
    return None


def _collect_imports(tree: ast.AST) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Map local names to the modules / objects they are bound to.

    Returns ``(modules, names)`` where ``modules`` maps an alias to a
    dotted module path (``np`` -> ``numpy``) and ``names`` maps a
    from-imported name to its dotted origin (``randint`` ->
    ``random.randint``).
    """
    modules: Dict[str, str] = {}
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    modules[alias.asname] = alias.name
                else:
                    # ``import numpy.random`` binds the name ``numpy``.
                    top = alias.name.split(".")[0]
                    modules[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never alias stdlib modules
            for alias in node.names:
                local = alias.asname or alias.name
                names[local] = "%s.%s" % (node.module, alias.name)
    return modules, names


@dataclass
class _Suppression:
    codes: Tuple[str, ...]
    justified: bool
    col: int
    comment_line: int


def _scan_noqa(lines: Sequence[str]) -> Dict[int, _Suppression]:
    """Find ``# repro: noqa[...]`` comments, keyed by the 1-based line
    they suppress.

    An inline comment suppresses its own line; a comment that is alone
    on its line suppresses the line directly below it.
    """
    found: Dict[int, _Suppression] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = tuple(
            c.strip().upper() for c in match.group(1).split(",") if c.strip()
        )
        justification = match.group(2).strip()
        standalone = not line[:match.start()].strip()
        found[lineno + 1 if standalone else lineno] = _Suppression(
            codes=codes,
            justified=bool(justification),
            col=match.start(),
            comment_line=lineno,
        )
    return found


class LintContext:
    """Per-file state shared by every rule.

    Exposes the parsed tree, a parent map (rules often need *where* a
    node sits: inside ``__post_init__``, as a call argument, ...), the
    file's import table, and package-scope predicates derived from the
    path.
    """

    def __init__(self, path: str, text: str, tree: ast.AST) -> None:
        self.path = path.replace("\\", "/")
        self.lines = text.splitlines()
        self.tree = tree
        self.rel_parts = _parts_after_repro(self.path)
        self.modules, self.names = _collect_imports(tree)
        self.findings: List[Finding] = []
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- reporting ----------------------------------------------------

    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        ))

    # -- tree navigation ----------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """Nearest enclosing function/lambda, or None at module level."""
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, _SCOPE_TYPES):
                return current
            current = self._parents.get(current)
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = self._parents.get(current)
        return None

    # -- name resolution ----------------------------------------------

    def resolve_name(self, expr: ast.AST) -> Optional[str]:
        """Dotted origin of a name or attribute chain, or None.

        Follows the file's imports: with ``import numpy as np``,
        ``np.random.seed`` resolves to ``"numpy.random.seed"``; with
        ``from random import randint``, ``randint`` resolves to
        ``"random.randint"``.  Unimported bare names resolve to
        themselves (``object.__setattr__`` -> ``"object.__setattr__"``).
        """
        chain: List[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.reverse()
        base = node.id
        origin = self.modules.get(base) or self.names.get(base) or base
        return ".".join([origin] + chain)

    # -- path scoping -------------------------------------------------

    def in_repro_package(self) -> bool:
        return self.rel_parts is not None

    def in_packages(self, packages) -> bool:
        """Is this file inside one of the named repro subpackages?"""
        return (
            self.rel_parts is not None
            and len(self.rel_parts) > 1
            and self.rel_parts[0] in packages
        )

    def is_module(self, *parts: str) -> bool:
        """Exact match on the path relative to the repro package root."""
        return self.rel_parts == parts


@dataclass
class FileLintResult:
    """Findings of one file plus suppression accounting."""

    findings: List[Finding]
    noqa_suppressed: int = 0


def _build_dispatch(
    rule_classes: Sequence[Type[Rule]],
) -> Dict[str, List[Tuple[Rule, str]]]:
    dispatch: Dict[str, List[Tuple[Rule, str]]] = {}
    for cls in rule_classes:
        rule = cls()
        for attr in dir(rule):
            if attr.startswith("visit_"):
                dispatch.setdefault(attr[len("visit_"):], []).append(
                    (rule, attr)
                )
    return dispatch


def lint_source(
    text: str,
    path: str,
    rule_classes: Sequence[Type[Rule]],
) -> FileLintResult:
    """Lint one file's source text with the given rules."""
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        finding = Finding(
            path=path.replace("\\", "/"),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code=PARSE_ERROR_CODE,
            message="syntax error: %s" % (exc.msg or "invalid syntax"),
        )
        return FileLintResult(findings=[finding])

    ctx = LintContext(path, text, tree)
    dispatch = _build_dispatch(rule_classes)
    if dispatch:
        for node in ast.walk(tree):
            handlers = dispatch.get(type(node).__name__)
            if not handlers:
                continue
            for rule, attr in handlers:
                getattr(rule, attr)(node, ctx)

    suppressions = _scan_noqa(ctx.lines)
    kept: List[Finding] = []
    suppressed = 0
    for finding in sorted(ctx.findings):
        entry = suppressions.get(finding.line)
        if (
            entry is not None
            and entry.justified
            and finding.code in entry.codes
        ):
            suppressed += 1
            continue
        kept.append(finding)
    for lineno in sorted(suppressions):
        entry = suppressions[lineno]
        if not entry.justified:
            kept.append(Finding(
                path=ctx.path,
                line=entry.comment_line,
                col=entry.col,
                code=BAD_NOQA_CODE,
                message=(
                    "suppression without justification: follow "
                    "'# repro: noqa[%s]' with a one-line reason"
                    % ",".join(entry.codes)
                ),
            ))
    kept.sort()
    return FileLintResult(findings=kept, noqa_suppressed=suppressed)
