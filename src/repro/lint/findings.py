"""Finding records produced by the determinism linter.

A :class:`Finding` is one rule violation anchored to a source location.
Findings sort by (path, line, col, code) so output is stable regardless
of rule execution order, and they serialize to plain dicts for the
``--json`` output mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes:
        path: the file, normalized to forward slashes.
        line: 1-based source line of the offending node.
        col: 0-based column of the offending node.
        code: the rule code, e.g. ``"REP001"``.
        message: human-readable explanation of the violation.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render ``path:line:col: CODE message`` (1-based column)."""
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col + 1, self.code, self.message
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    @property
    def baseline_key(self) -> str:
        """Line-independent identity used by the baseline file.

        Deliberately excludes the line number so that unrelated edits
        moving a grandfathered finding up or down do not invalidate the
        baseline entry.
        """
        return "%s::%s::%s" % (self.path, self.code, self.message)
