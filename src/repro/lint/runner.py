"""File discovery, lint orchestration, and output formatting.

``lint_paths`` is the programmatic equivalent of ``repro lint``: it
expands files/directories, lints every ``.py`` file once, applies the
optional baseline, and returns a :class:`LintReport` whose
``exit_code`` is suitable for CI (0 clean, 1 findings; usage errors
raise :class:`~repro.lint.rules.LintUsageError`, which the CLI maps to
exit code 2).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.lint import asyncrules  # noqa: F401  (registers ASY001-ASY006)
from repro.lint import domain  # noqa: F401  (registers REP001-REP007)
from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.driver import FileLintResult, lint_source
from repro.lint.findings import Finding
from repro.lint.rules import (
    LintUsageError,
    code_enabled,
    code_family,
    selected_rules,
)

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".repro_cache"})

#: Version tag of the JSON finding payload shared by ``repro lint
#: --json`` and the runtime sanitizer, so CI artifacts from both tools
#: are diffable with the same machinery.
FINDINGS_SCHEMA = "repro-findings/1"


def findings_payload(
    findings: Sequence[Finding], tool: str
) -> Dict[str, object]:
    """The schema-stable core shared by lint and sanitizer output."""
    by_code: Dict[str, int] = {}
    by_family: Dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
        family = code_family(finding.code)
        by_family[family] = by_family.get(family, 0) + 1
    return {
        "schema": FINDINGS_SCHEMA,
        "tool": tool,
        "findings": [f.to_dict() for f in sorted(findings)],
        "counts_by_code": {c: by_code[c] for c in sorted(by_code)},
        "counts_by_family": {f: by_family[f] for f in sorted(by_family)},
        "clean": not findings,
    }


@dataclass
class LintReport:
    """Outcome of one lint invocation."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    noqa_suppressed: int = 0
    baseline_suppressed: int = 0
    elapsed_s: float = 0.0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> Dict[str, object]:
        payload = findings_payload(self.findings, tool="lint")
        payload.update({
            "files_scanned": self.files_scanned,
            "suppressed": {
                "noqa": self.noqa_suppressed,
                "baseline": self.baseline_suppressed,
            },
            "elapsed_s": round(self.elapsed_s, 3),
        })
        return payload


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    if not paths:
        raise LintUsageError("no paths given")
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in _SKIP_DIRS and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            raise LintUsageError("no such file or directory: %s" % path)
    # De-duplicate while keeping deterministic order.
    seen = set()
    unique = []
    for name in sorted(files):
        if name not in seen:
            seen.add(name)
            unique.append(name)
    return unique


def lint_text(
    text: str,
    path: str,
    select: Optional[FrozenSet[str]] = None,
    ignore: Optional[FrozenSet[str]] = None,
) -> FileLintResult:
    """Lint one source string under a virtual path (testing seam)."""
    result = lint_source(text, path, selected_rules(select, ignore))
    result.findings = [
        f for f in result.findings if code_enabled(f.code, select, ignore)
    ]
    return result


def lint_paths(
    paths: Sequence[str],
    select: Optional[FrozenSet[str]] = None,
    ignore: Optional[FrozenSet[str]] = None,
    baseline_path: Optional[str] = None,
) -> LintReport:
    """Lint files/directories and return the aggregate report."""
    start = time.perf_counter()
    report = LintReport()
    findings: List[Finding] = []
    for filename in iter_python_files(paths):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise LintUsageError("cannot read %s: %s" % (filename, exc))
        result = lint_text(text, filename, select=select, ignore=ignore)
        findings.extend(result.findings)
        report.noqa_suppressed += result.noqa_suppressed
        report.files_scanned += 1
    if baseline_path is not None:
        entries = load_baseline(baseline_path)
        findings, report.baseline_suppressed = apply_baseline(
            findings, entries
        )
    report.findings = sorted(findings)
    report.elapsed_s = time.perf_counter() - start
    return report


def format_human(report: LintReport) -> str:
    """Render findings plus a one-line summary, pyflakes-style."""
    lines = [finding.format() for finding in report.findings]
    if report.findings:
        families: Dict[str, int] = {}
        for finding in report.findings:
            family = code_family(finding.code)
            families[family] = families.get(family, 0) + 1
        lines.append(
            "findings by family: "
            + ", ".join(
                "%s %d" % (family, families[family])
                for family in sorted(families)
            )
        )
    suppressed_bits = []
    if report.noqa_suppressed:
        suppressed_bits.append("%d noqa" % report.noqa_suppressed)
    if report.baseline_suppressed:
        suppressed_bits.append("%d baselined" % report.baseline_suppressed)
    suffix = (
        " (%s suppressed)" % ", ".join(suppressed_bits)
        if suppressed_bits else ""
    )
    lines.append(
        "checked %d file%s in %.2fs: %s%s"
        % (
            report.files_scanned,
            "" if report.files_scanned == 1 else "s",
            report.elapsed_s,
            "clean"
            if not report.findings
            else "%d finding%s" % (
                len(report.findings),
                "" if len(report.findings) == 1 else "s",
            ),
            suffix,
        )
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
