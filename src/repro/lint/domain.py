"""Domain rules REP001-REP007: the simulation determinism contract.

Every rule encodes one invariant the reproduction's results rest on:

- REP001: all randomness derives from a job's ``master_seed`` through
  named :class:`~repro.sim.rng.RandomStreams` streams — never the
  process-global ``random`` module or numpy's legacy global RNG.
- REP002: simulation code reads simulated time from the engine clock,
  never the wall clock.  Absolute wall-clock timestamps (``time.time``,
  ``datetime.now``) are banned everywhere because they leak
  nondeterminism into artifacts (cache manifests, reports); relative
  timers (``perf_counter`` &c.) are additionally banned inside the
  sim-facing packages.
- REP003: iterating a set produces a hash-order sequence (randomized
  per process for strings via ``PYTHONHASHSEED``), so result-producing
  sim code must wrap set-typed iterables in ``sorted(...)``.  CPython
  dict views are insertion-ordered and therefore allowed.
- REP004: exact float ``==`` / ``!=`` is brittle across refactors and
  platforms; use ``math.isclose`` or an explicit tolerance.  Exact
  sentinel checks (``x == 0.0`` guarding a division) stay legal via a
  justified ``# repro: noqa[REP004]``.
- REP005: mutable default arguments alias state across calls — and
  across *runs* within one process, breaking run independence.
- REP006: ``object.__setattr__`` on frozen spec dataclasses outside
  ``__post_init__`` mutates objects whose content hash may already be
  part of the orchestrator's cache key.
- REP007: bare / overbroad ``except`` in the engine and channel hot
  paths can swallow the very errors the determinism tests exist to
  surface.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from repro.lint.driver import SIM_PACKAGES, LintContext
from repro.lint.rules import Rule, register

_SET_ANNOTATION_NAMES = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet",
})


@register
class GlobalRngRule(Rule):
    """REP001: randomness outside the named-stream discipline."""

    code = "REP001"
    name = "global-rng"
    summary = (
        "randomness must come from named RandomStreams streams "
        "(sim/rng.py), not the process-global random module or "
        "numpy's legacy global RNG"
    )

    #: numpy.random attributes that hit the legacy global RandomState or
    #: construct one.  The modern explicit API (default_rng, Generator,
    #: PCG64, SeedSequence, ...) is allowed.
    NUMPY_LEGACY = frozenset({
        "RandomState", "seed", "get_state", "set_state", "bytes",
        "random", "rand", "randn", "randint", "random_integers",
        "random_sample", "ranf", "sample", "choice", "shuffle",
        "permutation", "uniform", "normal", "standard_normal",
        "exponential", "poisson", "binomial", "negative_binomial",
        "beta", "gamma", "standard_gamma", "lognormal", "geometric",
        "triangular", "vonmises", "weibull", "pareto", "rayleigh",
        "laplace", "logistic", "gumbel", "wald", "zipf", "power",
        "multinomial", "multivariate_normal", "dirichlet", "chisquare",
        "noncentral_chisquare", "f", "noncentral_f", "standard_cauchy",
        "standard_exponential", "standard_t", "hypergeometric",
        "logseries",
    })

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if ctx.is_module("sim", "rng.py"):
            return  # the one module allowed to construct streams
        resolved = ctx.resolve_name(node.func)
        if resolved is None:
            return
        if resolved.startswith("random."):
            ctx.report(node, self.code, (
                "%s draws from the process-global random module; derive "
                "randomness from a named RandomStreams stream instead "
                "(a deliberately seeded instance needs a justified noqa)"
                % resolved
            ))
        elif resolved.startswith("numpy.random."):
            leaf = resolved[len("numpy.random."):]
            if leaf in self.NUMPY_LEGACY:
                ctx.report(node, self.code, (
                    "%s uses numpy's legacy global RNG API; use the "
                    "generator returned by RandomStreams.get(...) "
                    "(or numpy.random.default_rng with an explicit seed)"
                    % resolved
                ))


@register
class WallClockRule(Rule):
    """REP002: wall-clock reads where simulated time is required."""

    code = "REP002"
    name = "wall-clock"
    summary = (
        "sim-facing code must read simulated time from the engine, "
        "never the wall clock; absolute timestamps are banned everywhere"
    )

    #: Absolute timestamps: nondeterministic in any artifact, anywhere.
    ABSOLUTE = frozenset({
        "time.time", "time.time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })
    #: Relative/process timers: legitimate for orchestration wall-time
    #: accounting, but meaningless (and nondeterministic) in sim code.
    RELATIVE = frozenset({
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "time.localtime", "time.gmtime", "time.ctime", "time.asctime",
    })

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        resolved = ctx.resolve_name(node.func)
        if resolved is None:
            return
        if resolved in self.ABSOLUTE:
            ctx.report(node, self.code, (
                "%s reads the wall clock; results and artifacts must be "
                "reproducible from the master seed alone (wall-clock "
                "metadata needs a justified noqa)" % resolved
            ))
        elif resolved in self.RELATIVE and ctx.in_packages(SIM_PACKAGES):
            ctx.report(node, self.code, (
                "%s reads host time inside a sim-facing package; use the "
                "engine's simulated clock" % resolved
            ))


@register
class UnsortedSetIterationRule(Rule):
    """REP003: hash-ordered iteration reaching simulation results."""

    code = "REP003"
    name = "unsorted-set-iteration"
    summary = (
        "sim code must not iterate set-typed expressions without "
        "sorted(...): set order is hash order, randomized for strings"
    )

    #: Consumers whose result does not depend on element order, so a
    #: set argument is fine.  ``sum`` is deliberately absent: float
    #: addition is not associative, so even ``sum`` over a set is
    #: order-sensitive at the bit level.
    ORDER_INSENSITIVE = frozenset({
        "sorted", "set", "frozenset", "min", "max", "any", "all", "len",
    })
    SET_METHODS = frozenset({
        "union", "intersection", "difference", "symmetric_difference",
        "copy",
    })
    _SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

    def __init__(self) -> None:
        self._scope_names: Dict[ast.AST, Set[str]] = {}
        self._class_attrs: Dict[ast.ClassDef, Set[str]] = {}

    # -- visitors -----------------------------------------------------

    def visit_For(self, node: ast.For, ctx: LintContext) -> None:
        self._check_iter(node.iter, ctx)

    def visit_ListComp(self, node: ast.ListComp, ctx: LintContext) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter, ctx)

    def visit_DictComp(self, node: ast.DictComp, ctx: LintContext) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter, ctx)

    def visit_GeneratorExp(
        self, node: ast.GeneratorExp, ctx: LintContext
    ) -> None:
        parent = ctx.parent(node)
        if isinstance(parent, ast.Call) and node in parent.args:
            func = parent.func
            if (
                isinstance(func, ast.Name)
                and func.id in self.ORDER_INSENSITIVE
            ):
                return
        for gen in node.generators:
            self._check_iter(gen.iter, ctx)

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        # list(s) / tuple(s) materialize hash order; ''.join(s) too.
        func = node.func
        ordered = (
            isinstance(func, ast.Name) and func.id in ("list", "tuple")
        ) or (isinstance(func, ast.Attribute) and func.attr == "join")
        if ordered and len(node.args) == 1:
            self._check_iter(node.args[0], ctx)

    # -- helpers ------------------------------------------------------

    def _check_iter(self, expr: ast.AST, ctx: LintContext) -> None:
        if not ctx.in_packages(SIM_PACKAGES):
            return
        if self._is_set_expr(expr, ctx):
            ctx.report(expr, self.code, (
                "iteration order over a set is nondeterministic; wrap "
                "the iterable in sorted(...) before it can influence "
                "results"
            ))

    def _is_set_expr(self, expr: ast.AST, ctx: LintContext) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in (
                "set", "frozenset"
            ):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.SET_METHODS
            ):
                return self._is_set_expr(func.value, ctx)
            return False
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, self._SET_OPS
        ):
            return (
                self._is_set_expr(expr.left, ctx)
                or self._is_set_expr(expr.right, ctx)
            )
        if isinstance(expr, ast.Name):
            scope = ctx.enclosing_function(expr) or ctx.tree
            return expr.id in self._set_names(scope, ctx)
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ) and expr.value.id == "self":
            cls = ctx.enclosing_class(expr)
            return cls is not None and expr.attr in self._self_attrs(cls)
        return False

    def _set_names(self, scope: ast.AST, ctx: LintContext) -> Set[str]:
        """Names bound to set-typed values within one function scope.

        Two-pass fixpoint: the first pass catches names assigned
        syntactic set expressions or annotated as sets, the second pass
        catches names derived from those.  A name ever assigned a value
        we cannot prove set-typed is dropped (no-false-positive bias).
        """
        cached = self._scope_names.get(scope)
        if cached is not None:
            return cached

        assigns: Dict[str, list] = {}
        annotated: Set[str] = set()
        for sub in self._walk_scope(scope):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        assigns.setdefault(target.id, []).append(sub.value)
            elif isinstance(sub, ast.AnnAssign):
                if isinstance(sub.target, ast.Name) and _is_set_annotation(
                    sub.annotation
                ):
                    annotated.add(sub.target.id)
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            every = (
                list(getattr(args, "posonlyargs", []))
                + list(args.args) + list(args.kwonlyargs)
            )
            for arg in every:
                if arg.annotation is not None and _is_set_annotation(
                    arg.annotation
                ):
                    annotated.add(arg.arg)

        names: Set[str] = set(annotated)
        for _ in range(2):
            self._scope_names[scope] = names  # visible to _is_set_expr
            resolved: Set[str] = set(annotated)
            for name, values in assigns.items():
                if name in annotated:
                    continue
                if all(self._is_set_expr(v, ctx) for v in values):
                    resolved.add(name)
            if resolved == names:
                break
            names = resolved
        self._scope_names[scope] = names
        return names

    def _self_attrs(self, cls: ast.ClassDef) -> Set[str]:
        """``self.<attr>`` names annotated as sets anywhere in a class."""
        cached = self._class_attrs.get(cls)
        if cached is not None:
            return cached
        attrs: Set[str] = set()
        for sub in ast.walk(cls):
            if isinstance(sub, ast.AnnAssign) and _is_set_annotation(
                sub.annotation
            ):
                target = sub.target
                if isinstance(target, ast.Name):
                    attrs.add(target.id)
                elif isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ) and target.value.id == "self":
                    attrs.add(target.attr)
        self._class_attrs[cls] = attrs
        return attrs

    @staticmethod
    def _walk_scope(scope: ast.AST):
        """Walk a scope without descending into nested scopes."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (
                ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef,
            )):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


def _is_set_annotation(ann: Optional[ast.AST]) -> bool:
    if ann is None:
        return False
    if isinstance(ann, ast.Name):
        return ann.id in _SET_ANNOTATION_NAMES
    if isinstance(ann, ast.Attribute):
        return ann.attr in _SET_ANNOTATION_NAMES
    if isinstance(ann, ast.Subscript):
        return _is_set_annotation(ann.value)
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        head = ann.value.split("[")[0].strip()
        return head.split(".")[-1] in _SET_ANNOTATION_NAMES
    return False


@register
class FloatEqualityRule(Rule):
    """REP004: exact equality on floats."""

    code = "REP004"
    name = "float-equality"
    summary = (
        "float == / != comparisons are brittle; use math.isclose or an "
        "explicit tolerance (exact sentinel checks need a justified noqa)"
    )

    def visit_Compare(self, node: ast.Compare, ctx: LintContext) -> None:
        if not ctx.in_repro_package():
            return  # tests may assert exact fixture values
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_floatish(left) or _is_floatish(right):
                ctx.report(node, self.code, (
                    "exact float comparison; use math.isclose or an "
                    "explicit tolerance"
                ))
                return  # one finding per comparison chain


def _is_floatish(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Constant):
        return isinstance(expr.value, float)
    if isinstance(expr, ast.UnaryOp) and isinstance(
        expr.op, (ast.USub, ast.UAdd)
    ):
        return _is_floatish(expr.operand)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id == "float"
    return False


@register
class MutableDefaultRule(Rule):
    """REP005: mutable default arguments."""

    code = "REP005"
    name = "mutable-default"
    summary = (
        "mutable default arguments alias state across calls and runs; "
        "default to None (or a frozen value) and construct inside"
    )

    MUTABLE_CALLS = frozenset({
        "list", "dict", "set", "bytearray",
        "defaultdict", "deque", "Counter", "OrderedDict",
    })
    _LITERALS = (
        ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
        ast.SetComp,
    )

    def visit_FunctionDef(
        self, node: ast.FunctionDef, ctx: LintContext
    ) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: LintContext
    ) -> None:
        self._check(node, ctx)

    def visit_Lambda(self, node: ast.Lambda, ctx: LintContext) -> None:
        self._check(node, ctx)

    def _check(self, node: ast.AST, ctx: LintContext) -> None:
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                ctx.report(default, self.code, (
                    "mutable default argument is shared across calls; "
                    "use None and construct a fresh value in the body"
                ))

    def _is_mutable(self, expr: ast.AST) -> bool:
        if isinstance(expr, self._LITERALS):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            return name in self.MUTABLE_CALLS
        return False


@register
class FrozenSetattrRule(Rule):
    """REP006: mutating frozen specs outside ``__post_init__``."""

    code = "REP006"
    name = "frozen-setattr"
    summary = (
        "object.__setattr__ on frozen spec dataclasses is only legal "
        "inside __post_init__, before the object's hash can be observed"
    )

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if not ctx.in_repro_package():
            return
        if ctx.resolve_name(node.func) != "object.__setattr__":
            return
        function = ctx.enclosing_function(node)
        name = getattr(function, "name", None)
        if name != "__post_init__":
            ctx.report(node, self.code, (
                "object.__setattr__ outside __post_init__ mutates a "
                "frozen spec after its content hash may have been taken"
            ))


@register
class OverbroadExceptRule(Rule):
    """REP007: blanket exception handlers in sim/net hot paths."""

    code = "REP007"
    name = "overbroad-except"
    summary = (
        "bare or Exception-wide handlers in the engine and channel hot "
        "paths can swallow determinism bugs; catch specific exceptions"
    )

    HOT_PACKAGES = frozenset({"sim", "net"})
    BROAD = frozenset({"Exception", "BaseException"})

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, ctx: LintContext
    ) -> None:
        if not ctx.in_packages(self.HOT_PACKAGES):
            return
        if node.type is None:
            ctx.report(node, self.code, (
                "bare except in a sim/net hot path hides failures; "
                "catch the specific exception"
            ))
            return
        exc_types = (
            list(node.type.elts)
            if isinstance(node.type, ast.Tuple)
            else [node.type]
        )
        for exc in exc_types:
            resolved = ctx.resolve_name(exc)
            if resolved in self.BROAD:
                ctx.report(node, self.code, (
                    "except %s in a sim/net hot path hides failures; "
                    "catch the specific exception" % resolved
                ))
                return
