"""Recurring timers built on the event engine.

:class:`PeriodicTimer` drives every recurring activity in the reproduction:
beacon periods (``T``), the k beacon transmissions inside a transmit window,
ODMRP mesh refreshes, per-second metric sampling, and odometry integration
steps.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.sim.engine import Event, Simulator


class PeriodicTimer:
    """Fire a callback every ``period`` seconds until stopped.

    The callback receives the firing count (0-based).  If ``max_fires`` is
    given the timer stops itself after that many firings — this is how the
    ``k`` beacons inside a transmit window are generated.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[int], None],
        *,
        start_delay: float = 0.0,
        max_fires: Optional[int] = None,
        name: str = "periodic",
    ) -> None:
        # `not >` instead of `<=` so NaN is rejected too (NaN compares
        # False both ways and would otherwise slip through and feed the
        # scheduler a NaN delay on the first reschedule).
        if not (period > 0 and math.isfinite(period)):
            raise ValueError(
                "period must be positive and finite, got %r" % period
            )
        if not (start_delay >= 0 and math.isfinite(start_delay)):
            raise ValueError(
                "start_delay must be non-negative and finite, got %r"
                % start_delay
            )
        if max_fires is not None and max_fires <= 0:
            raise ValueError("max_fires must be positive, got %r" % max_fires)
        self._sim = sim
        self._period = period
        self._callback = callback
        self._max_fires = max_fires
        self._name = name
        self._fires = 0
        self._stopped = False
        self._event: Optional[Event] = sim.schedule(
            start_delay, self._fire, name=name
        )

    @property
    def fires(self) -> int:
        """How many times the callback has run."""
        return self._fires

    @property
    def running(self) -> bool:
        """True until :meth:`stop` is called or ``max_fires`` is reached."""
        return not self._stopped

    @property
    def period(self) -> float:
        return self._period

    def reschedule(self, period: float) -> None:
        """Change the period; takes effect from the *next* firing.

        Used when a SYNC message advertises new ``T``/``t`` values.
        """
        if not (period > 0 and math.isfinite(period)):
            raise ValueError(
                "period must be positive and finite, got %r" % period
            )
        self._period = period

    def stop(self) -> None:
        """Cancel the timer.  Idempotent."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if self._stopped:
            return
        count = self._fires
        self._fires += 1
        done = self._max_fires is not None and self._fires >= self._max_fires
        if done:
            self._stopped = True
            self._event = None
        else:
            self._event = self._sim.schedule(
                self._period, self._fire, name=self._name
            )
        self._callback(count)
