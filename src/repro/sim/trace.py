"""Structured trace logging for the simulation.

A :class:`TraceLog` collects timestamped, categorized records.  Protocol
implementations emit traces at interesting points (packet sent, beacon
processed, radio state change, mesh rebuilt); tests and the experiment
harness then assert on or aggregate over them without the protocols having
to know who is listening.

Tracing is off by default per category to keep the hot path cheap: a record
is only materialized when the category is enabled.

Since the telemetry subsystem landed, :class:`TraceLog` is a thin
category-filtering facade over :class:`repro.telemetry.spans.SpanTracer`:
each emitted record is stored as a point span (category as the span name,
details as span attrs), so trace output composes with span exporters and
inherits the tracer's bounded ring-buffer mode (``max_records`` plus a
``dropped_count`` of evicted records).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set

from repro.telemetry.spans import SpanTracer


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: when, what category, who, and free-form details."""

    time: float
    category: str
    node: Optional[int]
    details: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return "TraceRecord(t=%.3f, %s, node=%s, %r)" % (
            self.time,
            self.category,
            self.node,
            self.details,
        )


class TraceLog:
    """Collects :class:`TraceRecord` objects for enabled categories.

    Args:
        categories: categories to enable from the start.
        max_records: if given, keep only the most recent ``max_records``
            entries as a ring buffer; evicted entries are tallied in
            :attr:`dropped_count`.  ``None`` (the default) keeps everything.
    """

    def __init__(
        self,
        categories: Iterable[str] = (),
        max_records: Optional[int] = None,
    ) -> None:
        self._enabled: Set[str] = set(categories)
        self._tracer = SpanTracer(max_records=max_records)

    @property
    def max_records(self) -> Optional[int]:
        """Ring-buffer capacity (``None`` = unbounded)."""
        return self._tracer.max_records

    @property
    def dropped_count(self) -> int:
        """Records evicted from the ring buffer since construction."""
        return self._tracer.dropped_count

    @property
    def tracer(self) -> SpanTracer:
        """The underlying span tracer (for span-level exporters)."""
        return self._tracer

    def enable(self, category: str) -> None:
        """Start recording ``category`` events."""
        self._enabled.add(category)

    def disable(self, category: str) -> None:
        """Stop recording ``category`` events."""
        self._enabled.discard(category)

    def enabled(self, category: str) -> bool:
        """True if ``category`` is currently recorded."""
        return category in self._enabled

    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **details: Any,
    ) -> None:
        """Record an event if its category is enabled."""
        if category in self._enabled:
            self._tracer.record_event(time, category, node=node,
                                      attrs=details)

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """Return recorded entries, optionally filtered by category."""
        return [
            TraceRecord(span.start, span.name, span.node, span.attrs)
            for span in self._tracer.records(category)
        ]

    def count(self, category: str) -> int:
        """Number of recorded entries in ``category``."""
        return self._tracer.count(category)

    def clear(self) -> None:
        """Drop all recorded entries (categories stay enabled)."""
        self._tracer.clear()

    def __len__(self) -> int:
        return len(self._tracer)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records())
