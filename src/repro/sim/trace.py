"""Structured trace logging for the simulation.

A :class:`TraceLog` collects timestamped, categorized records.  Protocol
implementations emit traces at interesting points (packet sent, beacon
processed, radio state change, mesh rebuilt); tests and the experiment
harness then assert on or aggregate over them without the protocols having
to know who is listening.

Tracing is off by default per category to keep the hot path cheap: a record
is only materialized when the category is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: when, what category, who, and free-form details."""

    time: float
    category: str
    node: Optional[int]
    details: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return "TraceRecord(t=%.3f, %s, node=%s, %r)" % (
            self.time,
            self.category,
            self.node,
            self.details,
        )


class TraceLog:
    """Collects :class:`TraceRecord` objects for enabled categories."""

    def __init__(self, categories: Iterable[str] = ()) -> None:
        self._enabled: Set[str] = set(categories)
        self._records: List[TraceRecord] = []

    def enable(self, category: str) -> None:
        """Start recording ``category`` events."""
        self._enabled.add(category)

    def disable(self, category: str) -> None:
        """Stop recording ``category`` events."""
        self._enabled.discard(category)

    def enabled(self, category: str) -> bool:
        """True if ``category`` is currently recorded."""
        return category in self._enabled

    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **details: Any,
    ) -> None:
        """Record an event if its category is enabled."""
        if category in self._enabled:
            self._records.append(TraceRecord(time, category, node, details))

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """Return recorded entries, optionally filtered by category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def count(self, category: str) -> int:
        """Number of recorded entries in ``category``."""
        return sum(1 for r in self._records if r.category == category)

    def clear(self) -> None:
        """Drop all recorded entries (categories stay enabled)."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)
