"""The discrete-event simulation engine.

A :class:`Simulator` owns a monotonically non-decreasing clock (float seconds)
and a priority queue of scheduled callbacks.  Events scheduled for the same
timestamp fire in FIFO order of scheduling, which keeps runs deterministic
regardless of floating-point tie-breaking.

The engine is intentionally callback-based rather than coroutine-based: the
protocols in this reproduction (beaconing, MAC backoff, multicast refresh)
are all timer-driven state machines, and callbacks keep the hot path cheap.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid scheduler operations (e.g. scheduling in the past)."""


class Event:
    """A handle to a scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be cancelled
    with :meth:`cancel` at any time before they fire.  Cancelled events stay
    in the internal heap but are skipped when popped (lazy deletion), which
    keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "name", "_cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        name: str,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.name = name
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self._cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return "Event(t=%.6f, name=%r, %s)" % (self.time, self.name, state)


class Simulator:
    """Deterministic discrete-event scheduler.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, fired.append, 'a')
        >>> _ = sim.schedule(0.5, fired.append, 'b')
        >>> sim.run(until=2.0)
        >>> fired
        ['b', 'a']
        >>> sim.now
        2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # Heap entries are (time, seq, event) tuples rather than bare
        # events: heapq then compares tuples in C instead of calling
        # Event.__lt__, with the exact same (time, seq) lexicographic
        # order (seq is unique, so the event object itself is never
        # compared).  At paper scale this removes hundreds of thousands
        # of Python-level comparison calls per run.
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._events_cancelled = 0
        self._max_queue_depth = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Number of cancelled events discarded from the queue so far.

        Counted at pop time (lazy deletion), so cancelled events still
        pending when the run ends are not included.
        """
        return self._events_cancelled

    @property
    def max_queue_depth(self) -> int:
        """High-water mark of the event heap (cancelled entries included)."""
        return self._max_queue_depth

    @property
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for entry in self._queue if not entry[2].cancelled)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Args:
            delay: non-negative offset from the current time.
            callback: callable invoked when the event fires.
            *args: positional arguments passed to the callback.
            name: optional label used in tracing and ``repr``.

        Returns:
            An :class:`Event` handle that can be cancelled.

        Raises:
            SimulationError: if ``delay`` is negative or not finite.
        """
        if not delay >= 0.0:
            raise SimulationError(
                "cannot schedule in the past: delay=%r at t=%r"
                % (delay, self._now)
            )
        return self.schedule_at(self._now + delay, callback, *args, name=name)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time.

        Raises:
            SimulationError: if ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t=%r, clock already at t=%r"
                % (time, self._now)
            )
        event = Event(float(time), next(self._seq), callback, args, name)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        if len(self._queue) > self._max_queue_depth:
            self._max_queue_depth = len(self._queue)
        return event

    def run(self, until: Optional[float] = None) -> None:
        """Process events in timestamp order.

        Args:
            until: if given, stop once the clock would pass this time and
                leave later events pending; the clock is advanced exactly to
                ``until``.  If omitted, run until the queue drains.

        Raises:
            SimulationError: if the simulator is re-entered from a callback,
                or if ``until`` precedes the current clock.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        if until is not None and until < self._now:
            raise SimulationError(
                "cannot run until t=%r, clock already at t=%r"
                % (until, self._now)
            )
        self._running = True
        try:
            while self._queue:
                event = self._queue[0][2]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    self._events_cancelled += 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                self._events_processed += 1
                event.callback(*event.args)
            if until is not None:
                self._now = max(self._now, float(until))
        finally:
            self._running = False

    def step(self) -> bool:
        """Process exactly one pending event.

        Returns:
            True if an event was processed, False if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)[2]
            if event.cancelled:
                self._events_cancelled += 1
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def clear(self) -> None:
        """Drop all pending events without running them."""
        self._queue.clear()

    def __repr__(self) -> str:
        return "Simulator(now=%.6f, pending=%d)" % (
            self._now,
            self.pending_count,
        )
