"""The discrete-event simulation engine.

A :class:`Simulator` owns a monotonically non-decreasing clock (float seconds)
and a priority queue of scheduled callbacks.  Events scheduled for the same
timestamp fire in FIFO order of scheduling, which keeps runs deterministic
regardless of floating-point tie-breaking.

The engine is intentionally callback-based rather than coroutine-based: the
protocols in this reproduction (beaconing, MAC backoff, multicast refresh)
are all timer-driven state machines, and callbacks keep the hot path cheap.

Two queue backends share one firing order:

- the default **binary heap** (``heapq`` over ``(time, seq, event)`` tuples),
- an optional **slotted time wheel** (``wheel_slot_s=...``), which buckets
  near-future events by time slot.  Bucket inserts are plain list appends;
  a slot is heapified only once, when the clock reaches it.  Far-future
  events (beyond :data:`WHEEL_HORIZON_SLOTS` slots) fall back to the heap,
  and every pop merge-compares the active slot against the heap head by the
  exact ``(time, seq)`` key — so the wheel fires the *identical* sequence
  the heap would (a property test pins this).  The wheel is the
  ``time_wheel`` kernel of :class:`~repro.kernels.KernelConfig`.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Dict, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid scheduler operations (e.g. scheduling in the past)."""


class Event:
    """A handle to a scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be cancelled
    with :meth:`cancel` at any time before they fire.  Cancelled events stay
    in the internal queue but are skipped when popped (lazy deletion), which
    keeps cancellation O(1).
    """

    __slots__ = (
        "time",
        "seq",
        "callback",
        "args",
        "name",
        "_cancelled",
        "_owner",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        name: str,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.name = name
        self._cancelled = False
        # The scheduling Simulator, so cancel() can keep its live pending
        # counter exact without a queue scan.  None for bare Events built
        # outside a Simulator (tests).
        self._owner: Optional["Simulator"] = None

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent.

        Cancelling a handle whose event already fired is a no-op for the
        owner's live pending counter: the scheduler clears ``_owner``
        when it pops the event, so a late cancel cannot double-decrement.
        """
        if self._cancelled:
            return
        self._cancelled = True
        owner = self._owner
        if owner is not None:
            self._owner = None
            owner._pending -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return "Event(t=%.6f, name=%r, %s)" % (self.time, self.name, state)


#: How many slots ahead of the clock the wheel accepts an event; anything
#: further out goes to the heap instead (periodic timers are near-future by
#: nature, so the wheel captures them; rare far-future one-shots stay cheap
#: in the heap and merge back in at pop time).
WHEEL_HORIZON_SLOTS = 256


class Simulator:
    """Deterministic discrete-event scheduler.

    Args:
        start_time: initial clock value in seconds.
        wheel_slot_s: when given, enable the slotted time wheel with this
            slot width (seconds).  Firing order is identical to the
            default heap backend; only the queue data structure changes.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, fired.append, 'a')
        >>> _ = sim.schedule(0.5, fired.append, 'b')
        >>> sim.run(until=2.0)
        >>> fired
        ['b', 'a']
        >>> sim.now
        2.0
    """

    def __init__(
        self, start_time: float = 0.0, wheel_slot_s: Optional[float] = None
    ) -> None:
        self._now = float(start_time)
        # Heap entries are (time, seq, event) tuples rather than bare
        # events: heapq then compares tuples in C instead of calling
        # Event.__lt__, with the exact same (time, seq) lexicographic
        # order (seq is unique, so the event object itself is never
        # compared).  At paper scale this removes hundreds of thousands
        # of Python-level comparison calls per run.
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._events_cancelled = 0
        self._max_queue_depth = 0
        self._pending = 0
        self._entries = 0
        if wheel_slot_s is not None and not wheel_slot_s > 0.0:
            raise ValueError(
                "wheel_slot_s must be positive, got %r" % wheel_slot_s
            )
        self._wheel_slot_s = wheel_slot_s
        # Wheel state.  _active is the heapified bucket currently being
        # drained; _buckets holds future slots as unsorted append-only
        # lists; _slot_heap orders the pending slot indices.  Invariant:
        # every event in _buckets[i] has time >= i * slot >= the end of
        # the active slot, so draining _active before loading the next
        # slot preserves global (time, seq) order.
        self._buckets: Dict[int, List[Tuple[float, int, Event]]] = {}
        self._slot_heap: List[int] = []
        self._active: List[Tuple[float, int, Event]] = []
        self._active_idx: Optional[int] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def wheel_enabled(self) -> bool:
        """True when the slotted time wheel backs the event queue."""
        return self._wheel_slot_s is not None

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Number of cancelled events discarded from the queue so far.

        Counted at pop time (lazy deletion), so cancelled events still
        pending when the run ends are not included.
        """
        return self._events_cancelled

    @property
    def max_queue_depth(self) -> int:
        """High-water mark of the event queue (cancelled entries included)."""
        return self._max_queue_depth

    @property
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-cancelled events.

        O(1): a live counter incremented on schedule and decremented on
        cancel/fire, so telemetry's queue-depth gauge can poll it on the
        hot path without scanning the queue.
        """
        return self._pending

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Args:
            delay: non-negative offset from the current time.
            callback: callable invoked when the event fires.
            *args: positional arguments passed to the callback.
            name: optional label used in tracing and ``repr``.

        Returns:
            An :class:`Event` handle that can be cancelled.

        Raises:
            SimulationError: if ``delay`` is negative or not finite.
        """
        if not delay >= 0.0:
            raise SimulationError(
                "cannot schedule in the past: delay=%r at t=%r"
                % (delay, self._now)
            )
        return self.schedule_at(self._now + delay, callback, *args, name=name)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time.

        Raises:
            SimulationError: if ``time`` precedes the current clock or is
                not finite.  (The ``not >=`` form catches NaN, which every
                ordinary comparison would silently wave through and which
                would then poison the queue order.)
        """
        if not (time >= self._now) or not math.isfinite(time):
            raise SimulationError(
                "cannot schedule at t=%r, clock at t=%r (need a finite "
                "time >= the clock)" % (time, self._now)
            )
        event = Event(float(time), next(self._seq), callback, args, name)
        event._owner = self
        self._pending += 1
        entry = (event.time, event.seq, event)
        if self._wheel_slot_s is not None:
            self._wheel_insert(entry)
        else:
            heapq.heappush(self._queue, entry)
        self._entries += 1
        if self._entries > self._max_queue_depth:
            self._max_queue_depth = self._entries
        return event

    def _wheel_insert(self, entry: Tuple[float, int, Event]) -> None:
        slot_s = self._wheel_slot_s
        idx = int(entry[0] / slot_s)
        active_idx = self._active_idx
        if active_idx is not None and idx <= active_idx:
            # The event's slot is already being drained (or the clock sits
            # inside it): it must compete with the active heap directly.
            heapq.heappush(self._active, entry)
            return
        if entry[0] - self._now > WHEEL_HORIZON_SLOTS * slot_s:
            heapq.heappush(self._queue, entry)
            return
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [entry]
            heapq.heappush(self._slot_heap, idx)
        else:
            bucket.append(entry)

    def _load_slot(self) -> None:
        """Promote the earliest pending bucket to the active heap.

        Deferred while the main heap's head precedes everything the slot
        could contain — the heap event must fire first, and loading early
        would let later inserts bypass their buckets.
        """
        while self._slot_heap:
            idx = self._slot_heap[0]
            if self._queue and self._queue[0][0] < idx * self._wheel_slot_s:
                return
            heapq.heappop(self._slot_heap)
            bucket = self._buckets.pop(idx)
            heapq.heapify(bucket)
            self._active = bucket
            self._active_idx = idx
            return

    def _front(self) -> Optional[List[Tuple[float, int, Event]]]:
        """The heap holding the globally earliest entry, or ``None``."""
        active = self._active
        if not active and self._slot_heap:
            self._load_slot()
            active = self._active
        queue = self._queue
        if active and queue:
            return active if active[0] < queue[0] else queue
        if active:
            return active
        if queue:
            return queue
        return None

    def run(self, until: Optional[float] = None) -> None:
        """Process events in timestamp order.

        Args:
            until: if given, stop once the clock would pass this time and
                leave later events pending; the clock is advanced exactly to
                ``until``.  If omitted, run until the queue drains.

        Raises:
            SimulationError: if the simulator is re-entered from a callback,
                or if ``until`` precedes the current clock.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        if until is not None and until < self._now:
            raise SimulationError(
                "cannot run until t=%r, clock already at t=%r"
                % (until, self._now)
            )
        self._running = True
        try:
            while True:
                source = self._front()
                if source is None:
                    break
                entry = source[0]
                event = entry[2]
                if event._cancelled:
                    heapq.heappop(source)
                    self._entries -= 1
                    self._events_cancelled += 1
                    continue
                if until is not None and entry[0] > until:
                    break
                heapq.heappop(source)
                self._entries -= 1
                self._pending -= 1
                event._owner = None
                self._now = entry[0]
                self._events_processed += 1
                event.callback(*event.args)
            if until is not None:
                self._now = max(self._now, float(until))
        finally:
            self._running = False

    def step(self) -> bool:
        """Process exactly one pending event.

        Returns:
            True if an event was processed, False if the queue was empty.
        """
        while True:
            source = self._front()
            if source is None:
                return False
            entry = heapq.heappop(source)
            self._entries -= 1
            event = entry[2]
            if event._cancelled:
                self._events_cancelled += 1
                continue
            self._pending -= 1
            event._owner = None
            self._now = entry[0]
            self._events_processed += 1
            event.callback(*event.args)
            return True

    def clear(self) -> None:
        """Drop all pending events without running them.

        Every dropped event is marked cancelled (so held handles report
        ``cancelled`` and a later ``cancel()`` stays a no-op), the live
        pending counter resets to zero, and — matching the historical
        semantics — nothing is added to :attr:`events_cancelled`, which
        only counts lazy discards at pop time.
        """
        stores: List[List[Tuple[float, int, Event]]] = [
            self._queue,
            self._active,
        ]
        stores.extend(self._buckets.values())
        for store in stores:
            for _, _, event in store:
                event._cancelled = True
        self._queue.clear()
        self._active.clear()
        self._buckets.clear()
        self._slot_heap.clear()
        self._pending = 0
        self._entries = 0

    def __repr__(self) -> str:
        return "Simulator(now=%.6f, pending=%d)" % (
            self._now,
            self.pending_count,
        )
